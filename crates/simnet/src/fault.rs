//! Deterministic fault injection: per-datagram and per-connection fates.
//!
//! The paper's apparatus survived nine months on the real Internet —
//! lost and duplicated datagrams, UDP answers truncated mid-path,
//! greylisting MTAs, mid-dialogue resets. A [`FaultPlan`] lets the
//! simulation inject those faults while keeping every campaign output a
//! pure function of its seed, **independent of shard count**.
//!
//! The trick is that no fault decision ever consumes a shared RNG in
//! event order (event interleaving differs across shard counts). Each
//! decision is instead a pure function of stable identifiers:
//!
//! ```text
//! fate(i) = SimRng::new(mix(plan seed, global session id, stream, i))
//! ```
//!
//! where `i` is a per-session, per-stream cursor ([`FaultCursor`]) that
//! advances with each consulted datagram or SMTP segment. Per-session
//! event subsequences are shard-invariant (sessions never interact), so
//! the cursor values — and therefore every fate — are too.
//!
//! Datagram **loss** is not decided here: the plan delegates to
//! [`LatencyModel::lost`], making the latency model's `loss_probability`
//! the single loss oracle for the whole simulation.

use crate::net::LatencyModel;
use crate::rng::SimRng;

/// Probabilities and magnitudes for injected faults. The default is
/// all-zero: a plan built from it never alters anything.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Probability a UDP datagram is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a UDP datagram is delayed (reordered past later
    /// traffic) by up to [`FaultConfig::reorder_delay_ms`].
    pub reorder_probability: f64,
    /// Maximum extra delay for reordered (and gap for duplicated)
    /// datagrams, ms.
    pub reorder_delay_ms: u64,
    /// Probability a UDP *response* is truncated mid-path (TC=1, answers
    /// stripped), driving capable resolvers to TCP fallback.
    pub truncate_probability: f64,
    /// Probability an SMTP segment is replaced by a connection reset.
    pub conn_reset_probability: f64,
    /// Probability an SMTP segment is stalled by up to
    /// [`FaultConfig::conn_stall_ms`].
    pub conn_stall_probability: f64,
    /// Maximum stall added to a stalled SMTP segment, ms.
    pub conn_stall_ms: u64,
    /// Seed mixed into every fate decision (fork of the campaign seed).
    pub seed: u64,
    /// Deterministic *shard-level* crash injection (supervisor testing):
    /// when nonzero, the engine panics immediately after durably
    /// journaling its N-th completed session. Unlike the per-session
    /// faults above this is not contained by the engine — it kills the
    /// whole shard, which is the point: the campaign supervisor must
    /// restart the shard from its journal. Replayed sessions count
    /// toward N, so a resumed shard that has already completed N
    /// sessions runs to the end instead of crash-looping.
    pub crash_after_sessions: u64,
}

/// The fate of one UDP datagram crossing the virtual wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatagramFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the receiver sees nothing; timeouts must fire).
    Drop,
    /// Deliver, then deliver a second copy `gap_ms` later.
    Duplicate {
        /// Gap between the two copies, ms.
        gap_ms: u64,
    },
    /// Deliver late by `extra_ms` (reordering past later traffic).
    Delay {
        /// Extra one-way delay, ms.
        extra_ms: u64,
    },
    /// Deliver with TC=1 and the answer sections stripped (responses
    /// only; callers pass `may_truncate = false` for queries).
    Truncate,
}

/// The fate of one SMTP segment (reply text or client command bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Deliver normally.
    Deliver,
    /// The connection is reset instead: the segment is lost and both
    /// ends must observe a disconnect.
    Reset,
    /// Deliver late by `extra_ms` (a mid-session stall).
    Stall {
        /// Extra one-way delay, ms.
        extra_ms: u64,
    },
}

/// Per-session fault cursors: how many datagrams / SMTP segments of the
/// session have been adjudicated so far. Stored with the session so the
/// index sequence is shard-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCursor {
    datagrams: u64,
    segments: u64,
}

const STREAM_DATAGRAM: u64 = 0xDA7A_6BAD;
const STREAM_SEGMENT: u64 = 0x5E65_BAD5;

/// Fault counters, aggregated across engines and shards. All fields are
/// shard-count invariant (they count deterministic fate decisions and
/// their consequences, never wall-clock effects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// UDP datagrams (queries or responses) dropped by the loss oracle.
    pub dns_dropped: u64,
    /// UDP datagrams delivered twice.
    pub dns_duplicated: u64,
    /// UDP datagrams delivered late (reordered).
    pub dns_delayed: u64,
    /// UDP responses truncated mid-path.
    pub dns_truncated: u64,
    /// Lookups that concluded in a timeout outcome (includes retries
    /// exhausted under loss and unreachable v6-only zones).
    pub dns_timeouts: u64,
    /// SMTP segments replaced by connection resets.
    pub conn_resets: u64,
    /// SMTP segments stalled in flight.
    pub conn_stalls: u64,
    /// Stalls issued by flaky MTAs before reacting to MAIL.
    pub mta_stalls: u64,
    /// 451 tempfails issued by greylisting MTAs.
    pub tempfails: u64,
    /// Transaction retries performed by probe clients after 4xx replies.
    pub client_retries: u64,
    /// Session panics contained by the engine (`catch_unwind`).
    pub contained_panics: u64,
    /// Sessions terminated for exceeding their virtual-time or
    /// dispatched-event budget (`SessionOutcome::BudgetExhausted`).
    pub budget_exhausted: u64,
}

impl FaultStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dns_dropped += other.dns_dropped;
        self.dns_duplicated += other.dns_duplicated;
        self.dns_delayed += other.dns_delayed;
        self.dns_truncated += other.dns_truncated;
        self.dns_timeouts += other.dns_timeouts;
        self.conn_resets += other.conn_resets;
        self.conn_stalls += other.conn_stalls;
        self.mta_stalls += other.mta_stalls;
        self.tempfails += other.tempfails;
        self.client_retries += other.client_retries;
        self.contained_panics += other.contained_panics;
        self.budget_exhausted += other.budget_exhausted;
    }

    /// True when any wire-level fault fired (injection diagnostics).
    pub fn any_injected(&self) -> bool {
        self.dns_dropped
            + self.dns_duplicated
            + self.dns_delayed
            + self.dns_truncated
            + self.conn_resets
            + self.conn_stalls
            > 0
    }
}

/// A sealed fault plan: the fault configuration plus the latency model
/// whose [`LatencyModel::lost`] is the loss oracle.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    latency: LatencyModel,
    active: bool,
}

fn mix(seed: u64, session: u64, stream: u64, index: u64) -> u64 {
    // splitmix64-style finalizer over the four identifiers; any good
    // avalanche works, it just has to be stable.
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [session, stream, index] {
        h ^= v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 30)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

impl FaultPlan {
    /// Seal a plan from a config and the campaign's latency model.
    pub fn new(config: FaultConfig, latency: LatencyModel) -> FaultPlan {
        let active = latency.loss_probability > 0.0
            || config.duplicate_probability > 0.0
            || config.reorder_probability > 0.0
            || config.truncate_probability > 0.0
            || config.conn_reset_probability > 0.0
            || config.conn_stall_probability > 0.0;
        FaultPlan {
            config,
            latency,
            active,
        }
    }

    /// True when some fault can ever fire (fast-path check).
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn rng(&self, session: u64, stream: u64, index: u64) -> SimRng {
        SimRng::new(mix(self.config.seed, session, stream, index))
    }

    /// Decide the fate of one UDP datagram of `session`. `may_truncate`
    /// is true for responses (truncation of a query makes no sense).
    ///
    /// The decision depends only on `(plan, session, cursor position)` —
    /// never on global event order — so it is shard-count invariant.
    pub fn datagram_fate(
        &self,
        session: u64,
        cursor: &mut FaultCursor,
        may_truncate: bool,
    ) -> DatagramFate {
        if !self.active {
            return DatagramFate::Deliver;
        }
        let index = cursor.datagrams;
        cursor.datagrams += 1;
        let mut rng = self.rng(session, STREAM_DATAGRAM, index);
        if self.latency.lost(&mut rng) {
            return DatagramFate::Drop;
        }
        if may_truncate
            && self.config.truncate_probability > 0.0
            && rng.chance(self.config.truncate_probability)
        {
            return DatagramFate::Truncate;
        }
        if self.config.duplicate_probability > 0.0 && rng.chance(self.config.duplicate_probability)
        {
            let span = self.config.reorder_delay_ms.max(1);
            return DatagramFate::Duplicate {
                gap_ms: 1 + rng.next_below(span),
            };
        }
        if self.config.reorder_probability > 0.0 && rng.chance(self.config.reorder_probability) {
            let span = self.config.reorder_delay_ms.max(1);
            return DatagramFate::Delay {
                extra_ms: 1 + rng.next_below(span),
            };
        }
        DatagramFate::Deliver
    }

    /// Decide the fate of one SMTP segment of `session`.
    pub fn conn_fault(&self, session: u64, cursor: &mut FaultCursor) -> ConnFault {
        if !self.active {
            return ConnFault::Deliver;
        }
        let index = cursor.segments;
        cursor.segments += 1;
        let mut rng = self.rng(session, STREAM_SEGMENT, index);
        if self.config.conn_reset_probability > 0.0
            && rng.chance(self.config.conn_reset_probability)
        {
            return ConnFault::Reset;
        }
        if self.config.conn_stall_probability > 0.0
            && rng.chance(self.config.conn_stall_probability)
        {
            let span = self.config.conn_stall_ms.max(1);
            return ConnFault::Stall {
                extra_ms: 1 + rng.next_below(span),
            };
        }
        ConnFault::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: f64) -> LatencyModel {
        LatencyModel {
            loss_probability: p,
            ..Default::default()
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::new(FaultConfig::default(), LatencyModel::default());
        assert!(!plan.is_active());
        let mut cursor = FaultCursor::default();
        for _ in 0..100 {
            assert_eq!(
                plan.datagram_fate(3, &mut cursor, true),
                DatagramFate::Deliver
            );
            assert_eq!(plan.conn_fault(3, &mut cursor), ConnFault::Deliver);
        }
    }

    #[test]
    fn loss_routed_through_latency_model() {
        // loss_probability lives on the LatencyModel and the plan must
        // consult it — total loss means every datagram drops.
        let plan = FaultPlan::new(FaultConfig::default(), lossy(1.0));
        assert!(plan.is_active());
        let mut cursor = FaultCursor::default();
        for _ in 0..50 {
            assert_eq!(
                plan.datagram_fate(0, &mut cursor, false),
                DatagramFate::Drop
            );
        }
    }

    #[test]
    fn loss_statistics_follow_probability() {
        let plan = FaultPlan::new(FaultConfig::default(), lossy(0.3));
        let mut drops = 0;
        for session in 0..100u64 {
            let mut cursor = FaultCursor::default();
            for _ in 0..100 {
                if plan.datagram_fate(session, &mut cursor, true) == DatagramFate::Drop {
                    drops += 1;
                }
            }
        }
        assert!((2_600..3_400).contains(&drops), "drops={drops}");
    }

    #[test]
    fn fates_are_independent_of_consultation_order() {
        // The shard-determinism property: interleaving sessions A and B
        // must produce the same per-session fate sequences as running
        // them back to back.
        let config = FaultConfig {
            duplicate_probability: 0.1,
            reorder_probability: 0.1,
            reorder_delay_ms: 40,
            truncate_probability: 0.1,
            conn_reset_probability: 0.1,
            conn_stall_probability: 0.1,
            conn_stall_ms: 500,
            seed: 9,
            ..Default::default()
        };
        let plan = FaultPlan::new(config, lossy(0.1));

        let sequential: Vec<Vec<DatagramFate>> = (0..3u64)
            .map(|session| {
                let mut cursor = FaultCursor::default();
                (0..40)
                    .map(|_| plan.datagram_fate(session, &mut cursor, true))
                    .collect()
            })
            .collect();

        let mut cursors = [FaultCursor::default(); 3];
        let mut interleaved = vec![Vec::new(), Vec::new(), Vec::new()];
        for round in 0..40 {
            // Rotate the visiting order every round.
            for k in 0..3usize {
                let session = (round + k) % 3;
                interleaved[session].push(plan.datagram_fate(
                    session as u64,
                    &mut cursors[session],
                    true,
                ));
            }
        }
        assert_eq!(sequential, interleaved);
    }

    #[test]
    fn sessions_get_distinct_fault_sequences() {
        let plan = FaultPlan::new(FaultConfig::default(), lossy(0.5));
        let seq = |session: u64| -> Vec<DatagramFate> {
            let mut cursor = FaultCursor::default();
            (0..64)
                .map(|_| plan.datagram_fate(session, &mut cursor, true))
                .collect()
        };
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn truncation_only_offered_to_responses() {
        let config = FaultConfig {
            truncate_probability: 1.0,
            seed: 4,
            ..Default::default()
        };
        let plan = FaultPlan::new(config, LatencyModel::default());
        let mut cursor = FaultCursor::default();
        assert_eq!(
            plan.datagram_fate(0, &mut cursor, false),
            DatagramFate::Deliver
        );
        assert_eq!(
            plan.datagram_fate(0, &mut cursor, true),
            DatagramFate::Truncate
        );
    }

    #[test]
    fn conn_faults_fire_and_bound_their_magnitudes() {
        let config = FaultConfig {
            conn_reset_probability: 0.3,
            conn_stall_probability: 0.3,
            conn_stall_ms: 200,
            seed: 11,
            ..Default::default()
        };
        let plan = FaultPlan::new(config, LatencyModel::default());
        let mut resets = 0;
        let mut stalls = 0;
        for session in 0..50u64 {
            let mut cursor = FaultCursor::default();
            for _ in 0..50 {
                match plan.conn_fault(session, &mut cursor) {
                    ConnFault::Reset => resets += 1,
                    ConnFault::Stall { extra_ms } => {
                        assert!((1..=200).contains(&extra_ms));
                        stalls += 1;
                    }
                    ConnFault::Deliver => {}
                }
            }
        }
        assert!(resets > 500, "resets={resets}");
        assert!(stalls > 300, "stalls={stalls}");
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let mut a = FaultStats {
            dns_dropped: 1,
            tempfails: 2,
            ..Default::default()
        };
        let b = FaultStats {
            dns_dropped: 3,
            contained_panics: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dns_dropped, 4);
        assert_eq!(a.tempfails, 2);
        assert_eq!(a.contained_panics, 4);
        assert!(a.any_injected());
        assert!(!FaultStats::default().any_injected());
    }
}
