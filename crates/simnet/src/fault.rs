//! Deterministic fault injection: per-datagram and per-connection fates.
//!
//! The paper's apparatus survived nine months on the real Internet —
//! lost and duplicated datagrams, UDP answers truncated mid-path,
//! greylisting MTAs, mid-dialogue resets. A [`FaultPlan`] lets the
//! simulation inject those faults while keeping every campaign output a
//! pure function of its seed, **independent of shard count**.
//!
//! The trick is that no fault decision ever consumes a shared RNG in
//! event order (event interleaving differs across shard counts). Each
//! decision is instead a pure function of stable identifiers:
//!
//! ```text
//! fate(i) = SimRng::new(mix(plan seed, global session id, stream, i))
//! ```
//!
//! where `i` is a per-session, per-stream cursor ([`FaultCursor`]) that
//! advances with each consulted datagram or SMTP segment. Per-session
//! event subsequences are shard-invariant (sessions never interact), so
//! the cursor values — and therefore every fate — are too.
//!
//! Datagram **loss** is not decided here: the plan delegates to
//! [`LatencyModel::lost`], making the latency model's `loss_probability`
//! the single loss oracle for the whole simulation.

use crate::net::LatencyModel;
use crate::rng::SimRng;

/// Probabilities and magnitudes for injected faults. The default is
/// all-zero: a plan built from it never alters anything.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Probability a UDP datagram is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a UDP datagram is delayed (reordered past later
    /// traffic) by up to [`FaultConfig::reorder_delay_ms`].
    pub reorder_probability: f64,
    /// Maximum extra delay for reordered (and gap for duplicated)
    /// datagrams, ms.
    pub reorder_delay_ms: u64,
    /// Probability a UDP *response* is truncated mid-path (TC=1, answers
    /// stripped), driving capable resolvers to TCP fallback.
    pub truncate_probability: f64,
    /// Probability an SMTP segment is replaced by a connection reset.
    pub conn_reset_probability: f64,
    /// Probability an SMTP segment is stalled by up to
    /// [`FaultConfig::conn_stall_ms`].
    pub conn_stall_probability: f64,
    /// Maximum stall added to a stalled SMTP segment, ms.
    pub conn_stall_ms: u64,
    /// Seed mixed into every fate decision (fork of the campaign seed).
    pub seed: u64,
    /// Deterministic *shard-level* crash injection (supervisor testing):
    /// when nonzero, the engine panics immediately after durably
    /// journaling its N-th completed session. Unlike the per-session
    /// faults above this is not contained by the engine — it kills the
    /// whole shard, which is the point: the campaign supervisor must
    /// restart the shard from its journal. Replayed sessions count
    /// toward N, so a resumed shard that has already completed N
    /// sessions runs to the end instead of crash-looping.
    pub crash_after_sessions: u64,
}

/// The fate of one UDP datagram crossing the virtual wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatagramFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the receiver sees nothing; timeouts must fire).
    Drop,
    /// Deliver, then deliver a second copy `gap_ms` later.
    Duplicate {
        /// Gap between the two copies, ms.
        gap_ms: u64,
    },
    /// Deliver late by `extra_ms` (reordering past later traffic).
    Delay {
        /// Extra one-way delay, ms.
        extra_ms: u64,
    },
    /// Deliver with TC=1 and the answer sections stripped (responses
    /// only; callers pass `may_truncate = false` for queries).
    Truncate,
}

/// The fate of one SMTP segment (reply text or client command bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Deliver normally.
    Deliver,
    /// The connection is reset instead: the segment is lost and both
    /// ends must observe a disconnect.
    Reset,
    /// Deliver late by `extra_ms` (a mid-session stall).
    Stall {
        /// Extra one-way delay, ms.
        extra_ms: u64,
    },
}

/// Per-session fault cursors: how many datagrams / SMTP segments /
/// payload mutations of the session have been adjudicated so far.
/// Stored with the session so the index sequence is shard-invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCursor {
    datagrams: u64,
    segments: u64,
    dns_payloads: u64,
    smtp_payloads: u64,
}

const STREAM_DATAGRAM: u64 = 0xDA7A_6BAD;
const STREAM_SEGMENT: u64 = 0x5E65_BAD5;
const STREAM_DNS_PAYLOAD: u64 = 0xD05E_BAD1;
const STREAM_SMTP_PAYLOAD: u64 = 0x53D7_BAD0;
const STREAM_IO_WRITE: u64 = 0xD15C_BAD2;
const STREAM_IO_FSYNC: u64 = 0xF5FC_BAD3;
const STREAM_IO_RENAME: u64 = 0x2E4A_BAD4;
const STREAM_IO_READ: u64 = 0x2EAD_BAD6;

/// Classification of one rejected hostile input, assigned by the
/// consumer that refused it (never by the injector): the DNS wire
/// decoder, the SMTP reply parser, or the SPF evaluator. Every
/// rejection of a mutated frame maps to exactly one class, so the sum
/// of the [`MalformedStats`] counters equals the number of inputs the
/// parsers failed closed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MalformedClass {
    /// DNS frame ended mid-structure (header, name, or record).
    DnsTruncatedFrame,
    /// DNS compression pointer loop or forward pointer.
    DnsBadPointer,
    /// DNS label with an invalid tag, charset, or lying length.
    DnsBadLabel,
    /// DNS RDATA length inconsistent with its content.
    DnsBadRdata,
    /// SMTP reply line without a valid 3-digit code, or malformed
    /// separator byte.
    SmtpBadCode,
    /// SMTP reply line containing an embedded NUL or bare CR.
    SmtpBadChar,
    /// SMTP reply line over the 512-byte cap.
    SmtpLineTooLong,
    /// SMTP multiline reply switching codes or exceeding the line cap.
    SmtpBadContinuation,
    /// SPF policy include/redirect cycle detected.
    SpfPolicyLoop,
    /// SPF lookup or void-lookup budget exhausted by a hostile policy.
    SpfLookupExhausted,
}

impl MalformedClass {
    /// Every class, in the canonical (serialization) order.
    pub const ALL: [MalformedClass; 10] = [
        MalformedClass::DnsTruncatedFrame,
        MalformedClass::DnsBadPointer,
        MalformedClass::DnsBadLabel,
        MalformedClass::DnsBadRdata,
        MalformedClass::SmtpBadCode,
        MalformedClass::SmtpBadChar,
        MalformedClass::SmtpLineTooLong,
        MalformedClass::SmtpBadContinuation,
        MalformedClass::SpfPolicyLoop,
        MalformedClass::SpfLookupExhausted,
    ];

    /// Stable index into [`MalformedClass::ALL`] (also the journal and
    /// store encoding of the class).
    pub fn index(self) -> usize {
        MalformedClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class in ALL")
    }

    /// Inverse of [`MalformedClass::index`].
    pub fn from_index(index: usize) -> Option<MalformedClass> {
        MalformedClass::ALL.get(index).copied()
    }

    /// Short snake_case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MalformedClass::DnsTruncatedFrame => "dns_truncated_frame",
            MalformedClass::DnsBadPointer => "dns_bad_pointer",
            MalformedClass::DnsBadLabel => "dns_bad_label",
            MalformedClass::DnsBadRdata => "dns_bad_rdata",
            MalformedClass::SmtpBadCode => "smtp_bad_code",
            MalformedClass::SmtpBadChar => "smtp_bad_char",
            MalformedClass::SmtpLineTooLong => "smtp_line_too_long",
            MalformedClass::SmtpBadContinuation => "smtp_bad_continuation",
            MalformedClass::SpfPolicyLoop => "spf_policy_loop",
            MalformedClass::SpfLookupExhausted => "spf_lookup_exhausted",
        }
    }
}

/// Per-class counters of classified hostile-input rejections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MalformedStats {
    counts: [u64; MalformedClass::ALL.len()],
}

impl MalformedStats {
    /// Record one rejection of the given class.
    pub fn record(&mut self, class: MalformedClass) {
        self.counts[class.index()] += 1;
    }

    /// Rejections of one class.
    pub fn count(&self, class: MalformedClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total rejections across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulate another block into this one.
    pub fn merge(&mut self, other: &MalformedStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Rebuild from counters in [`MalformedClass::ALL`] order (the
    /// journal/store decode path).
    pub fn from_counts(counts: [u64; MalformedClass::ALL.len()]) -> MalformedStats {
        MalformedStats { counts }
    }

    /// Iterate `(class, count)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (MalformedClass, u64)> + '_ {
        MalformedClass::ALL
            .iter()
            .zip(self.counts.iter())
            .map(|(c, n)| (*c, *n))
    }
}

/// Fault counters, aggregated across engines and shards. All fields are
/// shard-count invariant (they count deterministic fate decisions and
/// their consequences, never wall-clock effects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// UDP datagrams (queries or responses) dropped by the loss oracle.
    pub dns_dropped: u64,
    /// UDP datagrams delivered twice.
    pub dns_duplicated: u64,
    /// UDP datagrams delivered late (reordered).
    pub dns_delayed: u64,
    /// UDP responses truncated mid-path.
    pub dns_truncated: u64,
    /// Lookups that concluded in a timeout outcome (includes retries
    /// exhausted under loss and unreachable v6-only zones).
    pub dns_timeouts: u64,
    /// SMTP segments replaced by connection resets.
    pub conn_resets: u64,
    /// SMTP segments stalled in flight.
    pub conn_stalls: u64,
    /// Stalls issued by flaky MTAs before reacting to MAIL.
    pub mta_stalls: u64,
    /// 451 tempfails issued by greylisting MTAs.
    pub tempfails: u64,
    /// Transaction retries performed by probe clients after 4xx replies.
    pub client_retries: u64,
    /// Session panics contained by the engine (`catch_unwind`).
    pub contained_panics: u64,
    /// Sessions terminated for exceeding their virtual-time or
    /// dispatched-event budget (`SessionOutcome::BudgetExhausted`).
    pub budget_exhausted: u64,
    /// DNS response datagrams mutated in flight by the payload plan.
    pub dns_payload_mutations: u64,
    /// SMTP reply segments mutated in flight by the payload plan.
    pub smtp_payload_mutations: u64,
    /// Sessions terminated because the probe client received input it
    /// refused to parse (`SessionOutcome::HostileInput`).
    pub hostile_inputs: u64,
    /// Sessions shed by the engine's memory budget before their queued
    /// payloads could blow up the shard (`SessionOutcome::ResourceShed`).
    pub resource_shed: u64,
    /// Classified hostile-input rejections, by taxonomy class.
    pub malformed: MalformedStats,
}

impl FaultStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.dns_dropped += other.dns_dropped;
        self.dns_duplicated += other.dns_duplicated;
        self.dns_delayed += other.dns_delayed;
        self.dns_truncated += other.dns_truncated;
        self.dns_timeouts += other.dns_timeouts;
        self.conn_resets += other.conn_resets;
        self.conn_stalls += other.conn_stalls;
        self.mta_stalls += other.mta_stalls;
        self.tempfails += other.tempfails;
        self.client_retries += other.client_retries;
        self.contained_panics += other.contained_panics;
        self.budget_exhausted += other.budget_exhausted;
        self.dns_payload_mutations += other.dns_payload_mutations;
        self.smtp_payload_mutations += other.smtp_payload_mutations;
        self.hostile_inputs += other.hostile_inputs;
        self.resource_shed += other.resource_shed;
        self.malformed.merge(&other.malformed);
    }

    /// True when any wire-level fault fired (injection diagnostics).
    pub fn any_injected(&self) -> bool {
        self.dns_dropped
            + self.dns_duplicated
            + self.dns_delayed
            + self.dns_truncated
            + self.conn_resets
            + self.conn_stalls
            + self.dns_payload_mutations
            + self.smtp_payload_mutations
            > 0
    }
}

/// A sealed fault plan: the fault configuration plus the latency model
/// whose [`LatencyModel::lost`] is the loss oracle.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    latency: LatencyModel,
    active: bool,
}

fn mix(seed: u64, session: u64, stream: u64, index: u64) -> u64 {
    // splitmix64-style finalizer over the four identifiers; any good
    // avalanche works, it just has to be stable.
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [session, stream, index] {
        h ^= v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 30)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

impl FaultPlan {
    /// Seal a plan from a config and the campaign's latency model.
    pub fn new(config: FaultConfig, latency: LatencyModel) -> FaultPlan {
        let active = latency.loss_probability > 0.0
            || config.duplicate_probability > 0.0
            || config.reorder_probability > 0.0
            || config.truncate_probability > 0.0
            || config.conn_reset_probability > 0.0
            || config.conn_stall_probability > 0.0;
        FaultPlan {
            config,
            latency,
            active,
        }
    }

    /// True when some fault can ever fire (fast-path check).
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn rng(&self, session: u64, stream: u64, index: u64) -> SimRng {
        SimRng::new(mix(self.config.seed, session, stream, index))
    }

    /// Decide the fate of one UDP datagram of `session`. `may_truncate`
    /// is true for responses (truncation of a query makes no sense).
    ///
    /// The decision depends only on `(plan, session, cursor position)` —
    /// never on global event order — so it is shard-count invariant.
    pub fn datagram_fate(
        &self,
        session: u64,
        cursor: &mut FaultCursor,
        may_truncate: bool,
    ) -> DatagramFate {
        if !self.active {
            return DatagramFate::Deliver;
        }
        let index = cursor.datagrams;
        cursor.datagrams += 1;
        let mut rng = self.rng(session, STREAM_DATAGRAM, index);
        if self.latency.lost(&mut rng) {
            return DatagramFate::Drop;
        }
        if may_truncate
            && self.config.truncate_probability > 0.0
            && rng.chance(self.config.truncate_probability)
        {
            return DatagramFate::Truncate;
        }
        if self.config.duplicate_probability > 0.0 && rng.chance(self.config.duplicate_probability)
        {
            let span = self.config.reorder_delay_ms.max(1);
            return DatagramFate::Duplicate {
                gap_ms: 1 + rng.next_below(span),
            };
        }
        if self.config.reorder_probability > 0.0 && rng.chance(self.config.reorder_probability) {
            let span = self.config.reorder_delay_ms.max(1);
            return DatagramFate::Delay {
                extra_ms: 1 + rng.next_below(span),
            };
        }
        DatagramFate::Deliver
    }

    /// Decide the fate of one SMTP segment of `session`.
    pub fn conn_fault(&self, session: u64, cursor: &mut FaultCursor) -> ConnFault {
        if !self.active {
            return ConnFault::Deliver;
        }
        let index = cursor.segments;
        cursor.segments += 1;
        let mut rng = self.rng(session, STREAM_SEGMENT, index);
        if self.config.conn_reset_probability > 0.0
            && rng.chance(self.config.conn_reset_probability)
        {
            return ConnFault::Reset;
        }
        if self.config.conn_stall_probability > 0.0
            && rng.chance(self.config.conn_stall_probability)
        {
            let span = self.config.conn_stall_ms.max(1);
            return ConnFault::Stall {
                extra_ms: 1 + rng.next_below(span),
            };
        }
        ConnFault::Deliver
    }
}

/// Probabilities for hostile-peer payload mutation. The default is
/// all-zero: a plan built from it never alters any bytes.
#[derive(Debug, Clone, Default)]
pub struct PayloadConfig {
    /// Probability a DNS *response* datagram is structurally corrupted
    /// before delivery.
    pub dns_corrupt_probability: f64,
    /// Probability an SMTP reply segment is corrupted before delivery.
    pub smtp_corrupt_probability: f64,
    /// Seed mixed into every mutation decision (fork of the campaign
    /// seed, independent of the transport [`FaultConfig::seed`]).
    pub seed: u64,
}

/// The structure-aware corruption applied to one DNS response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsMutation {
    /// One random bit flipped.
    BitFlip,
    /// One random byte overwritten.
    ByteSplice,
    /// A compression pointer spliced in that points at itself.
    PointerLoop,
    /// A compression pointer spliced in that points forward.
    ForwardPointer,
    /// A label-length byte rewritten to lie about its extent.
    LabelLie,
    /// The datagram cut short at a random offset.
    Truncation,
    /// The answer count bumped with garbage bytes appended as the
    /// phantom record.
    Inflation,
    /// A header section count rewritten to 0xFFFF.
    CountLie,
    /// Content-level: the answer replaced by a well-formed response
    /// whose TXT rdata is an SPF policy that includes its own name
    /// (hostile [`MalformedClass::SpfPolicyLoop`] bait). Only offered
    /// when the peer's hostile knob is set; the embedder synthesizes
    /// the bytes (it knows the query name).
    SpfCycle,
    /// Content-level: the answer replaced by a CNAME pointing back at
    /// the queried name. Only offered when the peer's hostile knob is
    /// set; the embedder synthesizes the bytes.
    CnameChain,
}

/// The corruption applied to one SMTP reply segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtpMutation {
    /// The 3-digit code replaced with garbage characters.
    GarbageCode,
    /// The line inflated past the 512-byte reply-line cap.
    OverlongLine,
    /// A NUL byte embedded in the reply text.
    EmbeddedNul,
    /// A bare CR (no following LF) embedded in the reply text.
    BareCr,
    /// A continuation line's code switched mid-reply.
    CodeSwitch,
    /// The final line's separator flipped to `-`, promising
    /// continuation lines that never come.
    ContinuationAbuse,
}

/// A sealed hostile-peer payload plan. Like [`FaultPlan`], every
/// decision is a pure function of `(plan seed, global session id,
/// per-session payload cursor)` via the same [`mix`] hashing, so the
/// mutation sequence each session observes is byte-identical across
/// shard counts and journal-replay resumes.
#[derive(Debug, Clone)]
pub struct PayloadPlan {
    config: PayloadConfig,
    active: bool,
}

impl PayloadPlan {
    /// Seal a plan from a config.
    pub fn new(config: PayloadConfig) -> PayloadPlan {
        let active = config.dns_corrupt_probability > 0.0 || config.smtp_corrupt_probability > 0.0;
        PayloadPlan { config, active }
    }

    /// True when some mutation can ever fire (fast-path check).
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn rng(&self, session: u64, stream: u64, index: u64) -> SimRng {
        SimRng::new(mix(self.config.seed, session, stream, index))
    }

    /// Maybe corrupt one DNS response datagram of `session` in place.
    /// `hostile_content` extends the mutation palette with the two
    /// content-level kinds ([`DnsMutation::SpfCycle`],
    /// [`DnsMutation::CnameChain`]); for those the bytes are left
    /// untouched and the caller synthesizes the replacement (it knows
    /// the query name). Returns the mutation applied, if any.
    pub fn mutate_dns(
        &self,
        session: u64,
        cursor: &mut FaultCursor,
        bytes: &mut Vec<u8>,
        hostile_content: bool,
    ) -> Option<DnsMutation> {
        if !self.active || bytes.is_empty() {
            return None;
        }
        let index = cursor.dns_payloads;
        cursor.dns_payloads += 1;
        let mut rng = self.rng(session, STREAM_DNS_PAYLOAD, index);
        if !rng.chance(self.config.dns_corrupt_probability) {
            return None;
        }
        let palette: &[DnsMutation] = if hostile_content {
            &[
                DnsMutation::BitFlip,
                DnsMutation::ByteSplice,
                DnsMutation::PointerLoop,
                DnsMutation::ForwardPointer,
                DnsMutation::LabelLie,
                DnsMutation::Truncation,
                DnsMutation::Inflation,
                DnsMutation::CountLie,
                DnsMutation::SpfCycle,
                DnsMutation::CnameChain,
            ]
        } else {
            &[
                DnsMutation::BitFlip,
                DnsMutation::ByteSplice,
                DnsMutation::PointerLoop,
                DnsMutation::ForwardPointer,
                DnsMutation::LabelLie,
                DnsMutation::Truncation,
                DnsMutation::Inflation,
                DnsMutation::CountLie,
            ]
        };
        let kind = *rng.pick(palette);
        match kind {
            DnsMutation::BitFlip => {
                let pos = rng.next_below(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << rng.next_below(8);
            }
            DnsMutation::ByteSplice => {
                let pos = rng.next_below(bytes.len() as u64) as usize;
                bytes[pos] = rng.next_u64() as u8;
            }
            DnsMutation::PointerLoop | DnsMutation::ForwardPointer => {
                // Splice a 2-byte compression pointer somewhere past the
                // 12-byte header. A self-pointer violates the strictly-
                // backwards rule (a one-hop loop); a forward pointer
                // targets bytes not yet parsed. Both must be rejected.
                if bytes.len() < 15 {
                    bytes.truncate(bytes.len().saturating_sub(1));
                } else {
                    let pos = 12 + rng.next_below((bytes.len() - 14) as u64) as usize;
                    let target = match kind {
                        DnsMutation::PointerLoop => pos as u64,
                        _ => (bytes.len() as u64 - 1).min(0x3FFF),
                    };
                    bytes[pos] = 0xC0 | ((target >> 8) as u8 & 0x3F);
                    bytes[pos + 1] = target as u8;
                }
            }
            DnsMutation::LabelLie => {
                // Rewrite one post-header byte to either a reserved
                // label tag (0b01/0b10) or a 63-byte length the
                // remaining buffer cannot satisfy.
                if bytes.len() < 14 {
                    bytes.truncate(bytes.len().saturating_sub(1));
                } else {
                    let pos = 12 + rng.next_below((bytes.len() - 13) as u64) as usize;
                    bytes[pos] = if rng.chance(0.5) {
                        0x40 | (rng.next_u64() as u8 & 0x3F)
                    } else {
                        0x3F
                    };
                }
            }
            DnsMutation::Truncation => {
                let keep = rng.next_below(bytes.len() as u64) as usize;
                bytes.truncate(keep);
            }
            DnsMutation::Inflation => {
                // Promise one more answer record than exists, backed by
                // garbage tail bytes the decoder must refuse.
                if bytes.len() >= 8 {
                    let an = u16::from_be_bytes([bytes[6], bytes[7]]).wrapping_add(1);
                    bytes[6..8].copy_from_slice(&an.to_be_bytes());
                }
                let extra = 1 + rng.next_below(48);
                for _ in 0..extra {
                    bytes.push(rng.next_u64() as u8);
                }
            }
            DnsMutation::CountLie => {
                if bytes.len() >= 12 {
                    let pos = 4 + 2 * rng.next_below(4) as usize;
                    bytes[pos] = 0xFF;
                    bytes[pos + 1] = 0xFF;
                }
            }
            DnsMutation::SpfCycle | DnsMutation::CnameChain => {
                // Content-level: the caller rebuilds the response.
            }
        }
        Some(kind)
    }

    /// Maybe corrupt one SMTP reply segment of `session` in place.
    /// Returns the mutation applied, if any.
    pub fn mutate_smtp(
        &self,
        session: u64,
        cursor: &mut FaultCursor,
        text: &mut String,
    ) -> Option<SmtpMutation> {
        if !self.active || text.is_empty() {
            return None;
        }
        let index = cursor.smtp_payloads;
        cursor.smtp_payloads += 1;
        let mut rng = self.rng(session, STREAM_SMTP_PAYLOAD, index);
        if !rng.chance(self.config.smtp_corrupt_probability) {
            return None;
        }
        const PALETTE: [SmtpMutation; 6] = [
            SmtpMutation::GarbageCode,
            SmtpMutation::OverlongLine,
            SmtpMutation::EmbeddedNul,
            SmtpMutation::BareCr,
            SmtpMutation::CodeSwitch,
            SmtpMutation::ContinuationAbuse,
        ];
        let kind = *rng.pick(&PALETTE);
        // Work on the line starts so multiline replies can be attacked
        // mid-dialogue; `text` may carry several CRLF-separated lines.
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(text.match_indices("\r\n").filter_map(|(i, _)| {
                let next = i + 2;
                (next < text.len()).then_some(next)
            }))
            .collect();
        match kind {
            SmtpMutation::GarbageCode => {
                let start = *rng.pick(&line_starts);
                let garbage = ["@#!", "abc", "9x9", "---"];
                let g = *rng.pick(&garbage);
                let end = (start + 3).min(text.len());
                if text.is_char_boundary(start) && text.is_char_boundary(end) {
                    text.replace_range(start..end, &g[..end - start]);
                }
            }
            SmtpMutation::OverlongLine => {
                let start = *rng.pick(&line_starts);
                let eol = text[start..].find("\r\n").map_or(text.len(), |i| start + i);
                text.insert_str(eol, &"x".repeat(600));
            }
            SmtpMutation::EmbeddedNul | SmtpMutation::BareCr => {
                let ch = if kind == SmtpMutation::EmbeddedNul {
                    '\0'
                } else {
                    '\r'
                };
                // Insert strictly inside a line (offset ≥ 4 from its
                // start) so the CRLF framing itself stays intact and
                // the parser sees the byte inside the reply text.
                let start = *rng.pick(&line_starts);
                let eol = text[start..].find("\r\n").map_or(text.len(), |i| start + i);
                let pos = if eol > start + 4 {
                    start + 4 + rng.next_below((eol - start - 4) as u64) as usize
                } else {
                    eol
                };
                if text.is_char_boundary(pos) {
                    text.insert(pos, ch);
                }
            }
            SmtpMutation::CodeSwitch => {
                // Rewrite the code digits of one line to a different
                // (valid) code: a mid-reply code switch on multiline
                // replies, an out-of-protocol code jump otherwise.
                let start = *rng.pick(&line_starts);
                let codes = ["299", "388", "477", "566"];
                let c = *rng.pick(&codes);
                let end = (start + 3).min(text.len());
                if text.is_char_boundary(start) && text.is_char_boundary(end) {
                    text.replace_range(start..end, &c[..end - start]);
                }
            }
            SmtpMutation::ContinuationAbuse => {
                let start = *line_starts.last().expect("at least one line");
                let sep = start + 3;
                if sep < text.len() && text.as_bytes()[sep] == b' ' {
                    text.replace_range(sep..=sep, "-");
                }
            }
        }
        Some(kind)
    }
}

/// Probabilities and limits for injected storage faults. The default is
/// all-zero: a plan built from it never fails an operation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IoConfig {
    /// Simulated disk capacity per file, bytes: every write that would
    /// push the file past this limit is cut short with an ENOSPC-style
    /// error (the allowed prefix is still written, exactly as a real
    /// filesystem fills). Zero means unlimited.
    pub enospc_after_bytes: u64,
    /// Probability a write persists only a prefix before erroring.
    pub short_write_probability: f64,
    /// Probability an fsync/fdatasync reports failure (data may or may
    /// not be durable — the caller must assume not).
    pub fsync_fail_probability: f64,
    /// Probability an atomic rename fails.
    pub rename_fail_probability: f64,
    /// Probability a whole-file read returns one corrupted byte.
    pub read_corrupt_probability: f64,
    /// Seed mixed into every fault decision (fork of the campaign seed,
    /// independent of the transport and payload seeds).
    pub seed: u64,
}

/// The fate of one write issued through the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Persist the full buffer.
    Full,
    /// Persist only the first `keep` bytes, then report an I/O error.
    Short {
        /// Bytes actually persisted before the fault.
        keep: usize,
    },
    /// Persist only the first `keep` bytes, then report ENOSPC: the
    /// simulated device is full and stays full.
    Enospc {
        /// Bytes that still fit before the capacity limit.
        keep: usize,
    },
}

/// A sealed storage fault plan. Like the transport and payload plans,
/// every decision is a pure function of `(plan seed, stable file id,
/// op stream, per-file op cursor)` via the same [`mix`] hashing — never
/// of wall-clock, thread scheduling, or global op order — so the fault
/// sequence each file observes is identical across shard counts and
/// across kill-and-resume (the per-file cursors are owned by the
/// filesystem layer, which re-derives them from file state on open).
#[derive(Debug, Clone)]
pub struct IoPlan {
    config: IoConfig,
    active: bool,
}

impl IoPlan {
    /// Seal a plan from a config.
    pub fn new(config: IoConfig) -> IoPlan {
        let active = config.enospc_after_bytes > 0
            || config.short_write_probability > 0.0
            || config.fsync_fail_probability > 0.0
            || config.rename_fail_probability > 0.0
            || config.read_corrupt_probability > 0.0;
        IoPlan { config, active }
    }

    /// True when some fault can ever fire (fast-path check).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The sealed configuration.
    pub fn config(&self) -> &IoConfig {
        &self.config
    }

    fn rng(&self, file_id: u64, stream: u64, index: u64) -> SimRng {
        SimRng::new(mix(self.config.seed, file_id, stream, index))
    }

    /// Decide the fate of one write of `len` bytes to the file
    /// identified by `file_id`, which already holds `written` bytes;
    /// `index` is the file's write-op cursor.
    pub fn write_fault(&self, file_id: u64, index: u64, written: u64, len: usize) -> WriteFault {
        if !self.active || len == 0 {
            return WriteFault::Full;
        }
        let cap = self.config.enospc_after_bytes;
        if cap > 0 && written.saturating_add(len as u64) > cap {
            return WriteFault::Enospc {
                keep: cap.saturating_sub(written).min(len as u64) as usize,
            };
        }
        if self.config.short_write_probability > 0.0 {
            let mut rng = self.rng(file_id, STREAM_IO_WRITE, index);
            if rng.chance(self.config.short_write_probability) {
                return WriteFault::Short {
                    keep: rng.next_below(len as u64) as usize,
                };
            }
        }
        WriteFault::Full
    }

    /// Decide whether the file's `index`-th fsync reports failure.
    pub fn fsync_fails(&self, file_id: u64, index: u64) -> bool {
        self.active
            && self.config.fsync_fail_probability > 0.0
            && self
                .rng(file_id, STREAM_IO_FSYNC, index)
                .chance(self.config.fsync_fail_probability)
    }

    /// Decide whether the file's `index`-th rename fails.
    pub fn rename_fails(&self, file_id: u64, index: u64) -> bool {
        self.active
            && self.config.rename_fail_probability > 0.0
            && self
                .rng(file_id, STREAM_IO_RENAME, index)
                .chance(self.config.rename_fail_probability)
    }

    /// Decide whether the file's `index`-th whole-file read of `len`
    /// bytes is corrupted; returns the byte position and XOR mask to
    /// apply (mask is never zero, so corruption always changes a byte).
    pub fn read_corruption(&self, file_id: u64, index: u64, len: usize) -> Option<(usize, u8)> {
        if !self.active || len == 0 || self.config.read_corrupt_probability <= 0.0 {
            return None;
        }
        let mut rng = self.rng(file_id, STREAM_IO_READ, index);
        if !rng.chance(self.config.read_corrupt_probability) {
            return None;
        }
        let pos = rng.next_below(len as u64) as usize;
        let mask = (rng.next_u64() as u8) | 1;
        Some((pos, mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: f64) -> LatencyModel {
        LatencyModel {
            loss_probability: p,
            ..Default::default()
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::new(FaultConfig::default(), LatencyModel::default());
        assert!(!plan.is_active());
        let mut cursor = FaultCursor::default();
        for _ in 0..100 {
            assert_eq!(
                plan.datagram_fate(3, &mut cursor, true),
                DatagramFate::Deliver
            );
            assert_eq!(plan.conn_fault(3, &mut cursor), ConnFault::Deliver);
        }
    }

    #[test]
    fn loss_routed_through_latency_model() {
        // loss_probability lives on the LatencyModel and the plan must
        // consult it — total loss means every datagram drops.
        let plan = FaultPlan::new(FaultConfig::default(), lossy(1.0));
        assert!(plan.is_active());
        let mut cursor = FaultCursor::default();
        for _ in 0..50 {
            assert_eq!(
                plan.datagram_fate(0, &mut cursor, false),
                DatagramFate::Drop
            );
        }
    }

    #[test]
    fn loss_statistics_follow_probability() {
        let plan = FaultPlan::new(FaultConfig::default(), lossy(0.3));
        let mut drops = 0;
        for session in 0..100u64 {
            let mut cursor = FaultCursor::default();
            for _ in 0..100 {
                if plan.datagram_fate(session, &mut cursor, true) == DatagramFate::Drop {
                    drops += 1;
                }
            }
        }
        assert!((2_600..3_400).contains(&drops), "drops={drops}");
    }

    #[test]
    fn fates_are_independent_of_consultation_order() {
        // The shard-determinism property: interleaving sessions A and B
        // must produce the same per-session fate sequences as running
        // them back to back.
        let config = FaultConfig {
            duplicate_probability: 0.1,
            reorder_probability: 0.1,
            reorder_delay_ms: 40,
            truncate_probability: 0.1,
            conn_reset_probability: 0.1,
            conn_stall_probability: 0.1,
            conn_stall_ms: 500,
            seed: 9,
            ..Default::default()
        };
        let plan = FaultPlan::new(config, lossy(0.1));

        let sequential: Vec<Vec<DatagramFate>> = (0..3u64)
            .map(|session| {
                let mut cursor = FaultCursor::default();
                (0..40)
                    .map(|_| plan.datagram_fate(session, &mut cursor, true))
                    .collect()
            })
            .collect();

        let mut cursors = [FaultCursor::default(); 3];
        let mut interleaved = vec![Vec::new(), Vec::new(), Vec::new()];
        for round in 0..40 {
            // Rotate the visiting order every round.
            for k in 0..3usize {
                let session = (round + k) % 3;
                interleaved[session].push(plan.datagram_fate(
                    session as u64,
                    &mut cursors[session],
                    true,
                ));
            }
        }
        assert_eq!(sequential, interleaved);
    }

    #[test]
    fn sessions_get_distinct_fault_sequences() {
        let plan = FaultPlan::new(FaultConfig::default(), lossy(0.5));
        let seq = |session: u64| -> Vec<DatagramFate> {
            let mut cursor = FaultCursor::default();
            (0..64)
                .map(|_| plan.datagram_fate(session, &mut cursor, true))
                .collect()
        };
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn truncation_only_offered_to_responses() {
        let config = FaultConfig {
            truncate_probability: 1.0,
            seed: 4,
            ..Default::default()
        };
        let plan = FaultPlan::new(config, LatencyModel::default());
        let mut cursor = FaultCursor::default();
        assert_eq!(
            plan.datagram_fate(0, &mut cursor, false),
            DatagramFate::Deliver
        );
        assert_eq!(
            plan.datagram_fate(0, &mut cursor, true),
            DatagramFate::Truncate
        );
    }

    #[test]
    fn conn_faults_fire_and_bound_their_magnitudes() {
        let config = FaultConfig {
            conn_reset_probability: 0.3,
            conn_stall_probability: 0.3,
            conn_stall_ms: 200,
            seed: 11,
            ..Default::default()
        };
        let plan = FaultPlan::new(config, LatencyModel::default());
        let mut resets = 0;
        let mut stalls = 0;
        for session in 0..50u64 {
            let mut cursor = FaultCursor::default();
            for _ in 0..50 {
                match plan.conn_fault(session, &mut cursor) {
                    ConnFault::Reset => resets += 1,
                    ConnFault::Stall { extra_ms } => {
                        assert!((1..=200).contains(&extra_ms));
                        stalls += 1;
                    }
                    ConnFault::Deliver => {}
                }
            }
        }
        assert!(resets > 500, "resets={resets}");
        assert!(stalls > 300, "stalls={stalls}");
    }

    #[test]
    fn default_payload_plan_is_inert() {
        let plan = PayloadPlan::new(PayloadConfig::default());
        assert!(!plan.is_active());
        let mut cursor = FaultCursor::default();
        let mut bytes = vec![1, 2, 3, 4];
        let mut text = "250 OK".to_string();
        for _ in 0..50 {
            assert_eq!(plan.mutate_dns(7, &mut cursor, &mut bytes, true), None);
            assert_eq!(plan.mutate_smtp(7, &mut cursor, &mut text), None);
        }
        assert_eq!(bytes, vec![1, 2, 3, 4]);
        assert_eq!(text, "250 OK");
    }

    #[test]
    fn payload_mutations_are_independent_of_consultation_order() {
        // The same shard-determinism property as the transport plan:
        // interleaving sessions must reproduce the back-to-back
        // per-session mutation sequences, bytes included.
        let plan = PayloadPlan::new(PayloadConfig {
            dns_corrupt_probability: 0.5,
            smtp_corrupt_probability: 0.5,
            seed: 21,
        });
        let base_frame: Vec<u8> = (0..64u8).collect();
        let run = |session: u64, cursor: &mut FaultCursor| -> (Vec<u8>, String) {
            let mut bytes = base_frame.clone();
            let mut text = "250-first\r\n250 done".to_string();
            plan.mutate_dns(session, cursor, &mut bytes, true);
            plan.mutate_smtp(session, cursor, &mut text);
            (bytes, text)
        };
        let sequential: Vec<Vec<(Vec<u8>, String)>> = (0..3u64)
            .map(|session| {
                let mut cursor = FaultCursor::default();
                (0..20).map(|_| run(session, &mut cursor)).collect()
            })
            .collect();
        let mut cursors = [FaultCursor::default(); 3];
        let mut interleaved = vec![Vec::new(), Vec::new(), Vec::new()];
        for round in 0..20 {
            for k in 0..3usize {
                let session = (round + k) % 3;
                interleaved[session].push(run(session as u64, &mut cursors[session]));
            }
        }
        assert_eq!(sequential, interleaved);
    }

    #[test]
    fn payload_mutations_fire_and_change_bytes() {
        let plan = PayloadPlan::new(PayloadConfig {
            dns_corrupt_probability: 1.0,
            smtp_corrupt_probability: 1.0,
            seed: 5,
        });
        assert!(plan.is_active());
        let base: Vec<u8> = (0..48u8).collect();
        let mut dns_changed = 0;
        let mut smtp_changed = 0;
        let mut content_kinds = 0;
        for session in 0..40u64 {
            let mut cursor = FaultCursor::default();
            let mut bytes = base.clone();
            let kind = plan
                .mutate_dns(session, &mut cursor, &mut bytes, true)
                .expect("p=1 must mutate");
            match kind {
                DnsMutation::SpfCycle | DnsMutation::CnameChain => content_kinds += 1,
                _ => {
                    assert_ne!(bytes, base, "{kind:?} left bytes untouched");
                    dns_changed += 1;
                }
            }
            let mut text = "250-greeting line here\r\n250 final line".to_string();
            plan.mutate_smtp(session, &mut cursor, &mut text)
                .expect("p=1 must mutate");
            if text != "250-greeting line here\r\n250 final line" {
                smtp_changed += 1;
            }
        }
        assert!(dns_changed > 10, "dns_changed={dns_changed}");
        assert!(content_kinds > 0, "content kinds never drawn");
        assert!(smtp_changed > 20, "smtp_changed={smtp_changed}");
    }

    #[test]
    fn content_mutations_gated_by_hostile_knob() {
        let plan = PayloadPlan::new(PayloadConfig {
            dns_corrupt_probability: 1.0,
            smtp_corrupt_probability: 0.0,
            seed: 6,
        });
        let base: Vec<u8> = (0..48u8).collect();
        for session in 0..100u64 {
            let mut cursor = FaultCursor::default();
            let mut bytes = base.clone();
            let kind = plan
                .mutate_dns(session, &mut cursor, &mut bytes, false)
                .expect("p=1 must mutate");
            assert!(
                !matches!(kind, DnsMutation::SpfCycle | DnsMutation::CnameChain),
                "content kind without hostile knob"
            );
        }
    }

    #[test]
    fn malformed_class_roundtrips_through_index() {
        for (i, class) in MalformedClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(MalformedClass::from_index(i), Some(*class));
            assert!(!class.label().is_empty());
        }
        assert_eq!(MalformedClass::from_index(MalformedClass::ALL.len()), None);
    }

    #[test]
    fn malformed_stats_merge_and_total() {
        let mut a = MalformedStats::default();
        a.record(MalformedClass::DnsBadPointer);
        a.record(MalformedClass::DnsBadPointer);
        let mut b = MalformedStats::default();
        b.record(MalformedClass::SmtpBadChar);
        a.merge(&b);
        assert_eq!(a.count(MalformedClass::DnsBadPointer), 2);
        assert_eq!(a.count(MalformedClass::SmtpBadChar), 1);
        assert_eq!(a.total(), 3);
        assert_eq!(a.iter().map(|(_, n)| n).sum::<u64>(), 3);
    }

    #[test]
    fn default_io_plan_is_inert() {
        let plan = IoPlan::new(IoConfig::default());
        assert!(!plan.is_active());
        for index in 0..100u64 {
            assert_eq!(plan.write_fault(3, index, index * 64, 64), WriteFault::Full);
            assert!(!plan.fsync_fails(3, index));
            assert!(!plan.rename_fails(3, index));
            assert_eq!(plan.read_corruption(3, index, 4096), None);
        }
    }

    #[test]
    fn enospc_caps_the_file_and_stays_full() {
        let plan = IoPlan::new(IoConfig {
            enospc_after_bytes: 100,
            seed: 1,
            ..Default::default()
        });
        assert!(plan.is_active());
        assert_eq!(plan.write_fault(0, 0, 0, 64), WriteFault::Full);
        assert_eq!(
            plan.write_fault(0, 1, 64, 64),
            WriteFault::Enospc { keep: 36 }
        );
        // Once at capacity, every further write yields zero bytes.
        assert_eq!(
            plan.write_fault(0, 2, 100, 1),
            WriteFault::Enospc { keep: 0 }
        );
        assert_eq!(
            plan.write_fault(0, 3, 100, 4096),
            WriteFault::Enospc { keep: 0 }
        );
    }

    #[test]
    fn short_writes_keep_a_strict_prefix() {
        let plan = IoPlan::new(IoConfig {
            short_write_probability: 1.0,
            seed: 2,
            ..Default::default()
        });
        for index in 0..50u64 {
            match plan.write_fault(9, index, 0, 128) {
                WriteFault::Short { keep } => assert!(keep < 128),
                other => panic!("p=1 must short-write, got {other:?}"),
            }
        }
    }

    #[test]
    fn io_faults_are_independent_of_consultation_order() {
        // The resume-invariance property: fault decisions depend only on
        // (file id, op index), never on the order files are visited.
        let plan = IoPlan::new(IoConfig {
            short_write_probability: 0.4,
            fsync_fail_probability: 0.3,
            rename_fail_probability: 0.3,
            read_corrupt_probability: 0.4,
            seed: 77,
            ..Default::default()
        });
        let probe = |file: u64, index: u64| {
            (
                plan.write_fault(file, index, index * 10, 64),
                plan.fsync_fails(file, index),
                plan.rename_fails(file, index),
                plan.read_corruption(file, index, 512),
            )
        };
        let sequential: Vec<Vec<_>> = (0..3u64)
            .map(|file| (0..40).map(|i| probe(file, i)).collect())
            .collect();
        let mut interleaved = vec![Vec::new(), Vec::new(), Vec::new()];
        for round in 0..40u64 {
            for k in 0..3usize {
                let file = (round as usize + k) % 3;
                interleaved[file].push(probe(file as u64, round));
            }
        }
        assert_eq!(sequential, interleaved);
    }

    #[test]
    fn distinct_files_get_distinct_io_fault_sequences() {
        let plan = IoPlan::new(IoConfig {
            fsync_fail_probability: 0.5,
            seed: 13,
            ..Default::default()
        });
        let seq = |file: u64| -> Vec<bool> { (0..64).map(|i| plan.fsync_fails(file, i)).collect() };
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn read_corruption_always_changes_a_byte_in_range() {
        let plan = IoPlan::new(IoConfig {
            read_corrupt_probability: 1.0,
            seed: 3,
            ..Default::default()
        });
        for index in 0..100u64 {
            let (pos, mask) = plan
                .read_corruption(4, index, 256)
                .expect("p=1 must corrupt");
            assert!(pos < 256);
            assert_ne!(mask, 0, "mask must change the byte");
        }
        assert_eq!(plan.read_corruption(4, 0, 0), None, "empty reads pass");
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let mut a = FaultStats {
            dns_dropped: 1,
            tempfails: 2,
            ..Default::default()
        };
        let b = FaultStats {
            dns_dropped: 3,
            contained_panics: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dns_dropped, 4);
        assert_eq!(a.tempfails, 2);
        assert_eq!(a.contained_panics, 4);
        assert!(a.any_injected());
        assert!(!FaultStats::default().any_injected());
    }
}
