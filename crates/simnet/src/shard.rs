//! Scoped-thread shard runner.
//!
//! The simulation substrate is single-threaded *per shard*: one
//! [`crate::Simulator`] owns one event queue and one virtual clock.
//! Embedders that can partition their workload into independent shards
//! (sessions that never exchange events) run one simulator per shard on
//! its own OS thread and merge the outputs afterwards. This module is
//! the thread plumbing: it owns no simulation state and imposes no
//! ordering of its own, so determinism is entirely the embedder's merge
//! discipline.

/// Wall-clock timing of one shard worker, for throughput accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardTiming {
    /// Shard index, `0..shard_count`.
    pub shard: usize,
    /// Wall-clock milliseconds the worker spent inside its closure.
    pub wall_ms: f64,
}

/// Run `work` once per input shard, each on its own scoped thread, and
/// return the outputs **in shard order** together with per-shard wall
/// times.
///
/// * With zero or one input the closure runs inline on the caller's
///   thread — no spawn cost for the `shards = 1` path.
/// * A panicking worker propagates the panic to the caller.
/// * Output order is the input order, never completion order, so a
///   deterministic merge downstream sees a deterministic input.
pub fn run_shards<I, O, F>(inputs: Vec<I>, work: F) -> Vec<(O, ShardTiming)>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    run_shards_catch(inputs, work)
        .into_iter()
        .map(|(result, timing)| match result {
            Ok(output) => (output, timing),
            Err(msg) => panic!("shard worker panicked: {msg}"),
        })
        .collect()
}

/// Like [`run_shards`], but a panicking worker is *caught* and surfaced
/// as an `Err` carrying the panic payload's message instead of taking
/// the caller down. Supervisors use this to restart individual shards
/// (e.g. from a journal) while the surviving shards' outputs stand.
/// `ShardTiming` covers the time up to the panic for failed workers.
pub fn run_shards_catch<I, O, F>(inputs: Vec<I>, work: F) -> Vec<(Result<O, String>, ShardTiming)>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let timed = |shard: usize, input: I, work: &F| {
        let started = std::time::Instant::now();
        let output = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(shard, input)))
            .map_err(|payload| panic_message(payload.as_ref()));
        let timing = ShardTiming {
            shard,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        };
        (output, timing)
    };
    if inputs.len() <= 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(shard, input)| timed(shard, input, &work))
            .collect();
    }
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(shard, input)| scope.spawn(move || timed(shard, input, work)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker double-panicked"))
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`; anything else becomes `"panic"`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_in_shard_order() {
        // Make later shards finish first; order must still be input order.
        let inputs = vec![30u64, 20, 10, 0];
        let out = run_shards(inputs, |shard, sleep_ms| {
            std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
            shard * 2
        });
        let values: Vec<usize> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![0, 2, 4, 6]);
        for (i, (_, t)) in out.iter().enumerate() {
            assert_eq!(t.shard, i);
            assert!(t.wall_ms >= 0.0);
        }
    }

    #[test]
    fn single_shard_runs_inline() {
        let id = std::thread::current().id();
        let out = run_shards(vec![()], |_, ()| std::thread::current().id());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, id);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<(u8, ShardTiming)> = run_shards(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn catch_surfaces_one_panic_without_killing_the_rest() {
        let out = run_shards_catch(vec![0u32, 1, 2, 3], |_, v| {
            if v == 2 {
                panic!("shard {v} exploded");
            }
            v * 10
        });
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].0, Ok(0));
        assert_eq!(out[1].0, Ok(10));
        assert_eq!(out[2].0, Err("shard 2 exploded".to_string()));
        assert_eq!(out[3].0, Ok(30));
        for (i, (_, t)) in out.iter().enumerate() {
            assert_eq!(t.shard, i);
        }
    }

    #[test]
    fn catch_works_on_the_inline_single_shard_path() {
        let out = run_shards_catch(vec![()], |_, ()| -> u8 { panic!("inline boom") });
        assert_eq!(out[0].0, Err("inline boom".to_string()));
    }
}
