//! A deterministic virtual-time event queue.
//!
//! The simulator is generic over the embedder's event type: the driver
//! loop pops `(time, event)` pairs and dispatches them itself, which
//! keeps the borrow checker out of the way (no boxed callbacks capturing
//! the world). Events at the same instant fire in insertion order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time_ms: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ms == other.time_ms && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time_ms
            .cmp(&self.time_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The virtual-time event queue.
pub struct Simulator<E> {
    now_ms: u64,
    seq: u64,
    queue: BinaryHeap<Entry<E>>,
    /// Total events dispatched (diagnostics / benches).
    pub dispatched: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// An empty simulator at time zero.
    pub fn new() -> Simulator<E> {
        Simulator {
            now_ms: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            dispatched: 0,
        }
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Schedule `event` to fire `delay_ms` from now.
    pub fn schedule(&mut self, delay_ms: u64, event: E) {
        self.schedule_at(self.now_ms + delay_ms, event);
    }

    /// Schedule `event` at an absolute virtual time (clamped to now).
    pub fn schedule_at(&mut self, time_ms: u64, event: E) {
        let time_ms = time_ms.max(self.now_ms);
        self.queue.push(Entry {
            time_ms,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the next event, advancing the clock to its firing time.
    /// (Named like, but deliberately not, `Iterator::next` — iterating
    /// borrows `&mut self` per event, which an `Iterator` impl cannot.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(u64, E)> {
        let entry = self.queue.pop()?;
        debug_assert!(entry.time_ms >= self.now_ms, "time went backwards");
        self.now_ms = entry.time_ms;
        self.dispatched += 1;
        Some((entry.time_ms, entry.event))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule(30, "c");
        sim.schedule(10, "a");
        sim.schedule(20, "b");
        assert_eq!(sim.next(), Some((10, "a")));
        assert_eq!(sim.now_ms(), 10);
        assert_eq!(sim.next(), Some((20, "b")));
        assert_eq!(sim.next(), Some((30, "c")));
        assert_eq!(sim.next(), None);
        assert_eq!(sim.dispatched, 3);
    }

    #[test]
    fn same_instant_fifo() {
        let mut sim = Simulator::new();
        for i in 0..100 {
            sim.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(sim.next(), Some((5, i)));
        }
    }

    #[test]
    fn relative_to_advanced_clock() {
        let mut sim = Simulator::new();
        sim.schedule(10, 1);
        sim.next();
        sim.schedule(5, 2);
        assert_eq!(sim.next(), Some((15, 2)));
    }

    #[test]
    fn schedule_at_past_clamps() {
        let mut sim = Simulator::new();
        sim.schedule(10, 1);
        sim.next();
        sim.schedule_at(3, 2); // in the past → fires now
        assert_eq!(sim.next(), Some((10, 2)));
    }

    #[test]
    fn interleaved_scheduling() {
        // An event chain: each event schedules the next.
        let mut sim = Simulator::new();
        sim.schedule(1, 0u64);
        let mut fired = Vec::new();
        while let Some((t, ev)) = sim.next() {
            fired.push((t, ev));
            if ev < 5 {
                sim.schedule(2, ev + 1);
            }
        }
        assert_eq!(fired, vec![(1, 0), (3, 1), (5, 2), (7, 3), (9, 4), (11, 5)]);
    }
}
