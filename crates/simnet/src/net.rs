//! Per-pair latency modeling between simulated endpoints.
//!
//! The paper's timing inferences (Fig. 3: serial vs parallel; Fig. 5:
//! elapsed validation time) are functions of RTT(validator, resolver),
//! RTT(resolver, authoritative) and server-imposed delays. This model
//! assigns each endpoint pair a stable one-way delay: a deterministic
//! hash of the pair plus a configurable base and spread, with optional
//! loss.

use crate::rng::SimRng;
use std::net::IpAddr;

/// Latency/loss model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Minimum one-way delay, ms.
    pub base_one_way_ms: u64,
    /// Additional per-pair spread, ms (uniform, stable per pair).
    pub spread_ms: u64,
    /// Probability a datagram is lost (applied per transmission by the
    /// caller via [`LatencyModel::lost`]).
    pub loss_probability: f64,
    /// Seed mixed into the per-pair hash.
    pub seed: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_one_way_ms: 5,
            spread_ms: 40,
            loss_probability: 0.0,
            seed: 0,
        }
    }
}

fn hash_ip(ip: &IpAddr, state: &mut u64) {
    let mix = |state: &mut u64, v: u64| {
        *state ^= v;
        *state = state.wrapping_mul(0x100000001b3);
    };
    match ip {
        IpAddr::V4(v4) => mix(state, u32::from(*v4) as u64),
        IpAddr::V6(v6) => {
            let o = u128::from(*v6);
            mix(state, o as u64);
            mix(state, (o >> 64) as u64);
        }
    }
}

impl LatencyModel {
    /// Stable one-way delay between two endpoints, in ms. Symmetric.
    pub fn one_way_ms(&self, a: &IpAddr, b: &IpAddr) -> u64 {
        if self.spread_ms == 0 {
            return self.base_one_way_ms;
        }
        let mut h = 0xcbf29ce484222325u64 ^ self.seed;
        // Order-independent mix for symmetry.
        let mut ha = 0xcbf29ce484222325u64;
        let mut hb = 0xcbf29ce484222325u64;
        hash_ip(a, &mut ha);
        hash_ip(b, &mut hb);
        h ^= ha.wrapping_add(hb);
        h = h.wrapping_mul(0x2545F4914F6CDD1D);
        self.base_one_way_ms + (h >> 33) % self.spread_ms
    }

    /// Round-trip time between two endpoints, in ms.
    pub fn rtt_ms(&self, a: &IpAddr, b: &IpAddr) -> u64 {
        2 * self.one_way_ms(a, b)
    }

    /// Should this transmission be lost? (Caller rolls per datagram.)
    pub fn lost(&self, rng: &mut SimRng) -> bool {
        self.loss_probability > 0.0 && rng.chance(self.loss_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn stable_and_symmetric() {
        let m = LatencyModel::default();
        let a = ip("192.0.2.1");
        let b = ip("198.51.100.7");
        assert_eq!(m.one_way_ms(&a, &b), m.one_way_ms(&a, &b));
        assert_eq!(m.one_way_ms(&a, &b), m.one_way_ms(&b, &a));
        assert_eq!(m.rtt_ms(&a, &b), 2 * m.one_way_ms(&a, &b));
    }

    #[test]
    fn within_bounds() {
        let m = LatencyModel {
            base_one_way_ms: 10,
            spread_ms: 30,
            ..Default::default()
        };
        for i in 0..100u8 {
            let a = ip(&format!("10.0.0.{i}"));
            let b = ip("192.0.2.1");
            let d = m.one_way_ms(&a, &b);
            assert!((10..40).contains(&d), "{d}");
        }
    }

    #[test]
    fn pairs_differ() {
        let m = LatencyModel::default();
        let base = ip("192.0.2.1");
        let delays: std::collections::HashSet<u64> = (0..50u8)
            .map(|i| m.one_way_ms(&base, &ip(&format!("10.1.2.{i}"))))
            .collect();
        assert!(delays.len() > 5, "delays should vary across pairs");
    }

    #[test]
    fn zero_spread_is_constant() {
        let m = LatencyModel {
            base_one_way_ms: 7,
            spread_ms: 0,
            ..Default::default()
        };
        assert_eq!(m.one_way_ms(&ip("10.0.0.1"), &ip("10.0.0.2")), 7);
    }

    #[test]
    fn v6_endpoints_supported() {
        let m = LatencyModel::default();
        let d = m.one_way_ms(&ip("2001:db8::1"), &ip("2001:db8::2"));
        assert!(d >= m.base_one_way_ms);
    }

    #[test]
    fn loss_probability() {
        let mut rng = SimRng::new(3);
        let lossless = LatencyModel::default();
        assert!(!(0..100).any(|_| lossless.lost(&mut rng)));
        let lossy = LatencyModel {
            loss_probability: 0.5,
            ..Default::default()
        };
        let losses = (0..1000).filter(|_| lossy.lost(&mut rng)).count();
        assert!((400..600).contains(&losses));
    }
}
