//! # mailval-simnet
//!
//! A small, deterministic discrete-event simulation substrate:
//!
//! * [`sim`] — a virtual-time event queue generic over the embedder's
//!   event type. Single-threaded, deterministic, million-events-per-
//!   second cheap.
//! * [`rng`] — a self-contained xoshiro256** PRNG plus the samplers the
//!   population models need (Bernoulli, weighted choice, Zipf, shuffle).
//!   No dependency on the `rand` crate: reproducibility of the simulated
//!   Internet across toolchain updates matters more than API comfort.
//! * [`net`] — a latency model assigning per-pair RTTs between simulated
//!   endpoints, with optional jitter and loss, used to time DNS and SMTP
//!   exchanges (the serial-vs-parallel inference of §7.1 of the paper is
//!   all about these RTT sums).
//! * [`shard`] — a scoped-thread shard runner: workloads that partition
//!   into independent shards run one simulator per shard in parallel and
//!   merge outputs deterministically afterwards.
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   deciding per-datagram drop / duplicate / reorder / truncate and
//!   per-connection resets and stalls, as pure functions of stable
//!   identifiers so fates are byte-identical across shard counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod net;
pub mod rng;
pub mod shard;
pub mod sim;

pub use fault::{
    ConnFault, DatagramFate, DnsMutation, FaultConfig, FaultCursor, FaultPlan, FaultStats,
    IoConfig, IoPlan, MalformedClass, MalformedStats, PayloadConfig, PayloadPlan, SmtpMutation,
    WriteFault,
};
pub use net::LatencyModel;
pub use rng::SimRng;
pub use shard::{run_shards, run_shards_catch, ShardTiming};
pub use sim::Simulator;
