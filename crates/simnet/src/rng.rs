//! Deterministic PRNG (xoshiro256**) and distribution samplers.

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and tiny.
/// Seeded via SplitMix64 so any `u64` seed yields a good state.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent stream (for per-entity RNGs).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. Debiased via Lemire's method.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Choose an index by weight. Weights need not be normalized.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to > 0");
        let mut roll = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            roll -= w;
            if roll < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Pick a uniformly random element.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty());
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle. The paper shuffled the order in which MTAs
    /// were probed to avoid concentrating load on one domain (§5.2).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipf-distributed sampler over ranks `1..=n` with exponent `s`,
/// using a precomputed CDF (fine for the dataset sizes here). Used to
/// model the query-demand skew behind the paper's TwoWeekMX deciles.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with exponent `s` (> 0).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `[0, n)` (0-based).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(SimRng::new(1).next_below(1), 0);
    }

    #[test]
    fn chance_statistics() {
        let mut rng = SimRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn weighted_choice_statistics() {
        let mut rng = SimRng::new(13);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        assert!((800..1200).contains(&counts[0]), "{counts:?}");
        assert!((2700..3300).contains(&counts[1]), "{counts:?}");
        assert!((5700..6300).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(19);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // PMF sums to 1.
        let total: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = SimRng::new(23);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
