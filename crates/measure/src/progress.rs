//! The one place `[mailval]` progress lines come from.
//!
//! Every long-running stage of the pipeline — campaign simulation,
//! store hits and misses, artifact rendering — reports through
//! [`progress!`] so runs are attributable in logs: one prefix, one
//! stream (stderr), and campaign lines always carry the content hash
//! that names the work. Artifact *output* goes to stdout; everything
//! here is diagnostics and never mixes with it.
//!
//! Setting `MAILVAL_QUIET` to anything but `0` or the empty string
//! silences the channel (checked once per process): diagnostics only,
//! so suppressing it cannot change any result.

use std::fmt;
use std::sync::OnceLock;

/// Is the progress channel silenced by `MAILVAL_QUIET`?
pub fn quiet() -> bool {
    static QUIET: OnceLock<bool> = OnceLock::new();
    *QUIET.get_or_init(|| std::env::var("MAILVAL_QUIET").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Emit one `[mailval]` line to stderr. Prefer the [`crate::progress!`]
/// macro, which formats in place.
pub fn emit(args: fmt::Arguments<'_>) {
    if !quiet() {
        eprintln!("[mailval] {args}");
    }
}

/// Format and emit one `[mailval]` progress line to stderr.
///
/// ```
/// mailval_measure::progress!("rendering {} artifact(s)", 3);
/// ```
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::emit(format_args!($($arg)*))
    };
}

/// Render a [`crate::store::StoreStatus`] for a progress line, without
/// allocating: the wrapper formats straight into the line's writer.
pub fn store_status(status: &crate::store::StoreStatus) -> StoreStatusDisplay<'_> {
    StoreStatusDisplay(status)
}

/// [`fmt::Display`] adapter for [`crate::store::StoreStatus`].
pub struct StoreStatusDisplay<'a>(&'a crate::store::StoreStatus);

impl fmt::Display for StoreStatusDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            crate::store::StoreStatus::Hit => f.write_str("hit"),
            crate::store::StoreStatus::Miss(reason) => write!(f, "miss({reason})"),
            crate::store::StoreStatus::Off => f.write_str("off"),
        }
    }
}
