//! The one place `[mailval]` progress lines come from.
//!
//! Every long-running stage of the pipeline — campaign simulation,
//! store hits and misses, artifact rendering — reports through
//! [`progress!`] so runs are attributable in logs: one prefix, one
//! stream (stderr), and campaign lines always carry the content hash
//! that names the work. Artifact *output* goes to stdout; everything
//! here is diagnostics and never mixes with it.

use std::fmt;

/// Emit one `[mailval]` line to stderr. Prefer the [`crate::progress!`]
/// macro, which formats in place.
pub fn emit(args: fmt::Arguments<'_>) {
    eprintln!("[mailval] {args}");
}

/// Format and emit one `[mailval]` progress line to stderr.
///
/// ```
/// mailval_measure::progress!("rendering {} artifact(s)", 3);
/// ```
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress::emit(format_args!($($arg)*))
    };
}

/// Render a [`crate::store::StoreStatus`] for a progress line.
pub fn store_status(status: &crate::store::StoreStatus) -> String {
    match status {
        crate::store::StoreStatus::Hit => "hit".to_string(),
        crate::store::StoreStatus::Miss(reason) => format!("miss({reason})"),
        crate::store::StoreStatus::Off => "off".to_string(),
    }
}
