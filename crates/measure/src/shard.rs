//! Campaign sharding: partition independent sessions across engines and
//! merge their outputs deterministically.
//!
//! Sessions of a campaign never interact — each drives its own MTA,
//! resolver and client state machines, and the shared authoritative
//! server answers every query statelessly from the name alone. A
//! campaign therefore partitions its session list into `K` shards, runs
//! one [`crate::engine::SessionEngine`] per shard on its own thread
//! (via [`mailval_simnet::run_shards`]), and merges:
//!
//! * query logs by the stable `(time_ms, session)` key
//!   ([`crate::apparatus::QueryLog::merge`]);
//! * session records back into global `session_id` order
//!   ([`merge_session_records`]).
//!
//! Both merges are independent of `K` and of thread scheduling, so
//! `shards = K` output is byte-identical to `shards = 1`.

use crate::engine::{EngineStats, SessionRecord};
use mailval_simnet::FaultStats;

/// Lightweight per-shard counters surfaced in
/// [`crate::campaign::CampaignResult`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Shard index, `0..shard_count`.
    pub shard: usize,
    /// Sessions this shard drove.
    pub sessions: usize,
    /// Virtual events its engine dispatched.
    pub events: u64,
    /// Queries it logged at the authoritative server.
    pub queries_logged: u64,
    /// Its final virtual clock, ms.
    pub virtual_ms: u64,
    /// Wall-clock time the shard's worker ran, ms (the only
    /// non-deterministic field; diagnostics only).
    pub wall_ms: f64,
    /// Injected-fault and recovery counters for this shard's sessions.
    pub faults: FaultStats,
    /// Times the supervisor restarted this shard after a crash (0 for
    /// an undisturbed run).
    pub restarts: u32,
    /// The shard's journal failed mid-run and was demoted to
    /// non-durable mode (results complete, crash coverage lost).
    /// Observability only: like `wall_ms` it is never part of the
    /// campaign's content hash.
    pub durability_lost: bool,
}

impl ShardStats {
    /// Combine engine counters with the runner's wall-clock timing and
    /// the supervisor's restart count.
    pub fn new(shard: usize, stats: EngineStats, wall_ms: f64, restarts: u32) -> ShardStats {
        ShardStats {
            shard,
            sessions: stats.sessions,
            events: stats.events,
            queries_logged: stats.queries_logged,
            virtual_ms: stats.virtual_ms,
            wall_ms,
            faults: stats.faults,
            restarts,
            durability_lost: stats.durability_lost,
        }
    }
}

/// Partition `n` sessions into `shards` index lists, round-robin:
/// session `i` goes to shard `i % shards`. Round-robin keeps shard
/// loads balanced even though campaign build order clusters sessions by
/// test and host. A `shards` of 0 is treated as 1; empty shards are
/// dropped (never more shards than sessions).
pub fn partition(n: usize, shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let mut parts: Vec<Vec<usize>> = (0..shards)
        .map(|_| Vec::with_capacity(n / shards + 1))
        .collect();
    for i in 0..n {
        parts[i % shards].push(i);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// Merge per-shard session records back into global `session_id` order.
pub fn merge_session_records(per_shard: Vec<Vec<SessionRecord>>) -> Vec<SessionRecord> {
    let mut all: Vec<SessionRecord> = per_shard.into_iter().flatten().collect();
    all.sort_by_key(|r| r.session_id);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_round_robin_covers_all() {
        let parts = partition(10, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], vec![0, 4, 8]);
        assert_eq!(parts[1], vec![1, 5, 9]);
        assert_eq!(parts[2], vec![2, 6]);
        assert_eq!(parts[3], vec![3, 7]);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn partition_never_exceeds_sessions() {
        assert_eq!(partition(2, 8).len(), 2);
        assert_eq!(partition(0, 4).len(), 0);
        assert_eq!(partition(5, 0).len(), 1);
        assert_eq!(partition(5, 1)[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn merge_restores_global_order() {
        let rec = |session_id: usize| SessionRecord {
            session_id,
            host_index: 0,
            domain_index: 0,
            testid: None,
            start_ms: 0,
            outcome: None,
            delivery_time_ms: None,
            closed_by_server: false,
            error: None,
            termination: crate::engine::SessionOutcome::Completed,
        };
        let merged =
            merge_session_records(vec![vec![rec(0), rec(2), rec(4)], vec![rec(1), rec(3)]]);
        let ids: Vec<usize> = merged.iter().map(|r| r.session_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
