//! The 39 SPF test policies (§4.3.2 of the paper) and their on-the-fly
//! synthesis.
//!
//! Each test is identified by a `tNN` label embedded in the probe's From
//! domain. Given the labels left of the `tNN.mNNNNN` pair (the *path*)
//! and the query type, [`synthesize_probe`] produces the response the
//! authoritative server returns — policies, hint records, delays,
//! truncation and v6-only flags included. Nothing is stored; the
//! 27.8M-record logical zone exists only as this function (§4.5).

use mailval_dns::rr::{RData, RecordType};
use mailval_dns::server::AuthorityAnswer;
use mailval_dns::{Name, Record};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Identifiers and descriptions of all 39 test policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TestPolicyId {
    /// The `tNN` label.
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// What the test elicits.
    pub description: &'static str,
}

/// The full catalog. The first eleven are the tests whose results the
/// paper discusses (§6.2, §7.1–§7.3); the rest exercise auxiliary
/// behaviors and feed the fingerprinting extension (§8).
pub const ALL_TESTS: &[TestPolicyId] = &[
    TestPolicyId {
        id: "t01",
        name: "serial-parallel",
        description:
            "include-chain + a-hint with 100ms delays; infers serial vs parallel lookups (Fig. 3)",
    },
    TestPolicyId {
        id: "t02",
        name: "lookup-limits",
        description: "46-lookup include tree with 800ms delays; tests the 10-term limit (Fig. 4/5)",
    },
    TestPolicyId {
        id: "t03",
        name: "helo-check",
        description: "-all policy at the HELO identity; do MTAs check it? (§7.3)",
    },
    TestPolicyId {
        id: "t04",
        name: "syntax-main",
        description: "'ipv4' typo in the main policy; do MTAs keep evaluating? (§7.3)",
    },
    TestPolicyId {
        id: "t05",
        name: "syntax-child",
        description: "syntax error inside an included policy (§7.3)",
    },
    TestPolicyId {
        id: "t06",
        name: "void-lookups",
        description: "five dead 'a' hints; void-lookup limit (§7.3)",
    },
    TestPolicyId {
        id: "t07",
        name: "mx-fallback",
        description: "mx of a nonexistent name; RFC-forbidden A fallback (§7.3)",
    },
    TestPolicyId {
        id: "t08",
        name: "multi-record",
        description: "two SPF records at one name (§7.3)",
    },
    TestPolicyId {
        id: "t09",
        name: "tcp-only",
        description: "truncated UDP answers force TCP retrieval (§7.3)",
    },
    TestPolicyId {
        id: "t10",
        name: "ipv6-only",
        description: "included policy served only over IPv6 (§7.3)",
    },
    TestPolicyId {
        id: "t11",
        name: "mx-twenty",
        description: "mx with 20 exchanges; per-mx address-lookup limit (§7.3)",
    },
    TestPolicyId {
        id: "t12",
        name: "fail-all",
        description: "plain -all",
    },
    TestPolicyId {
        id: "t13",
        name: "softfail-all",
        description: "plain ~all",
    },
    TestPolicyId {
        id: "t14",
        name: "neutral-all",
        description: "plain ?all",
    },
    TestPolicyId {
        id: "t15",
        name: "pass-all",
        description: "plain +all",
    },
    TestPolicyId {
        id: "t16",
        name: "ip4-literal",
        description: "non-matching ip4 literal then -all",
    },
    TestPolicyId {
        id: "t17",
        name: "a-simple",
        description: "single a-hint",
    },
    TestPolicyId {
        id: "t18",
        name: "mx-simple",
        description: "mx with two live exchanges",
    },
    TestPolicyId {
        id: "t19",
        name: "redirect",
        description: "redirect= to a live policy",
    },
    TestPolicyId {
        id: "t20",
        name: "redirect-loop",
        description: "redirect= pointing at itself; loop protection",
    },
    TestPolicyId {
        id: "t21",
        name: "exists-macro",
        description: "exists:%{ir} macro expansion observable in the query name",
    },
    TestPolicyId {
        id: "t22",
        name: "ptr",
        description: "ptr mechanism (discouraged by RFC 7208 §5.5)",
    },
    TestPolicyId {
        id: "t23",
        name: "include-pass",
        description: "include whose child passes everything",
    },
    TestPolicyId {
        id: "t24",
        name: "include-chain-13",
        description: "13-deep include chain; limit placement",
    },
    TestPolicyId {
        id: "t25",
        name: "long-policy",
        description: "policy > 255 octets (multi-string TXT) and > 512-byte answer",
    },
    TestPolicyId {
        id: "t26",
        name: "cname-include",
        description: "include target behind a CNAME",
    },
    TestPolicyId {
        id: "t27",
        name: "uppercase",
        description: "policy spelled in uppercase",
    },
    TestPolicyId {
        id: "t28",
        name: "no-record",
        description: "NODATA at the policy name",
    },
    TestPolicyId {
        id: "t29",
        name: "empty-policy",
        description: "bare v=spf1",
    },
    TestPolicyId {
        id: "t30",
        name: "unknown-modifier",
        description: "unknown modifier must be ignored",
    },
    TestPolicyId {
        id: "t31",
        name: "exp-modifier",
        description: "exp= explanation; do MTAs fetch it?",
    },
    TestPolicyId {
        id: "t32",
        name: "slow-answer",
        description: "2s delay on the base policy; timeout tolerance",
    },
    TestPolicyId {
        id: "t33",
        name: "servfail-child",
        description: "SERVFAIL for an included policy; temperror handling",
    },
    TestPolicyId {
        id: "t34",
        name: "a-cidr4",
        description: "a-hint with /24 suffix",
    },
    TestPolicyId {
        id: "t35",
        name: "dual-cidr6",
        description: "a-hint with //64 and an ip6 literal",
    },
    TestPolicyId {
        id: "t36",
        name: "eleven-terms",
        description: "exactly 11 DNS terms; off-by-one limit enforcement",
    },
    TestPolicyId {
        id: "t37",
        name: "void-includes",
        description: "three includes of nonexistent names",
    },
    TestPolicyId {
        id: "t38",
        name: "split-txt",
        description: "policy split mid-mechanism across TXT strings",
    },
    TestPolicyId {
        id: "t39",
        name: "control-pass",
        description: "control: policy passes any sender",
    },
];

/// Look up a test by id label.
pub fn test_by_id(id: &str) -> Option<&'static TestPolicyId> {
    ALL_TESTS.iter().find(|t| t.id == id)
}

/// Addresses the synthesized hint records point at. `unrelated` never
/// matches the probe client (the probes are designed to fail, §4.3.2);
/// `sender_v4`/`sender_v6` are the apparatus's own addresses (the
/// NotifyEmail policy must pass, §4.3.1).
#[derive(Debug, Clone)]
pub struct SynthAddrs {
    /// An address unaffiliated with the apparatus (192.0.2.1 in the
    /// paper's Figure 3).
    pub unrelated: Ipv4Addr,
    /// The sending client's IPv4 address.
    pub sender_v4: Ipv4Addr,
    /// The sending client's IPv6 address.
    pub sender_v6: Ipv6Addr,
}

impl Default for SynthAddrs {
    fn default() -> Self {
        SynthAddrs {
            unrelated: Ipv4Addr::new(192, 0, 2, 1),
            sender_v4: Ipv4Addr::new(198, 51, 100, 25),
            sender_v6: "2001:db8:25::25".parse().expect("valid"),
        }
    }
}

fn txt(name: &Name, policy: &str) -> AuthorityAnswer {
    AuthorityAnswer::positive(vec![Record::new(
        name.clone(),
        60,
        RData::txt_from_str(policy),
    )])
}

fn a_record(name: &Name, addr: Ipv4Addr) -> AuthorityAnswer {
    AuthorityAnswer::positive(vec![Record::new(name.clone(), 60, RData::A(addr))])
}

fn aaaa_record(name: &Name, addr: Ipv6Addr) -> AuthorityAnswer {
    AuthorityAnswer::positive(vec![Record::new(name.clone(), 60, RData::Aaaa(addr))])
}

/// Synthesize the answer for a probe-suffix query.
///
/// * `testid` — the `tNN` label.
/// * `path` — labels left of `tNN.mNNNNN`, leftmost first (empty for
///   the base L0 name).
/// * `qname` — the full queried name (used as the owner of records).
/// * `base` — the L0 name `tNN.mNNNNN.<suffix>` (targets of follow-up
///   mechanisms are spelled relative to it).
pub fn synthesize_probe(
    testid: &str,
    path: &[String],
    qname: &Name,
    base: &Name,
    qtype: RecordType,
    addrs: &SynthAddrs,
) -> AuthorityAnswer {
    let is_base = path.is_empty();
    let want_txt = qtype == RecordType::Txt;
    let path_strs: Vec<&str> = path.iter().map(|s| s.as_str()).collect();

    // The HELO identity `h.<base>` only has a policy for t03; everywhere
    // else it does not exist.
    if path_strs == ["h"] {
        return if testid == "t03" && want_txt {
            txt(qname, "v=spf1 -all")
        } else {
            AuthorityAnswer::nxdomain()
        };
    }

    match testid {
        // --- Fig. 3: serial vs parallel -------------------------------
        "t01" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(
                qname,
                &format!("v=spf1 include:l1.{base} a:foo.{base} -all"),
            ),
            (["l1"], RecordType::Txt) => {
                txt(qname, &format!("v=spf1 include:l2.{base} ?all")).with_delay_ms(100)
            }
            (["l2"], RecordType::Txt) => {
                txt(qname, &format!("v=spf1 include:l3.{base} ?all")).with_delay_ms(100)
            }
            (["l3"], RecordType::Txt) => txt(qname, "v=spf1 ?all"),
            (["foo"], RecordType::A) => a_record(qname, addrs.unrelated),
            (["foo"], RecordType::Aaaa) => AuthorityAnswer::nodata(),
            _ => AuthorityAnswer::nxdomain(),
        },

        // --- Fig. 4/5: the 46-lookup stress tree -----------------------
        // L0 includes five 9-lookup subtrees s1..s5 plus one address
        // hint x46. Subtree DFS: r → a → c → f → h(A), g(A), d(A),
        // b → e(A). All subtree answers are delayed 800 ms.
        "t02" => {
            if is_base && want_txt {
                return txt(
                    qname,
                    &format!(
                        "v=spf1 include:s1.{base} include:s2.{base} include:s3.{base} \
                         include:s4.{base} include:s5.{base} a:x46.{base} -all"
                    ),
                );
            }
            let delayed = |answer: AuthorityAnswer| answer.with_delay_ms(800);
            if let (Some("x46"), RecordType::A | RecordType::Aaaa) =
                (path_strs.first().copied(), qtype)
            {
                return delayed(a_record(qname, addrs.unrelated));
            }
            // Subtree nodes: path is [node, ..., subtree-root].
            let node = path_strs.first().copied().unwrap_or("");
            match (node, qtype) {
                (s, RecordType::Txt) if s.starts_with('s') && path.len() == 1 => delayed(txt(
                    qname,
                    &format!("v=spf1 include:a.{qname} include:b.{qname} ?all"),
                )),
                ("a", RecordType::Txt) => delayed(txt(
                    qname,
                    &format!("v=spf1 include:c.{qname} a:d.{qname} ?all"),
                )),
                ("c", RecordType::Txt) => delayed(txt(
                    qname,
                    &format!("v=spf1 include:f.{qname} a:g.{qname} ?all"),
                )),
                ("f", RecordType::Txt) => delayed(txt(qname, &format!("v=spf1 a:h.{qname} ?all"))),
                ("b", RecordType::Txt) => delayed(txt(qname, &format!("v=spf1 a:e.{qname} ?all"))),
                ("d" | "e" | "g" | "h", RecordType::A | RecordType::Aaaa) => {
                    delayed(a_record(qname, addrs.unrelated))
                }
                _ => AuthorityAnswer::nxdomain(),
            }
        }

        // --- §7.3 behaviors --------------------------------------------
        "t03" => {
            if is_base && want_txt {
                txt(qname, "v=spf1 ?all")
            } else {
                AuthorityAnswer::nxdomain()
            }
        }
        "t04" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => {
                txt(qname, &format!("v=spf1 ipv4:192.0.2.1 a:after.{base} -all"))
            }
            (["after"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t05" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(
                qname,
                &format!("v=spf1 include:child.{base} a:after.{base} -all"),
            ),
            (["child"], RecordType::Txt) => txt(qname, "v=spf1 ipv4:bogus -all"),
            (["after"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t06" => {
            if is_base && want_txt {
                txt(
                    qname,
                    &format!(
                        "v=spf1 a:v1.{base} a:v2.{base} a:v3.{base} a:v4.{base} a:v5.{base} ?all"
                    ),
                )
            } else {
                // v1..v5 deliberately do not resolve.
                AuthorityAnswer::nxdomain()
            }
        }
        "t07" => {
            if is_base && want_txt {
                txt(qname, &format!("v=spf1 mx:gone.{base} ?all"))
            } else {
                AuthorityAnswer::nxdomain()
            }
        }
        "t08" => {
            if is_base && want_txt {
                AuthorityAnswer::positive(vec![
                    Record::new(
                        qname.clone(),
                        60,
                        RData::txt_from_str(&format!("v=spf1 a:one.{base} -all")),
                    ),
                    Record::new(
                        qname.clone(),
                        60,
                        RData::txt_from_str(&format!("v=spf1 a:two.{base} -all")),
                    ),
                ])
            } else {
                match (path_strs.as_slice(), qtype) {
                    (["one"] | ["two"], RecordType::A | RecordType::Aaaa) => {
                        a_record(qname, addrs.unrelated)
                    }
                    _ => AuthorityAnswer::nxdomain(),
                }
            }
        }
        "t09" => {
            if is_base && want_txt {
                let mut answer = txt(qname, "v=spf1 ?all");
                answer.force_tcp = true;
                answer
            } else {
                AuthorityAnswer::nxdomain()
            }
        }
        "t10" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 include:p.v6only.{base} ?all")),
            (["p", "v6only"], RecordType::Txt) => {
                let mut answer = txt(qname, "v=spf1 ?all");
                answer.v6_only = true;
                answer
            }
            _ => AuthorityAnswer::nxdomain(),
        },
        "t11" => {
            if is_base && want_txt {
                return txt(qname, &format!("v=spf1 mx:many.{base} ?all"));
            }
            match (path_strs.as_slice(), qtype) {
                (["many"], RecordType::Mx) => {
                    let records = (1..=20)
                        .map(|i| {
                            Record::new(
                                qname.clone(),
                                60,
                                RData::Mx {
                                    preference: i as u16,
                                    exchange: Name::parse(&format!("mx{i:02}.{qname}"))
                                        .expect("valid"),
                                },
                            )
                        })
                        .collect();
                    AuthorityAnswer::positive(records)
                }
                ([mx, "many"], RecordType::A | RecordType::Aaaa) if mx.starts_with("mx") => {
                    a_record(qname, addrs.unrelated)
                }
                _ => AuthorityAnswer::nxdomain(),
            }
        }

        // --- Simple results -------------------------------------------
        "t12" => simple_policy(is_base, want_txt, qname, "v=spf1 -all"),
        "t13" => simple_policy(is_base, want_txt, qname, "v=spf1 ~all"),
        "t14" => simple_policy(is_base, want_txt, qname, "v=spf1 ?all"),
        "t15" => simple_policy(is_base, want_txt, qname, "v=spf1 +all"),
        "t16" => simple_policy(is_base, want_txt, qname, "v=spf1 ip4:192.0.2.0/24 -all"),
        "t17" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 a:host.{base} -all")),
            (["host"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t18" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 mx:m.{base} -all")),
            (["m"], RecordType::Mx) => AuthorityAnswer::positive(vec![
                Record::new(
                    qname.clone(),
                    60,
                    RData::Mx {
                        preference: 10,
                        exchange: Name::parse(&format!("mxa.m.{base}")).expect("valid"),
                    },
                ),
                Record::new(
                    qname.clone(),
                    60,
                    RData::Mx {
                        preference: 20,
                        exchange: Name::parse(&format!("mxb.m.{base}")).expect("valid"),
                    },
                ),
            ]),
            (["mxa", "m"] | ["mxb", "m"], RecordType::A | RecordType::Aaaa) => {
                a_record(qname, addrs.unrelated)
            }
            _ => AuthorityAnswer::nxdomain(),
        },
        "t19" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 redirect=rd.{base}")),
            (["rd"], RecordType::Txt) => txt(qname, "v=spf1 ?all"),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t20" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 redirect=rl.{base}")),
            (["rl"], RecordType::Txt) => txt(qname, &format!("v=spf1 redirect=rl.{base}")),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t21" => {
            if is_base && want_txt {
                txt(qname, &format!("v=spf1 exists:%{{ir}}.ex.{base} ?all"))
            } else {
                // Any expansion under ex.<base> does not exist; the
                // *query name itself* is the observable.
                AuthorityAnswer::nxdomain()
            }
        }
        "t22" => simple_policy(is_base, want_txt, qname, "v=spf1 ptr ?all"),
        "t23" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 include:ok.{base} -all")),
            (["ok"], RecordType::Txt) => txt(qname, "v=spf1 +all"),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t24" => {
            if is_base && want_txt {
                return txt(qname, &format!("v=spf1 include:c1.{base} ?all"));
            }
            if want_txt && path.len() == 1 {
                if let Some(k) = path_strs[0]
                    .strip_prefix('c')
                    .and_then(|n| n.parse::<u32>().ok())
                {
                    if k < 13 {
                        return txt(qname, &format!("v=spf1 include:c{}.{base} ?all", k + 1));
                    }
                    return txt(qname, "v=spf1 ?all");
                }
            }
            AuthorityAnswer::nxdomain()
        }
        "t25" => {
            if is_base && want_txt {
                // Pad past 255 octets (multi-string TXT) and past the
                // 512-byte UDP limit (truncation → TCP).
                let mut policy = String::from("v=spf1");
                for i in 0..40 {
                    policy.push_str(&format!(" ip4:203.0.113.{i}"));
                }
                policy.push_str(&format!(" a:end.{base} -all"));
                txt(qname, &policy)
            } else {
                match (path_strs.as_slice(), qtype) {
                    (["end"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
                    _ => AuthorityAnswer::nxdomain(),
                }
            }
        }
        "t26" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 include:cn.{base} ?all")),
            (["cn"], RecordType::Txt) => {
                // CNAME chain answered in one response, as a real
                // authoritative server does.
                let target = Name::parse(&format!("real.{base}")).expect("valid");
                AuthorityAnswer::positive(vec![
                    Record::new(qname.clone(), 60, RData::Cname(target.clone())),
                    Record::new(target, 60, RData::txt_from_str("v=spf1 ?all")),
                ])
            }
            (["real"], RecordType::Txt) => txt(qname, "v=spf1 ?all"),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t27" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => {
                txt(qname, &format!("V=SPF1 A:CASED.{base} -ALL").to_uppercase())
            }
            (["cased"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t28" => {
            if is_base && want_txt {
                AuthorityAnswer::nodata()
            } else {
                AuthorityAnswer::nxdomain()
            }
        }
        "t29" => simple_policy(is_base, want_txt, qname, "v=spf1"),
        "t30" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => {
                txt(qname, &format!("v=spf1 mailval-unknown=x a:um.{base} -all"))
            }
            (["um"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t31" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 -all exp=why.{base}")),
            (["why"], RecordType::Txt) => txt(qname, "You are not authorized to send as %{d}"),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t32" => {
            if is_base && want_txt {
                txt(qname, "v=spf1 ?all").with_delay_ms(2_000)
            } else {
                AuthorityAnswer::nxdomain()
            }
        }
        "t33" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 include:sf.{base} ?all")),
            (["sf"], _) => AuthorityAnswer {
                rcode: mailval_dns::wire::Rcode::ServFail,
                ..AuthorityAnswer::nodata()
            },
            _ => AuthorityAnswer::nxdomain(),
        },
        "t34" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(qname, &format!("v=spf1 a:c24.{base}/24 -all")),
            (["c24"], RecordType::A | RecordType::Aaaa) => a_record(qname, addrs.unrelated),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t35" => match (path_strs.as_slice(), qtype) {
            ([], RecordType::Txt) => txt(
                qname,
                &format!("v=spf1 a:c6.{base}//64 ip6:2001:db8:ffff::/48 -all"),
            ),
            (["c6"], RecordType::Aaaa) => {
                aaaa_record(qname, "2001:db8:aaaa::1".parse().expect("valid"))
            }
            (["c6"], RecordType::A) => AuthorityAnswer::nodata(),
            _ => AuthorityAnswer::nxdomain(),
        },
        "t36" => {
            if is_base && want_txt {
                // Exactly 11 DNS terms: a strict validator permerrors on
                // the 11th; an off-by-one validator completes.
                let mut policy = String::from("v=spf1");
                for i in 1..=11 {
                    policy.push_str(&format!(" a:k{i}.{base}"));
                }
                policy.push_str(" ?all");
                txt(qname, &policy)
            } else {
                match qtype {
                    RecordType::A | RecordType::Aaaa
                        if path_strs.len() == 1 && path_strs[0].starts_with('k') =>
                    {
                        a_record(qname, addrs.unrelated)
                    }
                    _ => AuthorityAnswer::nxdomain(),
                }
            }
        }
        "t37" => {
            if is_base && want_txt {
                txt(
                    qname,
                    &format!(
                        "v=spf1 include:nx1.{base} include:nx2.{base} include:nx3.{base} ?all"
                    ),
                )
            } else {
                AuthorityAnswer::nxdomain()
            }
        }
        "t38" => {
            if is_base && want_txt {
                // Split mid-mechanism across two character-strings: RFC
                // 7208 §3.3 requires concatenation without spaces.
                let part1 = "v=spf1 a:spl".to_string();
                let part2 = format!("it.{base} -all");
                AuthorityAnswer::positive(vec![Record::new(
                    qname.clone(),
                    60,
                    RData::Txt(vec![part1.into_bytes(), part2.into_bytes()]),
                )])
            } else {
                match (path_strs.as_slice(), qtype) {
                    (["split"], RecordType::A | RecordType::Aaaa) => {
                        a_record(qname, addrs.unrelated)
                    }
                    _ => AuthorityAnswer::nxdomain(),
                }
            }
        }
        "t39" => simple_policy(is_base, want_txt, qname, "v=spf1 +all"),
        _ => AuthorityAnswer::nxdomain(),
    }
}

fn simple_policy(is_base: bool, want_txt: bool, qname: &Name, policy: &str) -> AuthorityAnswer {
    if is_base && want_txt {
        txt(qname, policy)
    } else if is_base {
        AuthorityAnswer::nodata()
    } else {
        AuthorityAnswer::nxdomain()
    }
}

/// Synthesize the answer for a notification-suffix query (§4.3.1): the
/// NotifyEmail policy authenticates the real sender and embeds the
/// serial-vs-parallel include chain; DKIM key and DMARC policy names are
/// served too.
pub fn synthesize_notify(
    path: &[String],
    qname: &Name,
    base: &Name,
    qtype: RecordType,
    addrs: &SynthAddrs,
    dkim_key_record: &str,
    dmarc_record: &str,
) -> AuthorityAnswer {
    let path_strs: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
    match (path_strs.as_slice(), qtype) {
        ([], RecordType::Txt) => txt(
            qname,
            &format!("v=spf1 include:l1.{base} a:sender.{base} -all"),
        ),
        (["l1"], RecordType::Txt) => {
            txt(qname, &format!("v=spf1 include:l2.{base} ?all")).with_delay_ms(100)
        }
        (["l2"], RecordType::Txt) => {
            txt(qname, &format!("v=spf1 include:l3.{base} ?all")).with_delay_ms(100)
        }
        (["l3"], RecordType::Txt) => txt(qname, "v=spf1 ?all"),
        (["sender"], RecordType::A) => a_record(qname, addrs.sender_v4),
        (["sender"], RecordType::Aaaa) => aaaa_record(qname, addrs.sender_v6),
        (["sel1", "_domainkey"], RecordType::Txt) => txt(qname, dkim_key_record),
        (["_dmarc"], RecordType::Txt) => txt(qname, dmarc_record),
        ([], _) | (["l1" | "l2" | "l3" | "sender"], _) => AuthorityAnswer::nodata(),
        _ => AuthorityAnswer::nxdomain(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(dead_code)]
    fn base() -> Name {
        Name::parse("t01.m00001.spf-test.dns-lab.org").unwrap()
    }

    fn addrs() -> SynthAddrs {
        SynthAddrs::default()
    }

    fn q(testid: &str, path: &[&str], qtype: RecordType) -> AuthorityAnswer {
        let b = Name::parse(&format!("{testid}.m00001.spf-test.dns-lab.org")).unwrap();
        let mut qname = b.clone();
        for label in path.iter().rev() {
            qname = qname.prepend(label).unwrap();
        }
        let path: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        synthesize_probe(testid, &path, &qname, &b, qtype, &addrs())
    }

    fn policy_text(answer: &AuthorityAnswer) -> String {
        answer.answers[0].rdata.txt_joined().unwrap()
    }

    #[test]
    fn catalog_has_39_unique_tests() {
        assert_eq!(ALL_TESTS.len(), 39);
        let mut ids = std::collections::HashSet::new();
        for t in ALL_TESTS {
            assert!(ids.insert(t.id), "dup {}", t.id);
        }
        assert!(test_by_id("t07").is_some());
        assert!(test_by_id("t40").is_none());
    }

    #[test]
    fn t01_structure() {
        let l0 = q("t01", &[], RecordType::Txt);
        assert!(policy_text(&l0).contains("include:l1."));
        assert!(policy_text(&l0).contains("a:foo."));
        let l1 = q("t01", &["l1"], RecordType::Txt);
        assert_eq!(l1.delay_ms, 100);
        assert!(policy_text(&l1).contains("include:l2."));
        let l3 = q("t01", &["l3"], RecordType::Txt);
        assert_eq!(l3.delay_ms, 0);
        assert_eq!(policy_text(&l3), "v=spf1 ?all");
        let foo = q("t01", &["foo"], RecordType::A);
        assert!(matches!(foo.answers[0].rdata, RData::A(a) if a == Ipv4Addr::new(192,0,2,1)));
    }

    #[test]
    fn t02_tree_produces_exactly_46_lookups() {
        // Walk the tree as a strict DFS evaluator with no limits would,
        // counting lookups.
        use mailval_spf::record::{Mechanism, SpfRecord, Term};
        let addrs = addrs();
        let b = Name::parse("t02.m00001.spf-test.dns-lab.org").unwrap();
        let mut count = 0usize;
        let mut stack: Vec<(Name, RecordType)> = Vec::new();
        let l0 = synthesize_probe("t02", &[], &b, &b, RecordType::Txt, &addrs);
        let mut policies = vec![policy_text(&l0)];
        let scheme = crate::names::NameScheme::default();
        while let Some(policy) = policies.pop() {
            let record = SpfRecord::parse(&policy).unwrap();
            // DFS: push terms in reverse so the first term pops first.
            let mut local: Vec<(Name, RecordType)> = Vec::new();
            for term in &record.terms {
                match term {
                    Term::Mechanism(_, Mechanism::Include { domain_spec }) => {
                        local.push((Name::parse(domain_spec).unwrap(), RecordType::Txt));
                    }
                    Term::Mechanism(_, Mechanism::A { domain_spec, .. }) => {
                        local.push((
                            Name::parse(domain_spec.as_ref().unwrap()).unwrap(),
                            RecordType::A,
                        ));
                    }
                    _ => {}
                }
            }
            for item in local.into_iter().rev() {
                stack.push(item);
            }
            // Process next lookup.
            while let Some((name, rtype)) = stack.pop() {
                count += 1;
                let parsed = scheme.parse(&name).unwrap();
                let answer = synthesize_probe("t02", &parsed.path, &name, &b, rtype, &addrs);
                assert_eq!(answer.delay_ms, 800, "{name} should be delayed");
                if rtype == RecordType::Txt {
                    policies.push(policy_text(&answer));
                    break;
                }
            }
        }
        assert_eq!(count, 46, "the stress tree must induce 46 lookups");
    }

    #[test]
    fn t03_helo_policy() {
        let helo = q("t03", &["h"], RecordType::Txt);
        assert_eq!(policy_text(&helo), "v=spf1 -all");
        // Other tests have no HELO policy.
        let other = q("t05", &["h"], RecordType::Txt);
        assert_eq!(other.rcode, mailval_dns::wire::Rcode::NxDomain);
    }

    #[test]
    fn t06_void_names_nxdomain() {
        for v in ["v1", "v2", "v5"] {
            let a = q("t06", &[v], RecordType::A);
            assert_eq!(a.rcode, mailval_dns::wire::Rcode::NxDomain);
        }
    }

    #[test]
    fn t08_two_records() {
        let l0 = q("t08", &[], RecordType::Txt);
        assert_eq!(l0.answers.len(), 2);
    }

    #[test]
    fn t09_forces_tcp() {
        let l0 = q("t09", &[], RecordType::Txt);
        assert!(l0.force_tcp);
    }

    #[test]
    fn t10_include_is_v6_only() {
        let l0 = q("t10", &[], RecordType::Txt);
        assert!(!l0.v6_only);
        assert!(policy_text(&l0).contains("include:p.v6only."));
        let inc = q("t10", &["p", "v6only"], RecordType::Txt);
        assert!(inc.v6_only);
    }

    #[test]
    fn t11_twenty_exchanges() {
        let mx = q("t11", &["many"], RecordType::Mx);
        assert_eq!(mx.answers.len(), 20);
        let addr = q("t11", &["mx07", "many"], RecordType::A);
        assert_eq!(addr.answers.len(), 1);
    }

    #[test]
    fn t25_policy_is_long() {
        let l0 = q("t25", &[], RecordType::Txt);
        let text = policy_text(&l0);
        assert!(text.len() > 255, "len {}", text.len());
        if let RData::Txt(strings) = &l0.answers[0].rdata {
            assert!(strings.len() >= 2, "must be split into strings");
        }
    }

    #[test]
    fn t38_split_mid_mechanism() {
        let l0 = q("t38", &[], RecordType::Txt);
        let text = policy_text(&l0);
        assert!(text.contains("a:split."), "{text}");
    }

    #[test]
    fn notify_synthesis() {
        let addrs = addrs();
        let b = Name::parse("d00042.dsav-mail.dns-lab.org").unwrap();
        let l0 = synthesize_notify(
            &[],
            &b,
            &b,
            RecordType::Txt,
            &addrs,
            "v=DKIM1; p=x",
            "v=DMARC1; p=reject",
        );
        assert!(policy_text(&l0).contains("a:sender."));
        let sender = synthesize_notify(
            &["sender".into()],
            &b.prepend("sender").unwrap(),
            &b,
            RecordType::A,
            &addrs,
            "",
            "",
        );
        assert!(matches!(sender.answers[0].rdata, RData::A(a) if a == addrs.sender_v4));
        let dmarc = synthesize_notify(
            &["_dmarc".into()],
            &b.prepend("_dmarc").unwrap(),
            &b,
            RecordType::Txt,
            &addrs,
            "",
            "v=DMARC1; p=reject",
        );
        assert_eq!(policy_text(&dmarc), "v=DMARC1; p=reject");
    }

    #[test]
    fn every_test_serves_a_base_answer() {
        for t in ALL_TESTS {
            let answer = q(t.id, &[], RecordType::Txt);
            // t28 deliberately serves NODATA; everything else serves at
            // least one TXT record.
            if t.id == "t28" {
                assert!(answer.answers.is_empty());
            } else {
                assert!(
                    !answer.answers.is_empty(),
                    "{} must serve a base policy",
                    t.id
                );
            }
        }
    }
}
