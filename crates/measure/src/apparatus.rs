//! The apparatus side: the synthesizing authoritative DNS server and the
//! query log (§4.5 of the paper).
//!
//! [`SynthesizingAuthority`] implements `mailval_dns::server::Authority`
//! by *generating* responses from the query name — the paper's solution
//! to hosting 27.8M logical records. [`QueryLog`] is the measurement
//! output: every query that reaches the server, timestamped and
//! attributed via the name encoding; all of §6–§7's analyses consume it.

use crate::names::{NameScheme, ParsedName};
use crate::policies::{synthesize_notify, synthesize_probe, SynthAddrs};
use mailval_dns::rr::RecordType;
use mailval_dns::server::{Authority, AuthorityAnswer, Transport};
use mailval_dns::Name;

/// Attribution of one observed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// Test id (`tNN`), when the name is under the probe suffix.
    pub testid: Option<String>,
    /// MTA index for probe names.
    pub host_index: Option<usize>,
    /// Domain index for notification names.
    pub domain_index: Option<usize>,
    /// The labels left of the identifying pair (policy path).
    pub path: Vec<String>,
}

/// One logged query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Virtual receive time, ms.
    pub time_ms: u64,
    /// Global index of the campaign session whose resolver issued the
    /// query. Together with `time_ms` this is the canonical ordering key
    /// (see [`QueryLog::sort_canonical`]), which makes sharded runs
    /// merge to the same byte sequence as a single-threaded run.
    pub session: usize,
    /// The queried name.
    pub qname: Name,
    /// The queried type.
    pub qtype: RecordType,
    /// UDP or TCP.
    pub transport: Transport,
    /// Arrived on the IPv6 endpoint.
    pub via_ipv6: bool,
    /// Attribution, if the name parsed.
    pub attribution: Option<Attribution>,
}

/// The query log: the raw measurement output.
#[derive(Debug, Default)]
pub struct QueryLog {
    /// All queries in arrival order.
    pub records: Vec<QueryRecord>,
}

impl QueryLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, record: QueryRecord) {
        self.records.push(record);
    }

    /// Sort into canonical order: by `(time_ms, session)`, stable, so
    /// records of one session keep their causal order and concurrent
    /// sessions tie-break on their global index. Every campaign log is
    /// canonicalized before it is returned, which is what makes a
    /// `shards = K` run byte-identical to `shards = 1`.
    pub fn sort_canonical(&mut self) {
        self.records.sort_by_key(|r| (r.time_ms, r.session));
    }

    /// Merge per-shard logs into one canonical log. Each input is
    /// already internally canonical; the concatenation is re-sorted with
    /// the same stable key, so the result is independent of the shard
    /// count and of thread completion order.
    pub fn merge(logs: Vec<QueryLog>) -> QueryLog {
        let mut merged = QueryLog::new();
        for mut log in logs {
            merged.records.append(&mut log.records);
        }
        merged.sort_canonical();
        merged
    }

    /// Iterate records attributed to a given test.
    pub fn for_test<'a>(&'a self, testid: &'a str) -> impl Iterator<Item = &'a QueryRecord> {
        self.records.iter().filter(move |r| {
            r.attribution.as_ref().and_then(|a| a.testid.as_deref()) == Some(testid)
        })
    }

    /// Iterate records attributed to a notification domain.
    pub fn for_domain(&self, domain_index: usize) -> impl Iterator<Item = &QueryRecord> {
        self.records.iter().filter(move |r| {
            r.attribution.as_ref().and_then(|a| a.domain_index) == Some(domain_index)
        })
    }
}

/// The synthesizing authoritative server for both apparatus suffixes.
pub struct SynthesizingAuthority {
    scheme: NameScheme,
    addrs: SynthAddrs,
    dkim_key_record: String,
    dmarc_record: String,
}

impl SynthesizingAuthority {
    /// Create an authority.
    pub fn new(
        scheme: NameScheme,
        addrs: SynthAddrs,
        dkim_key_record: String,
        dmarc_record: String,
    ) -> Self {
        SynthesizingAuthority {
            scheme,
            addrs,
            dkim_key_record,
            dmarc_record,
        }
    }

    /// The name scheme in use.
    pub fn scheme(&self) -> &NameScheme {
        &self.scheme
    }

    /// Attribute a query name (used by the driver for logging).
    pub fn attribute(&self, qname: &Name) -> Option<Attribution> {
        let ParsedName {
            testid,
            entity,
            path,
        } = self.scheme.parse(qname)?;
        Some(Attribution {
            host_index: testid
                .is_some()
                .then(|| NameScheme::host_index(&entity))
                .flatten(),
            domain_index: testid
                .is_none()
                .then(|| NameScheme::domain_index(&entity))
                .flatten(),
            testid,
            path,
        })
    }

    /// Reconstruct the base (L0) name for a parsed query.
    fn base_of(&self, parsed: &ParsedName) -> Option<Name> {
        match &parsed.testid {
            Some(testid) => Some(
                self.scheme
                    .probe_suffix
                    .prepend(&parsed.entity)
                    .ok()?
                    .prepend(testid)
                    .ok()?,
            ),
            None => Some(self.scheme.notify_suffix.prepend(&parsed.entity).ok()?),
        }
    }
}

impl Authority for SynthesizingAuthority {
    fn answer(&self, qname: &Name, qtype: RecordType) -> Option<AuthorityAnswer> {
        // Apex names of the suffixes themselves: answer NODATA so
        // diagnostic queries (SOA etc.) are in-bailiwick.
        if *qname == self.scheme.probe_suffix || *qname == self.scheme.notify_suffix {
            return Some(AuthorityAnswer::nodata());
        }
        if !qname.is_subdomain_of(&self.scheme.probe_suffix)
            && !qname.is_subdomain_of(&self.scheme.notify_suffix)
        {
            return None; // out of bailiwick → REFUSED
        }
        let Some(parsed) = self.scheme.parse(qname) else {
            return Some(AuthorityAnswer::nxdomain());
        };
        let Some(base) = self.base_of(&parsed) else {
            return Some(AuthorityAnswer::nxdomain());
        };
        Some(match &parsed.testid {
            Some(testid) => {
                synthesize_probe(testid, &parsed.path, qname, &base, qtype, &self.addrs)
            }
            None => synthesize_notify(
                &parsed.path,
                qname,
                &base,
                qtype,
                &self.addrs,
                &self.dkim_key_record,
                &self.dmarc_record,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_dns::message::Message;
    use mailval_dns::server::ServerCore;
    use mailval_dns::wire::Rcode;

    fn authority() -> SynthesizingAuthority {
        SynthesizingAuthority::new(
            NameScheme::default(),
            SynthAddrs::default(),
            "v=DKIM1; k=rsa; p=TESTKEY".into(),
            "v=DMARC1; p=reject; rua=mailto:agg@dns-lab.org".into(),
        )
    }

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn serves_probe_policies_end_to_end() {
        let server = ServerCore::new(authority());
        let q = Message::query(1, n("t01.m00007.spf-test.dns-lab.org"), RecordType::Txt);
        let reply = server.handle(&q.to_bytes(), Transport::Udp, false).unwrap();
        let resp = Message::from_bytes(&reply.bytes).unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        let policy = resp.answers[0].rdata.txt_joined().unwrap();
        assert!(policy.contains("include:l1.t01.m00007.spf-test.dns-lab.org"));
    }

    #[test]
    fn delay_metadata_propagates() {
        let server = ServerCore::new(authority());
        let q = Message::query(2, n("l1.t01.m00007.spf-test.dns-lab.org"), RecordType::Txt);
        let reply = server.handle(&q.to_bytes(), Transport::Udp, false).unwrap();
        assert_eq!(reply.delay_ms, 100);
    }

    #[test]
    fn tcp_only_test_truncates_udp() {
        let server = ServerCore::new(authority());
        let q = Message::query(3, n("t09.m00001.spf-test.dns-lab.org"), RecordType::Txt);
        let udp = server.handle(&q.to_bytes(), Transport::Udp, false).unwrap();
        let udp_resp = Message::from_bytes(&udp.bytes).unwrap();
        assert!(udp_resp.truncated);
        assert!(udp_resp.answers.is_empty());
        let tcp = server.handle(&q.to_bytes(), Transport::Tcp, false).unwrap();
        let tcp_resp = Message::from_bytes(&tcp.bytes).unwrap();
        assert!(!tcp_resp.truncated);
        assert_eq!(tcp_resp.answers.len(), 1);
    }

    #[test]
    fn v6_only_name_dropped_on_v4() {
        let server = ServerCore::new(authority());
        let q = Message::query(
            4,
            n("p.v6only.t10.m00001.spf-test.dns-lab.org"),
            RecordType::Txt,
        );
        assert!(server
            .handle(&q.to_bytes(), Transport::Udp, false)
            .is_none());
        let v6 = server.handle(&q.to_bytes(), Transport::Udp, true).unwrap();
        let resp = Message::from_bytes(&v6.bytes).unwrap();
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn notify_names_served() {
        let server = ServerCore::new(authority());
        for (name, rtype, expect_substr) in [
            ("d00001.dsav-mail.dns-lab.org", RecordType::Txt, "v=spf1"),
            (
                "sel1._domainkey.d00001.dsav-mail.dns-lab.org",
                RecordType::Txt,
                "v=DKIM1",
            ),
            (
                "_dmarc.d00001.dsav-mail.dns-lab.org",
                RecordType::Txt,
                "v=DMARC1",
            ),
        ] {
            let q = Message::query(5, n(name), rtype);
            let reply = server.handle(&q.to_bytes(), Transport::Udp, false).unwrap();
            let resp = Message::from_bytes(&reply.bytes).unwrap();
            let text = resp.answers[0].rdata.txt_joined().unwrap();
            assert!(text.contains(expect_substr), "{name}: {text}");
        }
    }

    #[test]
    fn out_of_bailiwick_refused() {
        let server = ServerCore::new(authority());
        let q = Message::query(6, n("example.com"), RecordType::Txt);
        let reply = server.handle(&q.to_bytes(), Transport::Udp, false).unwrap();
        let resp = Message::from_bytes(&reply.bytes).unwrap();
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn attribution_helper() {
        let auth = authority();
        let attr = auth
            .attribute(&n("l2.t01.m00042.spf-test.dns-lab.org"))
            .unwrap();
        assert_eq!(attr.testid.as_deref(), Some("t01"));
        assert_eq!(attr.host_index, Some(42));
        assert_eq!(attr.path, vec!["l2"]);
        let attr = auth
            .attribute(&n("_dmarc.d00009.dsav-mail.dns-lab.org"))
            .unwrap();
        assert_eq!(attr.domain_index, Some(9));
        assert!(auth.attribute(&n("unrelated.org")).is_none());
    }

    #[test]
    fn query_log_filters() {
        let mut log = QueryLog::new();
        let auth = authority();
        for (name, t) in [
            ("t01.m00001.spf-test.dns-lab.org", 10),
            ("l1.t01.m00001.spf-test.dns-lab.org", 20),
            ("t02.m00002.spf-test.dns-lab.org", 30),
            ("d00005.dsav-mail.dns-lab.org", 40),
        ] {
            let qname = n(name);
            log.push(QueryRecord {
                time_ms: t,
                session: 0,
                attribution: auth.attribute(&qname),
                qname,
                qtype: RecordType::Txt,
                transport: Transport::Udp,
                via_ipv6: false,
            });
        }
        assert_eq!(log.for_test("t01").count(), 2);
        assert_eq!(log.for_test("t02").count(), 1);
        assert_eq!(log.for_domain(5).count(), 1);
        assert_eq!(log.for_domain(6).count(), 0);
    }
}
