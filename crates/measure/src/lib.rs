//! # mailval-measure
//!
//! The paper's primary contribution: the apparatus that elicits and
//! attributes SPF/DKIM/DMARC validation behavior **without delivering
//! any illegitimate mail** (§4), plus the analyses that regenerate every
//! table and figure of the evaluation (§6–§7).
//!
//! * [`names`] — the query-name encoding: every From domain embeds a
//!   `testid` and `mtaid`/`domainid`, and every follow-up DNS query a
//!   test policy induces carries the same labels, so any query arriving
//!   at the authoritative server can be attributed to one MTA and one
//!   test (§4.4–§4.5).
//! * [`policies`] — the 39-test-policy catalog (§4.3.2), including the
//!   serial-vs-parallel probe (Fig. 3), the 46-lookup stress tree
//!   (Fig. 4) and every §7.3 behavior test.
//! * [`apparatus`] — the on-the-fly policy-synthesizing authoritative
//!   DNS server (§4.5): responses are generated from the query name, so
//!   the 27.8M-record logical zone needs no storage, plus the query log
//!   and attribution.
//! * [`engine`] — the session-engine layer: the virtual-time event
//!   driver for any set of independent probe↔MTA sessions, extracted
//!   behind an injectable-latency/clock API.
//! * [`shard`] — campaign sharding: round-robin partitioning of the
//!   session list and the deterministic `(time_ms, session)` merge that
//!   makes `shards = K` output byte-identical to `shards = 1`.
//! * [`campaign`] — orchestration of the three campaigns: NotifyEmail
//!   (real deliveries, Exim-like client), NotifyMX and TwoWeekMX (probe
//!   client with 15 s sleeps, aborted before DATA), fanned out over
//!   shard worker threads against the one shared authority, supervised
//!   with bounded shard restarts and a wall-clock deadline.
//! * [`journal`] — durable per-shard session journals: append-only,
//!   checksummed frames that let an interrupted campaign resume with
//!   byte-identical output instead of restarting from zero.
//! * [`store`] — the content-addressed campaign result store: completed
//!   [`CampaignResult`]s serialized with the journal's framing, keyed
//!   by a hash of every result-determining knob, so analyses re-render
//!   from disk instead of re-simulating (run once, analyze many).
//! * [`vfs`] — the storage seam both of the above write through: a
//!   passthrough `OsFs` and a deterministic fault-injecting `SimFs`
//!   (ENOSPC, short writes, failed fsync/rename, read-side rot) driven
//!   by a seeded `IoPlan`, so storage failure is simulated with the
//!   same rigor as network failure.
//! * [`progress`] — the single `[mailval]` stderr progress channel;
//!   campaign lines carry the content hash and store hit/miss status.
//! * [`telemetry`] — deterministic observability: a zero-cost tracer
//!   seam in the engine, per-session virtual-time trace events merged
//!   canonically across shards, a counters/histograms registry, and
//!   Chrome-trace + metrics JSON exporters. Observability only — never
//!   journaled, hashed or store-key-relevant.
//! * [`analysis`] — classification of raw observations into the paper's
//!   tables: validation combos (Table 4), validating counts and deciles
//!   (Table 5), providers (Table 6), Alexa tiers (Table 7), SPF-vs-
//!   delivery timing (Fig. 2), serial/parallel (§7.1), lookup limits
//!   (Fig. 5) and the §7.3 behavior battery.
//! * [`fingerprint`] — the paper's proposed future work (§8):
//!   clustering MTAs by their behavior vectors.
//! * [`report`] — paper-vs-measured table rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod apparatus;
pub mod campaign;
pub mod engine;
pub mod fingerprint;
pub mod hostile;
pub mod journal;
pub mod names;
pub mod policies;
pub mod progress;
pub mod report;
pub mod shard;
pub mod store;
pub mod telemetry;
pub mod vfs;

pub use apparatus::{Attribution, QueryLog, QueryRecord, SynthesizingAuthority};
pub use campaign::{
    drift_profiles, run_campaign, run_campaign_stored, sample_host_profiles, CampaignConfig,
    CampaignKind, CampaignResult, SupervisorConfig,
};
pub use engine::{
    EngineConfig, MemoryBudget, SessionBudget, SessionEngine, SessionOutcome, SessionRecord,
};
pub use journal::{JournalFrame, JournalWriter, Replay};
pub use names::NameScheme;
pub use policies::{TestPolicyId, ALL_TESTS};
pub use shard::ShardStats;
pub use store::{CampaignKey, CampaignStore, KeySpec, StoreError, StoreStatus};
pub use telemetry::{NullTracer, RecordingTracer, Telemetry, TraceEvent, TraceKind, Tracer};
pub use vfs::{OsFs, SimFs, Vfs, VfsFile};
