//! Campaign orchestration (§4.6 of the paper).
//!
//! Three campaigns share one execution path:
//!
//! * **NotifyEmail** — one legitimate, DKIM-signed delivery per domain to
//!   its first MX host; SPF/DKIM/DMARC designed to *pass*.
//! * **NotifyMX** — every MX host of the (re-resolved) NotifyEmail
//!   domains probed with every configured test policy; the client is by
//!   now blacklisted (§6.2); sessions abort before any message data.
//! * **TwoWeekMX** — same probing against the high-demand dataset, with
//!   guessed recipients (§6.3).
//!
//! This module builds the session list (deterministically, from the
//! config seed alone), partitions it into `shards` independent shards
//! ([`crate::shard`]), runs one [`crate::engine::SessionEngine`] per
//! shard on its own thread against the one shared
//! [`SynthesizingAuthority`], and merges the per-shard outputs by the
//! stable `(time_ms, session)` key — so the merged [`QueryLog`] and
//! session records are byte-identical for every shard count.

use crate::apparatus::{QueryLog, SynthesizingAuthority};
use crate::engine::{
    EngineConfig, EngineOutput, LiveSession, MemoryBudget, SessionBudget, SessionEngine,
};
use crate::journal::{self, JournalWriter};
use crate::names::NameScheme;
use crate::policies::SynthAddrs;
use crate::shard::{merge_session_records, partition, ShardStats};
use crate::telemetry::{NullTracer, RecordingTracer, Telemetry, Tracer};
use crate::vfs::{OsFs, SimFs, Vfs};
use mailval_crypto::bigint::SplitMix64;
use mailval_crypto::rsa::RsaKeyPair;
use mailval_crypto::sha256::sha256;
use mailval_datasets::Population;
use mailval_dkim::key::DkimKeyRecord;
use mailval_dkim::sign::{sign_message, SignConfig};
use mailval_dmarc::record::DmarcRecord;
use mailval_dns::server::ServerCore;
use mailval_dns::Name;
use mailval_mta::actor::{ConnContext, MtaActor};
use mailval_mta::profile::MtaProfile;
use mailval_mta::resolver::ResolverActor;
use mailval_simnet::{
    run_shards_catch, FaultConfig, FaultStats, IoConfig, IoPlan, LatencyModel, PayloadConfig,
    SimRng,
};
use mailval_smtp::client::{probe_usernames, ClientConfig, ClientSession};
use mailval_smtp::mail::MailMessage;
use mailval_smtp::EmailAddress;
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;
use std::path::PathBuf;
use std::sync::Arc;

pub use crate::engine::SessionRecord;

/// Which campaign to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Legitimate notification deliveries (Oct 2020 in the paper).
    NotifyEmail,
    /// Probing of all NotifyEmail MTAs (Jun 2021).
    NotifyMx,
    /// Probing of the TwoWeekMX MTAs (Apr 2021).
    TwoWeekMx,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Which campaign.
    pub kind: CampaignKind,
    /// Test ids to run (probe campaigns only; NotifyEmail ignores this).
    pub tests: Vec<&'static str>,
    /// RNG seed (probing order, DKIM key).
    pub seed: u64,
    /// The probe's inter-command sleep (§4.6; 15 000 ms in the paper —
    /// reduce for quick runs; timing analyses assume the paper value).
    pub probe_pause_ms: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Fault injection (drops via `latency.loss_probability`, plus
    /// duplicates, reordering, truncation, resets and stalls). The
    /// default injects nothing; the merged output stays byte-identical
    /// for every shard count either way.
    pub faults: FaultConfig,
    /// Hostile-peer payload mutation (structure-aware corruption of DNS
    /// responses and SMTP replies). The default mutates nothing; like
    /// `faults`, the merged output stays byte-identical for every shard
    /// count and across kill-and-resume.
    pub payload: PayloadConfig,
    /// Deterministic storage-fault injection (ENOSPC, short writes,
    /// fsync/rename failures, read corruption) applied to the journal
    /// and store IO paths through the [`crate::vfs`] seam. The default
    /// injects nothing. Unlike `faults` and `payload`, IO faults never
    /// change the merged result — only durability and the degradation
    /// counters — so the output stays byte-identical for every rate.
    pub io: IoConfig,
    /// Number of parallel shards (0 and 1 both mean single-threaded).
    /// The merged output is byte-identical for every value.
    pub shards: usize,
    /// Directory for per-shard session journals. `None` disables
    /// durability (no files are written); `Some(dir)` writes one
    /// `shard-NNNN.jrnl` per shard and enables supervised restart from
    /// journal after a shard crash.
    pub journal_dir: Option<PathBuf>,
    /// Resume from existing journals in `journal_dir` instead of
    /// truncating them at campaign start. Completed sessions found in a
    /// journal are replayed, not re-run; the merged result is
    /// byte-identical to an uninterrupted run.
    pub resume: bool,
    /// Journal fsync interval, frames (0 = never fsync; every append is
    /// still flushed to the file).
    pub fsync_every: u64,
    /// Per-session runaway limits enforced by the engine.
    pub budget: SessionBudget,
    /// Per-session memory backpressure: sessions whose queued events
    /// exceed this budget are deterministically shed
    /// ([`crate::engine::SessionOutcome::ResourceShed`]). Like `budget`
    /// it is result-determining; the default is unlimited.
    pub memory: MemoryBudget,
    /// Shard-restart and deadline policy.
    pub supervisor: SupervisorConfig,
    /// Telemetry collection (execution knob, like `shards`: never
    /// result-determining, never part of a store key). The default is
    /// fully inert — no tracing, no heartbeat.
    pub telemetry: TelemetryConfig,
}

/// Telemetry execution knobs.
///
/// Observability only, following the [`PhaseTimes`] precedent: whatever
/// these are set to, the campaign's merged output — and therefore its
/// content hash and store key — is byte-identical, which the golden
/// determinism test pins with tracing both off and on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Record per-session trace events and derive the metrics registry
    /// ([`CampaignResult::telemetry`]). Off = the engine monomorphizes
    /// to the null tracer with zero hot-path cost.
    pub tracing: bool,
    /// Minimum wall-clock ms between per-shard heartbeat progress lines
    /// (0 disables the heartbeat).
    pub heartbeat_ms: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: Vec::new(),
            seed: 0,
            probe_pause_ms: 15_000,
            latency: LatencyModel::default(),
            faults: FaultConfig::default(),
            payload: PayloadConfig::default(),
            io: IoConfig::default(),
            shards: 1,
            journal_dir: None,
            resume: false,
            fsync_every: journal::DEFAULT_FSYNC_EVERY,
            budget: SessionBudget::default(),
            memory: MemoryBudget::default(),
            supervisor: SupervisorConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// Paper-faithful settings for a campaign kind (single shard, like
    /// the paper's one-machine apparatus; raise `shards` freely — the
    /// output does not change).
    pub fn paper(kind: CampaignKind, seed: u64) -> CampaignConfig {
        CampaignConfig {
            kind,
            tests: crate::policies::ALL_TESTS.iter().map(|t| t.id).collect(),
            seed,
            ..CampaignConfig::default()
        }
    }
}

/// How the campaign supervisor reacts to shard crashes.
///
/// A crashed shard (a panic that escaped the engine's per-session
/// containment, or the deterministic `crash_after_sessions` injection)
/// is restarted from its journal with exponential backoff. A shard that
/// exhausts its restart budget — or any crash past the wall-clock
/// deadline — is *finalized from its journal instead*: the campaign
/// completes with `partial = true` and whatever that shard had durably
/// completed, rather than crashing the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Restarts allowed per shard before it is finalized from journal.
    pub max_shard_restarts: u32,
    /// Base backoff before a restart round, wall-clock ms (doubles each
    /// round, capped at 64×).
    pub restart_backoff_ms: u64,
    /// Global wall-clock deadline for the whole campaign, ms (0 = no
    /// deadline). Checked when a shard crashes: past the deadline no
    /// further restarts are attempted.
    pub wall_deadline_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_shard_restarts: 2,
            restart_backoff_ms: 10,
            wall_deadline_ms: 0,
        }
    }
}

/// Transaction retries the probe client attempts after a 4xx tempfail
/// (greylisting). Inert without faults: the calibrated MTA population
/// only issues permanent (5xx) rejections.
const CLIENT_RETRY_BUDGET: u32 = 2;
/// Base client retry backoff (doubles per retry), virtual ms.
const CLIENT_RETRY_BACKOFF_MS: u64 = 30_000;

/// Per-phase wall-clock accounting for one campaign run.
///
/// Four phases cover a run end to end: **setup** (world construction —
/// key generation, the synthesizing authority, session blueprints —
/// plus journal reset, all before any shard thread exists),
/// **simulate** (the shard event loops, including per-shard session
/// instantiation and DKIM signing: per-session work that parallelizes
/// with the shard count), **merge** (the canonical re-sort of per-shard
/// outputs) and **persist** (writing the result to the campaign store;
/// zero without a store). All values are diagnostics: they are never
/// journaled, stored or hashed, so they cannot perturb determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Seconds before the first shard thread started.
    pub setup_s: f64,
    /// Seconds the sharded event loops ran (wall, not summed CPU).
    pub simulate_s: f64,
    /// Seconds merging per-shard outputs into canonical order.
    pub merge_s: f64,
    /// Seconds persisting to the campaign store.
    pub persist_s: f64,
}

impl PhaseTimes {
    /// Sum over all phases.
    pub fn total_s(&self) -> f64 {
        self.setup_s + self.simulate_s + self.merge_s + self.persist_s
    }

    /// Fraction of the total spent in setup (0.0 for an empty total).
    pub fn setup_share(&self) -> f64 {
        let total = self.total_s();
        if total > 0.0 {
            self.setup_s / total
        } else {
            0.0
        }
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The apparatus query log, in canonical `(time_ms, session)` order.
    pub log: QueryLog,
    /// Per-session records, in global session order.
    pub sessions: Vec<SessionRecord>,
    /// Total virtual events dispatched (sum over shards; shard-count
    /// invariant because sessions never exchange events).
    pub events: u64,
    /// Fault/retry/containment counters summed over shards (all zero
    /// without fault injection; shard-count invariant).
    pub faults: FaultStats,
    /// Per-shard execution counters.
    pub shard_stats: Vec<ShardStats>,
    /// One or more shards exhausted the supervisor's restart budget (or
    /// crashed past the wall-clock deadline) and were finalized from
    /// their journals: `sessions` holds only what completed durably.
    /// Always `false` for a run that finished every session.
    pub partial: bool,
    /// Where the wall-clock went (diagnostics; excluded from the
    /// content hash, the journal and the store).
    pub phases: PhaseTimes,
    /// Merged trace events and metrics when
    /// [`TelemetryConfig::tracing`] was on (observability like
    /// `phases`: excluded from the content hash, the journal and the
    /// store; a store hit or journal-finalized shard carries none).
    pub telemetry: Option<Telemetry>,
}

impl CampaignResult {
    /// Canonical content digest: SHA-256 over the deterministic parts
    /// of the result — session records, the canonical query log, the
    /// dispatched-event count, the fault counters and the partial flag
    /// — through the same binary codec the journal and store use.
    /// Wall-clock diagnostics (`shard_stats` timings) are excluded, so
    /// byte-identical runs hash identically for any shard count, with
    /// or without kill-and-resume. The golden determinism test pins
    /// these digests against the pre-optimization engine.
    pub fn content_hash(&self) -> [u8; 32] {
        let mut enc = journal::Enc::default();
        enc.size(self.sessions.len());
        for r in &self.sessions {
            journal::put_record(&mut enc, r);
        }
        enc.size(self.log.records.len());
        for q in &self.log.records {
            journal::put_query(&mut enc, q);
        }
        enc.u64(self.events);
        journal::put_faults(&mut enc, &self.faults);
        // Backpressure sheds are result-determining (shed sessions have
        // no outcome), but the counter joins the digest only when it
        // fired: every pre-backpressure result hashes exactly as before.
        if self.faults.resource_shed > 0 {
            enc.u64(0x5245_5348_4544); // tag: "RESHED"
            enc.u64(self.faults.resource_shed);
        }
        enc.boolean(self.partial);
        sha256(&enc.0)
    }
}

/// Sample behavior profiles for a population's hosts, deterministically.
///
/// Profiles are sampled **per AS pool**, not per host: all of a mail
/// operator's MTAs run the same software with the same configuration
/// (every Google MTA behaves like every other Google MTA). This is what
/// makes the paper's per-domain and per-MTA validation rates nearly
/// equal (Table 5) even though domains list several MX hosts. Quality
/// shifts per the Table 7 gradient: shared providers and operators
/// serving Alexa-ranked domains validate more.
pub fn sample_host_profiles(pop: &Population, seed: u64) -> Vec<MtaProfile> {
    let mut root = SimRng::new(seed ^ 0x9d7f_00d5);
    // Best Alexa tier and provider status per AS (the operator unit).
    let mut as_alexa: HashMap<u32, u8> = HashMap::new();
    let mut as_provider: HashMap<u32, bool> = HashMap::new();
    for d in &pop.domains {
        let tier = match d.alexa {
            mailval_datasets::alexa::AlexaTier::Top1K => 2,
            mailval_datasets::alexa::AlexaTier::Top1M => 1,
            mailval_datasets::alexa::AlexaTier::Unlisted => 0,
        };
        for &h in &d.host_indices {
            let asn = pop.hosts[h].asn;
            let t = as_alexa.entry(asn).or_default();
            *t = (*t).max(tier);
            let p = as_provider.entry(asn).or_default();
            *p = *p || d.shared_provider;
        }
    }
    let mut per_as: HashMap<u32, MtaProfile> = HashMap::new();
    pop.hosts
        .iter()
        .map(|host| {
            per_as
                .entry(host.asn)
                .or_insert_with(|| {
                    let mut rng = root.fork(host.asn as u64);
                    let mut quality: f64 = match as_alexa.get(&host.asn).copied().unwrap_or(0) {
                        2 => 1.2,
                        1 => 0.5,
                        _ => 0.0,
                    };
                    if as_provider.get(&host.asn).copied().unwrap_or(false) {
                        quality = quality.max(0.9);
                    }
                    MtaProfile::sample(&mut rng, quality)
                })
                .clone()
        })
        .collect()
}

/// Re-sample a fraction of operators' profiles, modeling configuration
/// drift between campaigns (NotifyEmail ran in Oct 2020, NotifyMX nine
/// months later — §6.2's inconsistency analysis found ~5% of status
/// changes in the *opposite* direction, i.e. operators that newly
/// deployed validation in between).
pub fn drift_profiles(
    pop: &Population,
    profiles: &[MtaProfile],
    fraction: f64,
    seed: u64,
) -> Vec<MtaProfile> {
    let mut root = SimRng::new(seed ^ 0xd21f7);
    // Decide drift per AS so operator uniformity is preserved.
    let mut drifted: HashMap<u32, MtaProfile> = HashMap::new();
    let mut decided: HashMap<u32, bool> = HashMap::new();
    pop.hosts
        .iter()
        .zip(profiles)
        .map(|(host, profile)| {
            let drifts = *decided
                .entry(host.asn)
                .or_insert_with(|| root.fork(host.asn as u64).chance(fraction));
            if drifts {
                drifted
                    .entry(host.asn)
                    .or_insert_with(|| {
                        let mut rng = root.fork(host.asn as u64 ^ 0xfeed);
                        MtaProfile::sample(&mut rng, 0.0)
                    })
                    .clone()
            } else {
                profile.clone()
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The shared campaign world
// ---------------------------------------------------------------------------

/// Per-host instantiation data, precomputed once for the whole
/// campaign: the hostname string every `MtaActor` greets with (built
/// once here instead of `Name::to_string()` per session per restart)
/// and the host's connect address.
struct WorldHost {
    name: String,
    ipv4: std::net::Ipv4Addr,
}

/// What a NotifyEmail session's message is made of. The actual
/// build-and-sign runs at session instantiation on the shard threads
/// ([`CampaignWorld::shard_sessions`]): signing is per-session work, so
/// it belongs to the parallel simulate phase, not the shared setup.
struct MessageSpec {
    recipient_domain: Name,
    signing_domain: Name,
}

/// One session, described instead of instantiated: the prototype
/// record (carrying the global session id, the merge key) plus the
/// client-side parameters. Blueprints are immutable and shard-count
/// agnostic; every shard — and every supervised restart — instantiates
/// live actors from the same list.
struct SessionBlueprint {
    record: SessionRecord,
    helo_identity: String,
    mail_from: EmailAddress,
    rcpt_candidates: Vec<EmailAddress>,
    message: Option<MessageSpec>,
    pause_before_commands_ms: u64,
}

/// The immutable world of one campaign, built exactly once and shared
/// by every shard and every supervised restart (the scoped shard
/// threads borrow it; wrap it in an [`std::sync::Arc`] to share across
/// sequential runs, as the perf bench does when sweeping shard counts).
///
/// The world owns everything result-determining and expensive: the
/// apparatus DKIM key pair, the synthesizing authority behind the one
/// shared [`ServerCore`], the engine configuration, per-host
/// instantiation data, behavior profiles and the full session blueprint
/// list. Per-shard state is reduced to what a shard genuinely owns —
/// its live actors, fault cursors and journal. Nothing here is cloned
/// per shard, and a restarted shard re-instantiates its sessions from
/// these blueprints instead of re-deriving the campaign from scratch.
pub struct CampaignWorld {
    config: CampaignConfig,
    server: ServerCore<SynthesizingAuthority>,
    engine: EngineConfig,
    keypair: RsaKeyPair,
    hosts: Vec<WorldHost>,
    profiles: Vec<MtaProfile>,
    blueprints: Vec<SessionBlueprint>,
    blacklisted: bool,
    guessed: bool,
    build_s: f64,
}

impl CampaignWorld {
    /// Build the world for `(config, pop, profiles)`: generate the DKIM
    /// key pair, stand up the synthesizing authority, precompute host
    /// strings and lay out every session blueprint in deterministic
    /// campaign order. This is the entire setup phase of a campaign;
    /// everything after it is per-shard and parallel.
    pub fn build(
        config: &CampaignConfig,
        pop: &Population,
        profiles: &[MtaProfile],
    ) -> CampaignWorld {
        assert_eq!(profiles.len(), pop.hosts.len(), "one profile per host");
        let start = std::time::Instant::now();
        let scheme = NameScheme::default();
        let addrs = SynthAddrs::default();

        // The apparatus's DKIM key pair (one key for all From domains;
        // the synthesized key records all carry it).
        let mut keyrng = SplitMix64::new(config.seed ^ 0x444b_4559);
        let keypair = RsaKeyPair::generate(1024, &mut keyrng);
        let dkim_record = DkimKeyRecord::for_key(&keypair.public).to_record_text();
        let dmarc_record = DmarcRecord::strict_reject("dmarc-reports@dns-lab.org").to_record_text();
        let authority =
            SynthesizingAuthority::new(scheme.clone(), addrs.clone(), dkim_record, dmarc_record);
        let server = ServerCore::new(authority);

        let client_ip: IpAddr = IpAddr::V4(addrs.sender_v4);
        let auth_ip: IpAddr = "198.51.100.53".parse().expect("valid");
        let engine = EngineConfig {
            latency: config.latency.clone(),
            faults: config.faults.clone(),
            payload: config.payload.clone(),
            client_ip,
            auth_ip,
            local_hop_ms: 1,
            budget: config.budget,
            memory: config.memory,
        };

        let hosts = pop
            .hosts
            .iter()
            .map(|h| WorldHost {
                name: h.name.to_string(),
                ipv4: h.ipv4,
            })
            .collect();
        let blueprints = build_blueprints(config, pop, &scheme);

        CampaignWorld {
            blacklisted: config.kind == CampaignKind::NotifyMx,
            guessed: config.kind == CampaignKind::TwoWeekMx,
            config: config.clone(),
            server,
            engine,
            keypair,
            hosts,
            profiles: profiles.to_vec(),
            blueprints,
            build_s: start.elapsed().as_secs_f64(),
        }
    }

    /// Sessions this campaign will run.
    pub fn session_count(&self) -> usize {
        self.blueprints.len()
    }

    /// Wall seconds spent in [`CampaignWorld::build`].
    pub fn build_seconds(&self) -> f64 {
        self.build_s
    }

    /// The campaign configuration the world was built from.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Instantiate live actors for shard `k` of `nshards`: the
    /// blueprint's round-robin assignment (`session_id % nshards`)
    /// matches [`partition`], so a shard's session set is a pure
    /// function of `(world, k, nshards)` — first attempt and supervised
    /// restart take the identical path. Runs on the shard's own thread;
    /// NotifyEmail message signing happens here, in parallel.
    pub fn shard_sessions(&self, k: usize, nshards: usize) -> Vec<LiveSession> {
        self.blueprints
            .iter()
            .filter(|b| b.record.session_id % nshards == k)
            .map(|b| self.instantiate(b))
            .collect()
    }

    fn instantiate(&self, bp: &SessionBlueprint) -> LiveSession {
        let host = &self.hosts[bp.record.host_index];
        let profile = self.profiles[bp.record.host_index].clone();
        let hostile_dns = profile.hostile_dns;
        let message = bp.message.as_ref().map(|spec| {
            build_notification(
                &bp.mail_from,
                &spec.recipient_domain,
                &self.keypair,
                &spec.signing_domain,
            )
        });
        let client = ClientSession::new(ClientConfig {
            helo_identity: bp.helo_identity.clone(),
            mail_from: Some(bp.mail_from.clone()),
            rcpt_candidates: bp.rcpt_candidates.clone(),
            message,
            pause_before_commands_ms: bp.pause_before_commands_ms,
            max_session_retries: CLIENT_RETRY_BUDGET,
            retry_backoff_ms: CLIENT_RETRY_BACKOFF_MS,
        });
        let resolver = ResolverActor::new(
            profile.resolver.clone(),
            profile.ipv6_capable,
            Some("v6only".to_string()),
        );
        let mta = MtaActor::new(
            &host.name,
            profile,
            ConnContext {
                client_ip: self.engine.client_ip,
                client_blacklisted: self.blacklisted,
                recipients_guessed: self.guessed,
            },
        );
        let mut session = LiveSession::new(
            bp.record.clone(),
            client,
            mta,
            resolver,
            IpAddr::V4(host.ipv4),
        );
        session.set_hostile_dns(hostile_dns);
        session
    }

    /// Run one shard to completion: instantiate its sessions from the
    /// shared world (on this shard's thread), replay its journal if
    /// durability is on, and drive the event loop. A journal that
    /// cannot be opened leaves the shard running non-durable with
    /// `durability_lost` set — never a crash. Generic over the tracer
    /// so the untraced path pays nothing for the telemetry seam.
    #[allow(clippy::too_many_arguments)]
    fn run_shard<T: Tracer>(
        &self,
        k: usize,
        nshards: usize,
        exec: &CampaignConfig,
        journal_paths: Option<&Vec<PathBuf>>,
        journal_enabled: &[bool],
        vfs: &dyn Vfs,
        tracer: T,
    ) -> EngineOutput {
        let sessions = self.shard_sessions(k, nshards);
        let mut engine = SessionEngine::with_tracer(&self.server, self.engine.clone(), tracer);
        if exec.telemetry.heartbeat_ms > 0 {
            engine.set_heartbeat(k, exec.telemetry.heartbeat_ms);
        }
        let mut skip: HashSet<usize> = HashSet::new();
        let mut durability_lost = false;
        match journal_paths {
            Some(paths) if journal_enabled[k] => {
                let path = &paths[k];
                let replay = journal::replay_with(path, vfs);
                let valid_len = replay.valid_len;
                skip = replay.completed_ids();
                engine.seed_replay(replay);
                match JournalWriter::open_append_with(path, valid_len, exec.fsync_every, vfs) {
                    Ok(writer) => engine.set_journal(writer),
                    Err(e) => {
                        durability_lost = true;
                        crate::progress!(
                            "shard {k}: journal unavailable, running non-durable: {e}"
                        );
                    }
                }
            }
            // Durability was requested but this shard (or the whole
            // journal directory) lost it before the run began.
            Some(_) => durability_lost = true,
            None if exec.journal_dir.is_some() => durability_lost = true,
            None => {}
        }
        for session in sessions {
            if skip.contains(&session.session_id()) {
                continue; // already completed and journaled
            }
            // Stagger session starts by global id, exactly as the
            // single-threaded driver did.
            let start = (session.session_id() as u64) * 7;
            engine.add_session(session, start);
        }
        let mut output = engine.run();
        output.stats.durability_lost |= durability_lost;
        output
    }

    /// Run the campaign over this world. Result-determining knobs come
    /// from the world itself; `exec` contributes only execution knobs —
    /// `shards`, `journal_dir`, `resume`, `fsync_every`, `io`,
    /// `supervisor`, `telemetry` — so one world can be swept across
    /// shard counts without rebuilding (the output is byte-identical
    /// for every value, which the golden determinism test pins).
    pub fn run(&self, exec: &CampaignConfig) -> CampaignResult {
        let run_start = std::time::Instant::now();
        let parts = partition(self.blueprints.len(), exec.shards);
        let nshards = parts.len();

        // The storage layer every journal touch goes through: the
        // passthrough unless an IO fault plan is active.
        let io_plan = IoPlan::new(exec.io.clone());
        let vfs: Arc<dyn Vfs> = if io_plan.is_active() {
            Arc::new(SimFs::new(io_plan))
        } else {
            Arc::new(OsFs)
        };

        // Durability setup: one journal file per shard. A fresh
        // (non-resume) run resets any leftovers so stale frames cannot
        // leak in. Every IO failure here degrades durability for the
        // affected shard(s) instead of aborting the campaign — the
        // results are unaffected, only crash coverage is lost.
        let mut journal_enabled = vec![true; nshards];
        let journal_paths: Option<Vec<PathBuf>> = exec.journal_dir.as_ref().and_then(|dir| {
            if let Err(e) = vfs.create_dir_all(dir) {
                crate::progress!("journal directory unavailable, campaign runs non-durable: {e}");
                return None;
            }
            Some(
                (0..nshards)
                    .map(|k| journal::shard_journal_path(dir, k))
                    .collect(),
            )
        });
        if let Some(paths) = &journal_paths {
            if !exec.resume {
                for (k, path) in paths.iter().enumerate() {
                    // Truncate-and-rewrite through the same vfs the
                    // shards will append through.
                    if let Err(e) =
                        JournalWriter::open_append_with(path, 0, exec.fsync_every, &*vfs)
                    {
                        // A leftover journal we could neither truncate
                        // nor delete may hold frames of a *different*
                        // campaign; replaying it would corrupt this
                        // run, so the shard goes non-durable.
                        if vfs.remove_file(path).is_err() && path.exists() {
                            journal_enabled[k] = false;
                            crate::progress!(
                                "shard {k}: journal reset failed with stale file left, \
                                 shard runs non-durable: {e}"
                            );
                        } else {
                            crate::progress!(
                                "shard {k}: journal reset failed, file removed \
                                 (recreated on open): {e}"
                            );
                        }
                    }
                }
            }
        }

        let paths_ref = &journal_paths;
        let journal_enabled = &journal_enabled;
        let vfs_ref = &vfs;
        // Run one shard to completion, with or without a recording
        // tracer. The tracer choice is an execution knob: both arms
        // call the same generic [`CampaignWorld::run_shard`], and the
        // untraced arm monomorphizes to the zero-cost null tracer.
        let run_one = |k: usize| -> EngineOutput {
            if exec.telemetry.tracing {
                self.run_shard(
                    k,
                    nshards,
                    exec,
                    paths_ref.as_ref(),
                    journal_enabled,
                    &**vfs_ref,
                    RecordingTracer::default(),
                )
            } else {
                self.run_shard(
                    k,
                    nshards,
                    exec,
                    paths_ref.as_ref(),
                    journal_enabled,
                    &**vfs_ref,
                    NullTracer,
                )
            }
        };

        // The supervisor: run all pending shards, catch shard-level
        // crashes, restart crashed shards (from journal) with
        // exponential backoff and a bounded per-shard restart budget. A
        // shard over budget — or any crash past the wall-clock deadline
        // — is finalized from whatever its journal durably holds, and
        // the result is marked partial.
        let supervisor = exec.supervisor;
        let setup_s = run_start.elapsed().as_secs_f64();
        let sim_start = std::time::Instant::now();
        let mut outputs: Vec<Option<EngineOutput>> = (0..nshards).map(|_| None).collect();
        let mut wall_ms = vec![0.0f64; nshards];
        let mut restarts = vec![0u32; nshards];
        let mut partial = false;
        let mut pending: Vec<usize> = (0..nshards).collect();
        let mut round = 0u32;
        while !pending.is_empty() {
            let results = run_shards_catch(pending.clone(), |_, k| run_one(k));
            let mut next_pending = Vec::new();
            for (i, (result, timing)) in results.into_iter().enumerate() {
                let k = pending[i];
                wall_ms[k] += timing.wall_ms;
                match result {
                    Ok(output) => outputs[k] = Some(output),
                    Err(_) => {
                        restarts[k] += 1;
                        let deadline_passed = supervisor.wall_deadline_ms > 0
                            && sim_start.elapsed().as_millis() as u64
                                >= supervisor.wall_deadline_ms;
                        if restarts[k] > supervisor.max_shard_restarts || deadline_passed {
                            partial = true;
                            // Finalize from journal: everything the
                            // shard durably completed still counts.
                            // Without a journal the shard's work is
                            // simply lost.
                            outputs[k] = paths_ref.as_ref().map(|paths| {
                                journal::replay_with(&paths[k], &*vfs).into_engine_output()
                            });
                        } else {
                            next_pending.push(k);
                        }
                    }
                }
            }
            pending = next_pending;
            if !pending.is_empty() {
                let backoff = supervisor
                    .restart_backoff_ms
                    .saturating_mul(1u64 << round.min(6));
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                round += 1;
            }
        }
        let simulate_s = sim_start.elapsed().as_secs_f64();

        let merge_start = std::time::Instant::now();
        let mut logs = Vec::with_capacity(nshards);
        let mut per_shard_records = Vec::with_capacity(nshards);
        let mut shard_stats = Vec::with_capacity(nshards);
        let mut telemetries = Vec::new();
        let mut events = 0;
        let mut faults = FaultStats::default();
        for (k, output) in outputs.into_iter().enumerate() {
            let Some(output) = output else {
                continue; // journal-less shard lost past its restart budget
            };
            events += output.stats.events;
            faults.merge(&output.stats.faults);
            shard_stats.push(ShardStats::new(k, output.stats, wall_ms[k], restarts[k]));
            logs.push(output.log);
            per_shard_records.push(output.records);
            // Journal-finalized shards carry no telemetry (it is never
            // journaled); the merged trace covers exactly the sessions
            // this run actually simulated.
            telemetries.extend(output.telemetry);
        }
        let log = QueryLog::merge(logs);
        let sessions = merge_session_records(per_shard_records);
        let telemetry = if exec.telemetry.tracing {
            Some(Telemetry::merge(telemetries))
        } else {
            None
        };
        let merge_s = merge_start.elapsed().as_secs_f64();

        CampaignResult {
            log,
            sessions,
            events,
            faults,
            shard_stats,
            partial,
            phases: PhaseTimes {
                setup_s,
                simulate_s,
                merge_s,
                persist_s: 0.0,
            },
            telemetry,
        }
    }
}

/// Run a campaign against a population with pre-sampled host profiles
/// (use [`sample_host_profiles`]; the same profiles must be reused
/// across NotifyEmail and NotifyMX for the §6.2 consistency analysis).
///
/// Builds the shared [`CampaignWorld`] once and fans execution out over
/// `config.shards` worker threads; results are merged back into
/// canonical order, so the output is a pure function of `(config, pop,
/// profiles)` regardless of shard count or thread scheduling. To sweep
/// shard counts without rebuilding the world, call
/// [`CampaignWorld::build`] + [`CampaignWorld::run`] directly.
pub fn run_campaign(
    config: &CampaignConfig,
    pop: &Population,
    profiles: &[MtaProfile],
) -> CampaignResult {
    let world = CampaignWorld::build(config, pop, profiles);
    let mut result = world.run(config);
    result.phases.setup_s += world.build_seconds();
    result
}

/// Run a campaign through the content-addressed store: serve the
/// result from disk when an intact entry exists for the spec's key,
/// otherwise simulate via [`run_campaign`] and persist the result for
/// the next caller. All progress goes through [`crate::progress!`] and
/// carries the content hash, so every run is attributable in logs.
///
/// Any load failure — missing entry, torn tail, checksum mismatch,
/// stale key — falls back to a clean re-run; the store can only ever
/// cost a simulation, never serve wrong data.
pub fn run_campaign_stored(
    spec: &crate::store::KeySpec<'_>,
    pop: &Population,
    profiles: &[MtaProfile],
    store: Option<&crate::store::CampaignStore>,
) -> (CampaignResult, crate::store::StoreStatus) {
    use crate::store::{StoreError, StoreStatus};

    let config = spec.config;
    let key = spec.key();
    let status = match store {
        None => StoreStatus::Off,
        Some(store) => match store.load(&key) {
            Ok(result) => {
                crate::progress!(
                    "campaign {} key={} store=hit: {} sessions, {} queries served from {}",
                    key.label,
                    key.short_hex(),
                    result.sessions.len(),
                    result.log.records.len(),
                    store.path_for(&key).display()
                );
                return (result, StoreStatus::Hit);
            }
            Err(StoreError::Missing) => StoreStatus::Miss("cold".to_string()),
            Err(e) => StoreStatus::Miss(e.to_string()),
        },
    };

    crate::progress!(
        "campaign {} key={} store={}: running over {} domains / {} hosts on {} shard(s) ...",
        key.label,
        key.short_hex(),
        crate::progress::store_status(&status),
        pop.domains.len(),
        pop.hosts.len(),
        config.shards.max(1)
    );
    let start = std::time::Instant::now();
    let mut result = run_campaign(config, pop, profiles);
    crate::progress!(
        "campaign {} key={} done: {} sessions, {} queries logged, {} events, {:.1}s wall \
         (setup {:.3}s / simulate {:.3}s / merge {:.3}s, setup-share {:.1}%)",
        key.label,
        key.short_hex(),
        result.sessions.len(),
        result.log.records.len(),
        result.events,
        start.elapsed().as_secs_f64(),
        result.phases.setup_s,
        result.phases.simulate_s,
        result.phases.merge_s,
        result.phases.setup_share() * 100.0
    );
    if let Some(store) = store {
        let persist_start = std::time::Instant::now();
        match store.save(&key, &result) {
            Ok(path) => crate::progress!(
                "campaign {} key={} persisted to {}",
                key.label,
                key.short_hex(),
                path.display()
            ),
            // A failed save degrades to store-off behavior; the result
            // in hand is still correct.
            Err(e) => crate::progress!(
                "campaign {} key={} could not be persisted: {e}",
                key.label,
                key.short_hex()
            ),
        }
        result.phases.persist_s = persist_start.elapsed().as_secs_f64();
    }
    (result, status)
}

/// Lay out the full session list in deterministic campaign order and
/// assign global session ids (`0..n`, the merge key). Blueprints carry
/// everything a shard needs to instantiate a session; nothing here
/// touches profiles, actors or signing.
fn build_blueprints(
    config: &CampaignConfig,
    pop: &Population,
    scheme: &NameScheme,
) -> Vec<SessionBlueprint> {
    let mut rng = SimRng::new(config.seed);
    let mut blueprints: Vec<SessionBlueprint> = Vec::new();

    match config.kind {
        CampaignKind::NotifyEmail => {
            for d in &pop.domains {
                let Some(&host_index) = d.host_indices.first() else {
                    continue;
                };
                blueprints.push(SessionBlueprint {
                    record: SessionRecord {
                        session_id: blueprints.len(),
                        host_index,
                        domain_index: d.index,
                        testid: None,
                        start_ms: 0,
                        outcome: None,
                        delivery_time_ms: None,
                        closed_by_server: false,
                        error: None,
                        termination: crate::engine::SessionOutcome::Completed,
                    },
                    helo_identity: "notify.dns-lab.org".into(),
                    mail_from: scheme.notify_from(d.index),
                    rcpt_candidates: vec![EmailAddress::new("operator", d.name.clone())],
                    message: Some(MessageSpec {
                        recipient_domain: d.name.clone(),
                        signing_domain: scheme.notify_domain(d.index),
                    }),
                    pause_before_commands_ms: 0,
                });
            }
        }
        CampaignKind::NotifyMx | CampaignKind::TwoWeekMx => {
            // One probe per (unique used host, test). §5.2: each MTA is
            // analyzed once even when several domains designate it.
            let mut host_domain: HashMap<usize, usize> = HashMap::new();
            for d in &pop.domains {
                if config.kind == CampaignKind::NotifyMx && d.mx_reresolution_failed {
                    continue;
                }
                for &h in &d.host_indices {
                    host_domain.entry(h).or_insert(d.index);
                }
            }
            let mut hosts: Vec<(usize, usize)> = host_domain.into_iter().collect();
            hosts.sort_unstable();
            // §5.2: shuffle the probing order.
            rng.shuffle(&mut hosts);
            for (host_index, domain_index) in hosts {
                let domain_name = pop.domains[domain_index].name.clone();
                // TwoWeekMX must guess usernames (§4.4, §6.3); NotifyMX
                // reuses the known-valid notification recipients.
                let rcpt_candidates: Vec<EmailAddress> = if config.kind == CampaignKind::TwoWeekMx {
                    probe_usernames()
                        .iter()
                        .map(|u| EmailAddress::new(u, domain_name.clone()))
                        .collect()
                } else {
                    vec![EmailAddress::new("operator", domain_name.clone())]
                };
                for testid in &config.tests {
                    blueprints.push(SessionBlueprint {
                        record: SessionRecord {
                            session_id: blueprints.len(),
                            host_index,
                            domain_index,
                            testid: Some(testid),
                            start_ms: 0,
                            outcome: None,
                            delivery_time_ms: None,
                            closed_by_server: false,
                            error: None,
                            termination: crate::engine::SessionOutcome::Completed,
                        },
                        helo_identity: scheme.probe_helo(testid, host_index).to_string(),
                        mail_from: scheme.probe_from(testid, host_index),
                        rcpt_candidates: rcpt_candidates.clone(),
                        message: None,
                        pause_before_commands_ms: config.probe_pause_ms,
                    });
                }
            }
        }
    }
    blueprints
}

/// Build the signed notification message (§4.3.1: "the content was in
/// fact an important notification", DKIM-signed, Reply-To set for
/// attribution §5.3).
fn build_notification(
    from: &EmailAddress,
    recipient_domain: &Name,
    keypair: &RsaKeyPair,
    signing_domain: &Name,
) -> Vec<u8> {
    let mut m = MailMessage::new();
    m.add_header("From", &format!("Network Notifier <{from}>"));
    m.add_header("To", &format!("operator@{recipient_domain}"));
    m.add_header(
        "Subject",
        "Action recommended: source-address-validation issue detected",
    );
    m.add_header("Date", "Mon, 12 Oct 2020 09:00:00 +0000");
    m.add_header(
        "Message-ID",
        &format!("<notify.{}@dns-lab.org>", from.domain),
    );
    m.add_header("Reply-To", "research@dns-lab.org");
    m.set_body_text(
        "Dear network operator,\n\
         \n\
         During a recent measurement study we detected that your network\n\
         does not enforce destination-side source address validation.\n\
         Details and remediation guidance: https://dns-lab.org/dsav\n\
         \n\
         To opt out of future notifications, reply to this message.\n",
    );
    let config = SignConfig::new(signing_domain.clone(), Name::parse("sel1").expect("valid"));
    let value = sign_message(&m, &config, &keypair.private).expect("signable");
    m.prepend_header("DKIM-Signature", &value);
    m.to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_datasets::{DatasetKind, PopulationConfig};

    fn tiny_pop(kind: DatasetKind, seed: u64) -> Population {
        Population::generate(&PopulationConfig {
            kind,
            scale: 0.004,
            seed,
        })
    }

    fn test_config(kind: CampaignKind, tests: Vec<&'static str>, seed: u64) -> CampaignConfig {
        CampaignConfig {
            kind,
            tests,
            seed,
            probe_pause_ms: 0,
            latency: LatencyModel::default(),
            shards: 1,
            faults: FaultConfig::default(),
            ..Default::default()
        }
    }

    #[test]
    fn notify_email_campaign_delivers_and_logs() {
        let pop = tiny_pop(DatasetKind::NotifyEmail, 11);
        let profiles = sample_host_profiles(&pop, 11);
        let config = test_config(CampaignKind::NotifyEmail, vec![], 11);
        let result = run_campaign(&config, &pop, &profiles);
        assert_eq!(result.sessions.len(), pop.domains.len());
        // Most deliveries succeed.
        let delivered = result
            .sessions
            .iter()
            .filter(|s| s.delivery_time_ms.is_some())
            .count();
        assert!(
            delivered as f64 > 0.9 * result.sessions.len() as f64,
            "delivered {delivered}/{}",
            result.sessions.len()
        );
        // SPF policy (base L0 TXT) queries observed for ≈85% of domains
        // (§6.1; the provider-quality bias pushes slightly above).
        let spf_validating: std::collections::HashSet<usize> = result
            .log
            .records
            .iter()
            .filter_map(|r| {
                let attr = r.attribution.as_ref()?;
                attr.path.is_empty().then_some(attr.domain_index?)
            })
            .collect();
        let rate = spf_validating.len() as f64 / pop.domains.len() as f64;
        assert!(
            (0.75..0.95).contains(&rate),
            "SPF-validating domain rate {rate} (expected near .85)"
        );
    }

    #[test]
    fn probe_campaign_aborts_before_data_and_attributes_queries() {
        let pop = tiny_pop(DatasetKind::TwoWeekMx, 13);
        let profiles = sample_host_profiles(&pop, 13);
        let mut config = test_config(CampaignKind::TwoWeekMx, vec!["t01", "t12"], 13);
        config.probe_pause_ms = 15_000;
        let result = run_campaign(&config, &pop, &profiles);
        assert!(!result.sessions.is_empty());
        // No probe session ever delivers a message (§5.1).
        assert!(result.sessions.iter().all(|s| s.delivery_time_ms.is_none()));
        for s in &result.sessions {
            if let Some(outcome) = &s.outcome {
                assert!(!outcome.delivered);
            }
        }
        // Queries attribute to the configured tests only.
        for r in &result.log.records {
            if let Some(attr) = &r.attribution {
                let t = attr.testid.as_deref().unwrap();
                assert!(t == "t01" || t == "t12", "unexpected test {t}");
            }
        }
        // Some MTAs validated (the population validates at a floor rate).
        assert!(result.log.records.iter().any(|r| r.attribution.is_some()));
    }

    #[test]
    fn deterministic_given_seed() {
        let pop = tiny_pop(DatasetKind::TwoWeekMx, 17);
        let profiles = sample_host_profiles(&pop, 17);
        let mut config = test_config(CampaignKind::TwoWeekMx, vec!["t12"], 17);
        config.probe_pause_ms = 1_000;
        let a = run_campaign(&config, &pop, &profiles);
        let b = run_campaign(&config, &pop, &profiles);
        assert_eq!(a.log.records.len(), b.log.records.len());
        assert_eq!(a.events, b.events);
        for (x, y) in a.log.records.iter().zip(&b.log.records) {
            assert_eq!(x.qname, y.qname);
            assert_eq!(x.time_ms, y.time_ms);
        }
    }

    #[test]
    fn sharded_run_matches_single_threaded() {
        // The unit-level determinism check; the cross-crate integration
        // test (tests/shard_determinism.rs) covers analysis tables too.
        let pop = tiny_pop(DatasetKind::TwoWeekMx, 23);
        let profiles = sample_host_profiles(&pop, 23);
        let mut config = test_config(CampaignKind::TwoWeekMx, vec!["t01", "t12"], 23);
        config.probe_pause_ms = 1_000;
        let single = run_campaign(&config, &pop, &profiles);
        for shards in [2, 3, 8] {
            config.shards = shards;
            let sharded = run_campaign(&config, &pop, &profiles);
            assert_eq!(sharded.events, single.events, "shards={shards}");
            assert_eq!(
                sharded.log.records.len(),
                single.log.records.len(),
                "shards={shards}"
            );
            for (x, y) in sharded.log.records.iter().zip(&single.log.records) {
                assert_eq!(x.time_ms, y.time_ms);
                assert_eq!(x.session, y.session);
                assert_eq!(x.qname, y.qname);
                assert_eq!(x.qtype, y.qtype);
            }
            assert_eq!(sharded.sessions.len(), single.sessions.len());
            for (x, y) in sharded.sessions.iter().zip(&single.sessions) {
                assert_eq!(x.session_id, y.session_id);
                assert_eq!(x.outcome, y.outcome);
                assert_eq!(x.delivery_time_ms, y.delivery_time_ms);
                assert_eq!(x.closed_by_server, y.closed_by_server);
            }
            let stats_sessions: usize = sharded.shard_stats.iter().map(|s| s.sessions).sum();
            assert_eq!(stats_sessions, sharded.sessions.len());
            assert_eq!(sharded.faults, single.faults, "shards={shards}");
        }
    }

    #[test]
    fn total_loss_times_out_every_lookup() {
        // Satellite (a): `LatencyModel::lost` is the engine's loss oracle.
        // With loss_probability = 1.0 every UDP datagram is dropped, so no
        // query ever reaches the authoritative server (empty log) and every
        // resolution exhausts its retries through `on_timeout`.
        let pop = tiny_pop(DatasetKind::NotifyEmail, 31);
        let profiles = sample_host_profiles(&pop, 31);
        let mut config = test_config(CampaignKind::NotifyEmail, vec![], 31);
        config.latency.loss_probability = 1.0;
        let result = run_campaign(&config, &pop, &profiles);
        assert!(!result.sessions.is_empty());
        assert!(
            result.log.records.is_empty(),
            "no query may reach the server under total loss"
        );
        assert!(result.faults.dns_dropped > 0);
        assert!(result.faults.dns_timeouts > 0);
        // Sessions still run to completion: the SMTP dialogue proceeds
        // even though every validation lookup times out.
        for s in &result.sessions {
            assert!(s.error.is_none());
            assert!(
                s.outcome.is_some(),
                "session {} has no outcome",
                s.session_id
            );
        }
    }

    #[test]
    fn greylisting_campaign_retries_and_delivers() {
        // Satellite (c) at campaign scale: every host greylists the first
        // RCPT with a 451, the probe client backs off and retries, and
        // deliveries still succeed on the second attempt.
        let pop = tiny_pop(DatasetKind::NotifyEmail, 37);
        let mut profiles = sample_host_profiles(&pop, 37);
        for p in &mut profiles {
            p.greylists = true;
        }
        let config = test_config(CampaignKind::NotifyEmail, vec![], 37);
        let result = run_campaign(&config, &pop, &profiles);
        assert!(!result.sessions.is_empty());
        assert!(result.faults.tempfails > 0);
        assert!(result.faults.client_retries > 0);
        let delivered = result
            .sessions
            .iter()
            .filter(|s| s.delivery_time_ms.is_some())
            .count();
        assert!(
            delivered as f64 > 0.9 * result.sessions.len() as f64,
            "delivered {delivered}/{} despite greylisting",
            result.sessions.len()
        );
        for s in &result.sessions {
            if s.delivery_time_ms.is_some() {
                let outcome = s.outcome.as_ref().expect("delivered implies outcome");
                assert!(outcome.retries >= 1, "delivery without a greylist retry");
            }
        }
    }

    #[test]
    fn server_initiated_close_reaches_the_client() {
        // Force every operator into the "DNSBL slam" behavior: the MTA
        // rejects the blacklisted NotifyMX client at MAIL and drops the
        // connection itself. Before close propagation those sessions
        // ended with `outcome: None`; now the disconnect is recorded.
        let pop = tiny_pop(DatasetKind::NotifyEmail, 29);
        let mut profiles = sample_host_profiles(&pop, 29);
        for p in &mut profiles {
            p.rejects_spam = false;
            p.rejects_blacklist = true;
        }
        let config = test_config(CampaignKind::NotifyMx, vec!["t01"], 29);
        let result = run_campaign(&config, &pop, &profiles);
        assert!(!result.sessions.is_empty());
        for s in &result.sessions {
            assert!(
                s.closed_by_server,
                "session {} must be ended by the server-side close",
                s.session_id
            );
            let outcome = s
                .outcome
                .as_ref()
                .expect("disconnect must record a partial outcome");
            let (phase, reply) = outcome.rejection.as_ref().expect("rejected at MAIL");
            assert_eq!(*phase, mailval_smtp::client::Phase::Mail);
            assert!(reply.text().contains("blacklist"));
        }
    }
}
