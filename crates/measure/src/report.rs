//! Plain-text table rendering for the paper-vs-measured reports.

/// Render a fixed-width table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Format "count (pct of total)".
pub fn count_pct(count: usize, total: usize) -> String {
    if total == 0 {
        return format!("{count} (–)");
    }
    format!("{count} ({})", pct(count as f64 / total as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let out = render_table(
            "Demo",
            &["col", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(out.contains("== Demo =="));
        assert!(out.contains("longer  22"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.853), "85.3%");
        assert_eq!(count_pct(85, 100), "85 (85.0%)");
        assert_eq!(count_pct(1, 0), "1 (–)");
    }
}
