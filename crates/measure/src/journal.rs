//! Durable, append-only session journals for crash/resume campaigns.
//!
//! The paper's measurement ran for nine months (§4, §6); at that
//! horizon the apparatus must survive process death without losing
//! completed work. Each shard of a campaign appends one **frame** per
//! completed session to its own journal file:
//!
//! ```text
//! file   := magic frames*
//! magic  := "MVALJNL1"                      (8 bytes)
//! frame  := len:u32le crc:u32le payload     (crc = CRC-32/IEEE of payload)
//! ```
//!
//! The payload is a self-contained binary encoding of everything the
//! merged [`crate::campaign::CampaignResult`] needs from that session:
//! the [`SessionRecord`], the session's query-log entries, its fault
//! counters, its dispatched-event count and its final virtual time. On
//! resume, [`replay`] walks the file, drops the first frame whose
//! length, checksum or payload fails to verify **and everything after
//! it** (a torn tail is re-run, never trusted), and the engine skips
//! the surviving sessions — producing output byte-identical to an
//! uninterrupted run.
//!
//! Durability discipline: every append is flushed to the file (a
//! crashed *process* loses at most nothing), and the file is fsync'd
//! every [`JournalWriter`] `fsync_every` frames (a crashed *machine*
//! loses at most the unsynced suffix, which replay then re-runs).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::apparatus::{Attribution, QueryLog, QueryRecord};
use crate::engine::{EngineOutput, EngineStats, SessionOutcome, SessionRecord};
use crate::vfs::{OsFs, Vfs, VfsFile};
use mailval_dns::rr::RecordType;
use mailval_dns::server::Transport;
use mailval_dns::Name;
use mailval_simnet::{FaultStats, MalformedClass, MalformedStats};
use mailval_smtp::client::{ClientOutcome, Phase};
use mailval_smtp::reply::Reply;
use mailval_smtp::EmailAddress;
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

/// File magic: identifies a mailval journal, version 1.
pub const MAGIC: [u8; 8] = *b"MVALJNL1";
/// Frames synced to disk between fsyncs, by default.
pub const DEFAULT_FSYNC_EVERY: u64 = 64;
/// Upper bound on one frame's payload length; anything larger in a
/// length prefix is treated as tail corruption, not an allocation.
const MAX_FRAME_LEN: u32 = 64 << 20;
const HEADER_LEN: u64 = MAGIC.len() as u64;

/// CRC-32 (IEEE 802.3, reflected, the zlib/`cksum -o3` polynomial) of
/// `data`. Bitwise, no table: journal frames are small and few.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// One journal frame: the durable remains of one completed session.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalFrame {
    /// The completed session's record.
    pub record: SessionRecord,
    /// Query-log entries the session's resolver generated, in dispatch
    /// order (re-sorted canonically at merge time).
    pub queries: Vec<QueryRecord>,
    /// The session's fault counters.
    pub faults: FaultStats,
    /// Events dispatched to the session.
    pub events: u64,
    /// Virtual time of the session's last event, ms.
    pub end_ms: u64,
}

/// Why a frame payload failed to decode. Replay treats any of these as
/// tail corruption (drop the frame and everything after it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Payload ended early.
    Truncated,
    /// Payload has bytes left over after the frame decoded.
    Trailing,
    /// An enum tag byte was out of range.
    BadTag,
    /// A string was not valid UTF-8.
    BadString,
    /// A DNS name failed to re-parse.
    BadName,
    /// A test id not present in [`crate::policies::ALL_TESTS`].
    UnknownTest,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            FrameError::Truncated => "frame payload truncated",
            FrameError::Trailing => "frame payload has trailing bytes",
            FrameError::BadTag => "bad enum tag",
            FrameError::BadString => "invalid UTF-8 string",
            FrameError::BadName => "unparseable DNS name",
            FrameError::UnknownTest => "unknown test id",
        };
        write!(f, "{what}")
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Little-endian byte encoder shared by the journal frames and the
/// campaign store ([`crate::store`]), so both speak one codec.
#[derive(Default)]
pub(crate) struct Enc(pub(crate) Vec<u8>);

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn opt<T>(&mut self, v: Option<&T>, mut put: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                put(self, inner);
            }
        }
    }
}

/// Decoding counterpart of [`Enc`]; every read is bounds-checked and
/// corruption surfaces as a [`FrameError`], never a panic.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated)?;
        if end > self.data.len() {
            return Err(FrameError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn boolean(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::BadTag),
        }
    }
    pub(crate) fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    pub(crate) fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn size(&mut self) -> Result<usize, FrameError> {
        usize::try_from(self.u64()?).map_err(|_| FrameError::Truncated)
    }
    pub(crate) fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadString)
    }
    fn opt<T>(
        &mut self,
        mut get: impl FnMut(&mut Self) -> Result<T, FrameError>,
    ) -> Result<Option<T>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(get(self)?)),
            _ => Err(FrameError::BadTag),
        }
    }
    pub(crate) fn finished(&self) -> Result<(), FrameError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(FrameError::Trailing)
        }
    }
}

fn phase_to_u8(p: Phase) -> u8 {
    match p {
        Phase::Greeting => 0,
        Phase::Helo => 1,
        Phase::Mail => 2,
        Phase::Rcpt => 3,
        Phase::Data => 4,
        Phase::Message => 5,
        Phase::Quit => 6,
    }
}

fn phase_from_u8(v: u8) -> Result<Phase, FrameError> {
    Ok(match v {
        0 => Phase::Greeting,
        1 => Phase::Helo,
        2 => Phase::Mail,
        3 => Phase::Rcpt,
        4 => Phase::Data,
        5 => Phase::Message,
        6 => Phase::Quit,
        _ => return Err(FrameError::BadTag),
    })
}

fn put_name(enc: &mut Enc, name: &Name) {
    enc.str(&name.to_string());
}

fn get_name(dec: &mut Dec<'_>) -> Result<Name, FrameError> {
    Name::parse(&dec.str()?).map_err(|_| FrameError::BadName)
}

fn put_reply(enc: &mut Enc, reply: &Reply) {
    enc.u16(reply.code);
    enc.u32(reply.lines.len() as u32);
    for line in &reply.lines {
        enc.str(line);
    }
}

fn get_reply(dec: &mut Dec<'_>) -> Result<Reply, FrameError> {
    let code = dec.u16()?;
    let n = dec.u32()? as usize;
    let mut lines = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        lines.push(dec.str()?);
    }
    Ok(Reply { code, lines })
}

fn put_address(enc: &mut Enc, addr: &EmailAddress) {
    enc.str(&addr.local);
    put_name(enc, &addr.domain);
}

fn get_address(dec: &mut Dec<'_>) -> Result<EmailAddress, FrameError> {
    let local = dec.str()?;
    let domain = get_name(dec)?;
    Ok(EmailAddress::new(&local, domain))
}

fn put_outcome(enc: &mut Enc, o: &ClientOutcome) {
    enc.u8(phase_to_u8(o.phase_reached));
    enc.opt(o.accepted_rcpt.as_ref(), put_address);
    enc.boolean(o.delivered);
    enc.opt(o.rejection.as_ref(), |e, (phase, reply)| {
        e.u8(phase_to_u8(*phase));
        put_reply(e, reply);
    });
    enc.u32(o.retries);
    enc.u32(o.transcript.len() as u32);
    for (phase, reply) in &o.transcript {
        enc.u8(phase_to_u8(*phase));
        put_reply(enc, reply);
    }
}

fn get_outcome(dec: &mut Dec<'_>) -> Result<ClientOutcome, FrameError> {
    let phase_reached = phase_from_u8(dec.u8()?)?;
    let accepted_rcpt = dec.opt(get_address)?;
    let delivered = dec.boolean()?;
    let rejection = dec.opt(|d| {
        let phase = phase_from_u8(d.u8()?)?;
        let reply = get_reply(d)?;
        Ok((phase, reply))
    })?;
    let retries = dec.u32()?;
    let n = dec.u32()? as usize;
    let mut transcript = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let phase = phase_from_u8(dec.u8()?)?;
        transcript.push((phase, get_reply(dec)?));
    }
    Ok(ClientOutcome {
        phase_reached,
        accepted_rcpt,
        delivered,
        rejection,
        retries,
        transcript,
    })
}

pub(crate) fn put_record(enc: &mut Enc, r: &SessionRecord) {
    enc.size(r.session_id);
    enc.size(r.host_index);
    enc.size(r.domain_index);
    enc.opt(r.testid.as_ref(), |e, t| e.str(t));
    enc.u64(r.start_ms);
    enc.opt(r.outcome.as_ref(), put_outcome);
    enc.opt(r.delivery_time_ms.as_ref(), |e, &t| e.u64(t));
    enc.boolean(r.closed_by_server);
    enc.opt(r.error.as_ref(), |e, s| e.str(s));
    match r.termination {
        SessionOutcome::Completed => enc.u8(0),
        SessionOutcome::BudgetExhausted { virtual_ms, events } => {
            enc.u8(1);
            enc.u64(virtual_ms);
            enc.u64(events);
        }
        SessionOutcome::HostileInput { class } => {
            enc.u8(2);
            enc.u8(class.index() as u8);
        }
        SessionOutcome::ResourceShed {
            queued_bytes,
            pending_events,
        } => {
            enc.u8(3);
            enc.u64(queued_bytes);
            enc.u64(pending_events);
        }
    }
}

pub(crate) fn get_record(dec: &mut Dec<'_>) -> Result<SessionRecord, FrameError> {
    let session_id = dec.size()?;
    let host_index = dec.size()?;
    let domain_index = dec.size()?;
    let testid = match dec.opt(|d| d.str())? {
        None => None,
        Some(id) => Some(
            crate::policies::test_by_id(&id)
                .ok_or(FrameError::UnknownTest)?
                .id,
        ),
    };
    let start_ms = dec.u64()?;
    let outcome = dec.opt(get_outcome)?;
    let delivery_time_ms = dec.opt(|d| d.u64())?;
    let closed_by_server = dec.boolean()?;
    let error = dec.opt(|d| d.str())?;
    let termination = match dec.u8()? {
        0 => SessionOutcome::Completed,
        1 => SessionOutcome::BudgetExhausted {
            virtual_ms: dec.u64()?,
            events: dec.u64()?,
        },
        2 => SessionOutcome::HostileInput {
            class: MalformedClass::from_index(dec.u8()? as usize).ok_or(FrameError::BadTag)?,
        },
        3 => SessionOutcome::ResourceShed {
            queued_bytes: dec.u64()?,
            pending_events: dec.u64()?,
        },
        _ => return Err(FrameError::BadTag),
    };
    Ok(SessionRecord {
        session_id,
        host_index,
        domain_index,
        testid,
        start_ms,
        outcome,
        delivery_time_ms,
        closed_by_server,
        error,
        termination,
    })
}

pub(crate) fn put_query(enc: &mut Enc, q: &QueryRecord) {
    enc.u64(q.time_ms);
    enc.size(q.session);
    put_name(enc, &q.qname);
    enc.u16(q.qtype.code());
    enc.u8(match q.transport {
        Transport::Udp => 0,
        Transport::Tcp => 1,
    });
    enc.boolean(q.via_ipv6);
    enc.opt(q.attribution.as_ref(), |e, a| {
        e.opt(a.testid.as_ref(), |e, s| e.str(s));
        e.opt(a.host_index.as_ref(), |e, &v| e.size(v));
        e.opt(a.domain_index.as_ref(), |e, &v| e.size(v));
        e.u32(a.path.len() as u32);
        for label in &a.path {
            e.str(label);
        }
    });
}

pub(crate) fn get_query(dec: &mut Dec<'_>) -> Result<QueryRecord, FrameError> {
    let time_ms = dec.u64()?;
    let session = dec.size()?;
    let qname = get_name(dec)?;
    let qtype = RecordType::from_code(dec.u16()?);
    let transport = match dec.u8()? {
        0 => Transport::Udp,
        1 => Transport::Tcp,
        _ => return Err(FrameError::BadTag),
    };
    let via_ipv6 = dec.boolean()?;
    let attribution = dec.opt(|d| {
        let testid = d.opt(|d| d.str())?;
        let host_index = d.opt(|d| d.size())?;
        let domain_index = d.opt(|d| d.size())?;
        let n = d.u32()? as usize;
        let mut path = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            path.push(d.str()?);
        }
        Ok(Attribution {
            testid,
            host_index,
            domain_index,
            path,
        })
    })?;
    Ok(QueryRecord {
        time_ms,
        session,
        qname,
        qtype,
        transport,
        via_ipv6,
        attribution,
    })
}

pub(crate) fn put_faults(enc: &mut Enc, f: &FaultStats) {
    for v in [
        f.dns_dropped,
        f.dns_duplicated,
        f.dns_delayed,
        f.dns_truncated,
        f.dns_timeouts,
        f.conn_resets,
        f.conn_stalls,
        f.mta_stalls,
        f.tempfails,
        f.client_retries,
        f.contained_panics,
        f.budget_exhausted,
        f.dns_payload_mutations,
        f.smtp_payload_mutations,
        f.hostile_inputs,
    ] {
        enc.u64(v);
    }
    // The malformed-class counters follow in `MalformedClass::ALL`
    // order; adding a class is a journal format change.
    for (_, count) in f.malformed.iter() {
        enc.u64(count);
    }
}

/// [`put_faults`] plus the PR-9 counters, appended after the legacy
/// block. The journal frames and store entries use this; the campaign
/// content hash keeps the legacy layout (plus a conditional tail) so
/// pinned digests survive the extension.
pub(crate) fn put_faults_v3(enc: &mut Enc, f: &FaultStats) {
    put_faults(enc, f);
    enc.u64(f.resource_shed);
}

pub(crate) fn get_faults(dec: &mut Dec<'_>) -> Result<FaultStats, FrameError> {
    let mut stats = FaultStats {
        dns_dropped: dec.u64()?,
        dns_duplicated: dec.u64()?,
        dns_delayed: dec.u64()?,
        dns_truncated: dec.u64()?,
        dns_timeouts: dec.u64()?,
        conn_resets: dec.u64()?,
        conn_stalls: dec.u64()?,
        mta_stalls: dec.u64()?,
        tempfails: dec.u64()?,
        client_retries: dec.u64()?,
        contained_panics: dec.u64()?,
        budget_exhausted: dec.u64()?,
        dns_payload_mutations: dec.u64()?,
        smtp_payload_mutations: dec.u64()?,
        hostile_inputs: dec.u64()?,
        resource_shed: 0,
        malformed: MalformedStats::default(),
    };
    let mut counts = [0u64; MalformedClass::ALL.len()];
    for c in &mut counts {
        *c = dec.u64()?;
    }
    stats.malformed = MalformedStats::from_counts(counts);
    Ok(stats)
}

/// Decoding counterpart of [`put_faults_v3`].
pub(crate) fn get_faults_v3(dec: &mut Dec<'_>) -> Result<FaultStats, FrameError> {
    let mut stats = get_faults(dec)?;
    stats.resource_shed = dec.u64()?;
    Ok(stats)
}

/// Serialize one frame's payload (length/checksum framing excluded).
pub fn encode_frame(frame: &JournalFrame) -> Vec<u8> {
    let mut enc = Enc::default();
    put_record(&mut enc, &frame.record);
    enc.u32(frame.queries.len() as u32);
    for q in &frame.queries {
        put_query(&mut enc, q);
    }
    put_faults_v3(&mut enc, &frame.faults);
    enc.u64(frame.events);
    enc.u64(frame.end_ms);
    enc.0
}

/// Deserialize one frame payload; the whole payload must be consumed.
pub fn decode_frame(payload: &[u8]) -> Result<JournalFrame, FrameError> {
    let mut dec = Dec::new(payload);
    let record = get_record(&mut dec)?;
    let n = dec.u32()? as usize;
    let mut queries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        queries.push(get_query(&mut dec)?);
    }
    let faults = get_faults_v3(&mut dec)?;
    let events = dec.u64()?;
    let end_ms = dec.u64()?;
    dec.finished()?;
    Ok(JournalFrame {
        record,
        queries,
        faults,
        events,
        end_ms,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appends checksummed frames to a journal file.
///
/// Every append is written through to the file immediately (a process
/// crash after `append` returns loses nothing); `sync_data` is invoked
/// every `fsync_every` appends (and on [`JournalWriter::sync`]) to
/// bound what an OS crash can lose.
///
/// All file I/O flows through a [`Vfs`], so a campaign under an active
/// `IoPlan` exercises the journal's failure paths through the same
/// code production uses. Any error surfaced here is degradable: the
/// engine demotes the shard to non-durable mode rather than panicking.
pub struct JournalWriter {
    file: Box<dyn VfsFile>,
    fsync_every: u64,
    appended_since_sync: u64,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("fsync_every", &self.fsync_every)
            .field("appended_since_sync", &self.appended_since_sync)
            .finish()
    }
}

impl JournalWriter {
    /// Create (or reset) the journal at `path`: the file is truncated
    /// to an empty journal containing only the magic header.
    pub fn create(path: &Path) -> io::Result<JournalWriter> {
        JournalWriter::open_append(path, 0, DEFAULT_FSYNC_EVERY)
    }

    /// Open `path` for appending after a [`replay`] established that
    /// its first `valid_len` bytes hold intact frames. The file is
    /// truncated to that prefix (a torn tail must not survive — the
    /// sessions it held are re-run and re-journaled), or initialized
    /// with the magic header when no valid prefix exists.
    pub fn open_append(path: &Path, valid_len: u64, fsync_every: u64) -> io::Result<JournalWriter> {
        JournalWriter::open_append_with(path, valid_len, fsync_every, &OsFs)
    }

    /// [`JournalWriter::open_append`] through an explicit [`Vfs`].
    pub fn open_append_with(
        path: &Path,
        valid_len: u64,
        fsync_every: u64,
        vfs: &dyn Vfs,
    ) -> io::Result<JournalWriter> {
        let mut file = vfs.open_write(path, false)?;
        if valid_len < HEADER_LEN {
            file.set_len(0)?;
            file.seek_to(0)?;
            file.write_all(&MAGIC)?;
        } else {
            file.set_len(valid_len)?;
            file.seek_to(valid_len)?;
        }
        Ok(JournalWriter {
            file,
            fsync_every,
            appended_since_sync: 0,
        })
    }

    /// Append one frame: `[len][crc32][payload]`, written in a single
    /// `write_all`, flushed through to the file.
    pub fn append(&mut self, frame: &JournalFrame) -> io::Result<()> {
        let payload = encode_frame(frame);
        let mut bytes = Vec::with_capacity(8 + payload.len());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        self.file.write_all(&bytes)?;
        self.appended_since_sync += 1;
        if self.fsync_every > 0 && self.appended_since_sync >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force the journal to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.appended_since_sync = 0;
        self.file.sync_data()
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// The verified contents of one shard's journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Intact frames, in append order, deduplicated by session id (the
    /// first occurrence wins; later duplicates can only come from a
    /// writer that crashed between append and supervisor restart
    /// bookkeeping, and re-ran the session identically).
    pub frames: Vec<JournalFrame>,
    /// Byte length of the verified prefix (header + intact frames).
    /// [`JournalWriter::open_append`] truncates to this before resuming.
    pub valid_len: u64,
    /// Bytes dropped behind the verified prefix (torn/corrupt tail).
    pub dropped_bytes: u64,
}

impl Replay {
    /// Session ids whose frames survived verification; the engine skips
    /// these on resume.
    pub fn completed_ids(&self) -> HashSet<usize> {
        self.frames.iter().map(|f| f.record.session_id).collect()
    }

    /// Reconstruct a shard's [`EngineOutput`] from its journal alone —
    /// the salvage path when a shard exhausts its restart budget and
    /// the journaled prefix is all that survives of it.
    pub fn into_engine_output(self) -> EngineOutput {
        let mut log = QueryLog::new();
        let mut records = Vec::with_capacity(self.frames.len());
        let mut faults = FaultStats::default();
        let mut events = 0u64;
        let mut virtual_ms = 0u64;
        for frame in self.frames {
            events += frame.events;
            faults.merge(&frame.faults);
            virtual_ms = virtual_ms.max(frame.end_ms);
            log.records.extend(frame.queries);
            records.push(frame.record);
        }
        log.sort_canonical();
        let stats = EngineStats {
            sessions: records.len(),
            events,
            queries_logged: log.records.len() as u64,
            virtual_ms,
            faults,
            // A journal-salvaged shard by definition outlived its
            // durability; the flag is observability, never hashed.
            durability_lost: false,
        };
        EngineOutput {
            log,
            records,
            stats,
            // Telemetry is never journaled: a salvaged shard's trace
            // covers nothing, by design.
            telemetry: None,
        }
    }
}

/// Read and verify a journal. Never fails: a missing file, a bad
/// header, or a torn/corrupt tail all just shorten the verified prefix
/// (the sessions behind it will be re-run). Corruption is detected by
/// the per-frame CRC-32, a length prefix running past the end of file
/// (or past [`MAX_FRAME_LEN`]), or a payload that does not decode.
pub fn replay(path: &Path) -> Replay {
    replay_with(path, &OsFs)
}

/// [`replay`] through an explicit [`Vfs`]: under an active `IoPlan`
/// the read itself may come back corrupted, which is just another way
/// to shorten the verified prefix.
pub fn replay_with(path: &Path, vfs: &dyn Vfs) -> Replay {
    let data = match vfs.read(path) {
        Ok(data) => data,
        Err(_) => return Replay::default(),
    };
    if data.len() < HEADER_LEN as usize || data[..HEADER_LEN as usize] != MAGIC {
        return Replay {
            frames: Vec::new(),
            valid_len: 0,
            dropped_bytes: data.len() as u64,
        };
    }
    let mut frames = Vec::new();
    let mut seen = HashSet::new();
    let mut pos = HEADER_LEN as usize;
    while let Some(header) = data.get(pos..pos + 8) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_FRAME_LEN {
            break;
        }
        let Some(payload) = data.get(pos + 8..pos + 8 + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(frame) = decode_frame(payload) else {
            break;
        };
        if seen.insert(frame.record.session_id) {
            frames.push(frame);
        }
        pos += 8 + len as usize;
    }
    Replay {
        frames,
        valid_len: pos as u64,
        dropped_bytes: (data.len() - pos) as u64,
    }
}

/// The canonical journal path for shard `shard` under `dir`.
pub fn shard_journal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.jrnl"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_frame(session_id: usize) -> JournalFrame {
        let name = Name::parse("t01.m5.spf.dns-lab.org").unwrap();
        let reply = Reply::multiline(451, vec!["greylisted,".into(), "try later".into()]);
        let outcome = ClientOutcome {
            phase_reached: Phase::Rcpt,
            accepted_rcpt: Some(EmailAddress::new(
                "operator",
                Name::parse("example.org").unwrap(),
            )),
            delivered: false,
            rejection: Some((Phase::Rcpt, reply.clone())),
            retries: 2,
            transcript: vec![
                (Phase::Greeting, Reply::greeting("mx.test")),
                (Phase::Rcpt, reply),
            ],
        };
        JournalFrame {
            record: SessionRecord {
                session_id,
                host_index: 5,
                domain_index: 7,
                testid: Some(crate::policies::ALL_TESTS[0].id),
                start_ms: 35,
                outcome: Some(outcome),
                delivery_time_ms: Some(90_000),
                closed_by_server: true,
                error: Some("contained: poisoned MTA profile".into()),
                termination: SessionOutcome::BudgetExhausted {
                    virtual_ms: 604_800_001,
                    events: 17,
                },
            },
            queries: vec![QueryRecord {
                time_ms: 120,
                session: session_id,
                qname: name,
                qtype: RecordType::Txt,
                transport: Transport::Tcp,
                via_ipv6: true,
                attribution: Some(Attribution {
                    testid: Some("t01".into()),
                    host_index: Some(5),
                    domain_index: None,
                    path: vec!["l2".into(), "l1".into()],
                }),
            }],
            faults: FaultStats {
                dns_dropped: 3,
                tempfails: 1,
                budget_exhausted: 1,
                ..Default::default()
            },
            events: 17,
            end_ms: 604_800_036,
        }
    }

    /// A frame ended by hostile input, with classified rejections —
    /// exercises the payload-fault extensions of the codec.
    fn hostile_frame(session_id: usize) -> JournalFrame {
        let mut frame = sample_frame(session_id);
        frame.record.termination = SessionOutcome::HostileInput {
            class: MalformedClass::SmtpBadChar,
        };
        frame.faults.dns_payload_mutations = 4;
        frame.faults.smtp_payload_mutations = 2;
        frame.faults.hostile_inputs = 1;
        frame.faults.malformed.record(MalformedClass::SmtpBadChar);
        frame.faults.malformed.record(MalformedClass::DnsBadPointer);
        frame.faults.malformed.record(MalformedClass::DnsBadPointer);
        frame
    }

    fn temp_journal(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mailval-journal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}.jrnl"))
    }

    #[test]
    fn frame_payload_roundtrips() {
        let frame = sample_frame(42);
        let payload = encode_frame(&frame);
        assert_eq!(decode_frame(&payload).unwrap(), frame);
    }

    #[test]
    fn hostile_frame_payload_roundtrips() {
        let frame = hostile_frame(43);
        let payload = encode_frame(&frame);
        let decoded = decode_frame(&payload).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(
            decoded
                .faults
                .malformed
                .count(MalformedClass::DnsBadPointer),
            2
        );
    }

    /// A frame shed by the memory budget — exercises the v3 codec
    /// extensions (termination tag 3 + the resource_shed counter).
    fn shed_frame(session_id: usize) -> JournalFrame {
        let mut frame = sample_frame(session_id);
        frame.record.termination = SessionOutcome::ResourceShed {
            queued_bytes: 9_000_000,
            pending_events: 4_096,
        };
        frame.faults.resource_shed = 1;
        frame
    }

    #[test]
    fn shed_frame_payload_roundtrips() {
        let frame = shed_frame(44);
        let payload = encode_frame(&frame);
        let decoded = decode_frame(&payload).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(decoded.faults.resource_shed, 1);
        assert_eq!(
            decoded.record.termination,
            SessionOutcome::ResourceShed {
                queued_bytes: 9_000_000,
                pending_events: 4_096,
            }
        );
    }

    #[test]
    fn frame_decode_rejects_any_truncation() {
        let payload = encode_frame(&sample_frame(1));
        for cut in 0..payload.len() {
            assert!(decode_frame(&payload[..cut]).is_err(), "cut={cut}");
        }
        let mut extended = payload;
        extended.push(0);
        assert_eq!(decode_frame(&extended), Err(FrameError::Trailing));
    }

    #[test]
    fn write_then_replay_roundtrips() {
        let path = temp_journal("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        for id in 0..5 {
            w.append(&sample_frame(id)).unwrap();
        }
        w.sync().unwrap();
        let replayed = replay(&path);
        assert_eq!(replayed.frames.len(), 5);
        assert_eq!(replayed.dropped_bytes, 0);
        assert_eq!(replayed.valid_len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(replayed.frames[3], sample_frame(3));
        assert_eq!(replayed.completed_ids(), (0..5).collect::<HashSet<usize>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_tail_is_dropped_not_fatal() {
        let path = temp_journal("corrupt-tail");
        let mut w = JournalWriter::create(&path).unwrap();
        for id in 0..4 {
            w.append(&sample_frame(id)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Flip one byte inside the last frame's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path);
        assert_eq!(replayed.frames.len(), 3, "corrupt last frame dropped");
        assert!(replayed.dropped_bytes > 0);
        // Resume writing after the valid prefix: the torn tail is gone.
        let valid_len = replayed.valid_len;
        let mut w = JournalWriter::open_append(&path, valid_len, 1).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid_len);
        w.append(&sample_frame(99)).unwrap();
        let ids = replay(&path).completed_ids();
        assert_eq!(ids, HashSet::from([0, 1, 2, 99]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_single_byte_flip_salvages_cleanly() {
        // Hostile-filesystem sweep: flip every byte of a small journal
        // (magic, length prefixes, CRCs, payloads — including a
        // HostileInput frame) one at a time. Every flip must replay as
        // a clean salvage of some prefix of the original frames; none
        // may panic, and no flipped frame may be served as valid data.
        let path = temp_journal("flip-sweep");
        let mut w = JournalWriter::create(&path).unwrap();
        let originals = [sample_frame(0), hostile_frame(1), shed_frame(2)];
        for frame in &originals {
            w.append(frame).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let pristine = std::fs::read(&path).unwrap();
        for pos in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
            let replayed = replay(&path);
            assert!(
                replayed.frames.len() <= originals.len(),
                "flip at {pos} grew the journal"
            );
            // Whatever survived must be an exact prefix of the original
            // frames: a flip can only shorten the salvage, never alter
            // or reorder what is served.
            for (got, want) in replayed.frames.iter().zip(&originals) {
                assert_eq!(got, want, "flip at {pos} corrupted a served frame");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_is_dropped() {
        let path = temp_journal("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        for id in 0..3 {
            w.append(&sample_frame(id)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        // Chop the file mid-way through the last frame.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let replayed = replay(&path);
        assert_eq!(replayed.frames.len(), 2);
        assert!(replayed.dropped_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_means_empty_journal() {
        let path = temp_journal("bad-magic");
        std::fs::write(&path, b"NOTAJRNLgarbage").unwrap();
        let replayed = replay(&path);
        assert!(replayed.frames.is_empty());
        assert_eq!(replayed.valid_len, 0);
        // open_append rewrites a fresh header over it.
        drop(JournalWriter::open_append(&path, 0, 16).unwrap());
        assert_eq!(std::fs::read(&path).unwrap(), MAGIC);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_journal() {
        let replayed = replay(Path::new("/nonexistent/journal.jrnl"));
        assert!(replayed.frames.is_empty());
        assert_eq!(replayed.valid_len, 0);
    }

    #[test]
    fn salvage_reconstructs_engine_output() {
        let frames = vec![sample_frame(3), sample_frame(1)];
        let replayed = Replay {
            frames,
            valid_len: 0,
            dropped_bytes: 0,
        };
        let out = replayed.into_engine_output();
        assert_eq!(out.stats.sessions, 2);
        assert_eq!(out.stats.events, 34);
        assert_eq!(out.stats.queries_logged, 2);
        assert_eq!(out.stats.virtual_ms, 604_800_036);
        assert_eq!(out.stats.faults.dns_dropped, 6);
        assert_eq!(out.records.len(), 2);
        // The salvaged log is canonical: sorted by (time_ms, session).
        assert_eq!(out.log.records[0].session, 1);
        assert_eq!(out.log.records[1].session, 3);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 test vectors ("check" values).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }
}
