//! Hostile-input classification and content synthesis.
//!
//! The payload fault layer ([`mailval_simnet::PayloadPlan`]) corrupts
//! wire bytes; the *consumers* — the DNS wire decoder, the SMTP reply
//! parser, the SPF evaluator — reject what they cannot parse. This
//! module maps each typed rejection onto the campaign-level
//! [`MalformedClass`] taxonomy (the injector never classifies: a
//! mutation that happens to survive a parser is not a rejection), and
//! synthesizes the content-level hostile answers (SPF include cycles,
//! CNAME self-chains) that byte-level mutation cannot express.

use mailval_dns::{Message, RData, Record, WireError};
use mailval_simnet::{DnsMutation, MalformedClass};
use mailval_smtp::reply::ReplyParseError;

/// Classify a DNS wire-decode rejection.
pub fn classify_wire(error: &WireError) -> MalformedClass {
    match error {
        WireError::Truncated => MalformedClass::DnsTruncatedFrame,
        WireError::BadPointer => MalformedClass::DnsBadPointer,
        WireError::BadLabel | WireError::NameTooLong | WireError::BadName => {
            MalformedClass::DnsBadLabel
        }
        WireError::BadRdataLength | WireError::TxtTooLong => MalformedClass::DnsBadRdata,
    }
}

/// Classify an SMTP reply-parse rejection.
pub fn classify_reply(error: &ReplyParseError) -> MalformedClass {
    match error {
        ReplyParseError::BadFormat => MalformedClass::SmtpBadCode,
        ReplyParseError::BadChar => MalformedClass::SmtpBadChar,
        ReplyParseError::LineTooLong => MalformedClass::SmtpLineTooLong,
        ReplyParseError::CodeMismatch | ReplyParseError::TooManyLines => {
            MalformedClass::SmtpBadContinuation
        }
    }
}

/// Synthesize a content-level hostile replacement for a well-formed DNS
/// response: the answer section is rewritten to a policy designed to
/// trap a naive evaluator in unbounded recursion. Returns `None` (leave
/// the response untouched) when the response does not decode or the
/// replacement cannot be encoded — synthesis must never be able to
/// break a session by itself.
///
/// * [`DnsMutation::SpfCycle`] — a TXT policy that includes the queried
///   name itself (`v=spf1 include:<qname> -all`): a self-cycle the SPF
///   evaluator must break with a deterministic `PermError`.
/// * [`DnsMutation::CnameChain`] — a CNAME pointing the queried name
///   back at itself, the classic alias loop.
pub fn synthesize_hostile_dns(response: &[u8], kind: DnsMutation) -> Option<Vec<u8>> {
    let mut msg = Message::from_bytes(response).ok()?;
    let qname = msg.question()?.name.clone();
    let answer = match kind {
        DnsMutation::SpfCycle => Record::new(
            qname.clone(),
            60,
            RData::txt_from_str(&format!("v=spf1 include:{qname} -all")),
        ),
        DnsMutation::CnameChain => Record::new(qname.clone(), 60, RData::Cname(qname)),
        _ => return None,
    };
    msg.answers = vec![answer];
    msg.authorities.clear();
    msg.additionals.clear();
    msg.try_to_bytes().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_dns::{Name, Rcode, RecordType};

    fn response(qname: &str) -> Vec<u8> {
        let query = Message::query(7, Name::parse(qname).expect("valid"), RecordType::Txt);
        Message::response_to(&query, Rcode::NoError).to_bytes()
    }

    #[test]
    fn every_wire_error_maps_to_a_dns_class() {
        use WireError::*;
        for e in [
            Truncated,
            BadPointer,
            BadLabel,
            NameTooLong,
            BadRdataLength,
            BadName,
            TxtTooLong,
        ] {
            let class = classify_wire(&e);
            assert!(class.label().starts_with("dns_"), "{e:?} → {class:?}");
        }
    }

    #[test]
    fn every_reply_error_maps_to_an_smtp_class() {
        use ReplyParseError::*;
        for e in [BadFormat, CodeMismatch, LineTooLong, TooManyLines, BadChar] {
            let class = classify_reply(&e);
            assert!(class.label().starts_with("smtp_"), "{e:?} → {class:?}");
        }
    }

    #[test]
    fn spf_cycle_synthesis_points_back_at_the_qname() {
        let bytes = response("victim.test");
        let hostile = synthesize_hostile_dns(&bytes, DnsMutation::SpfCycle).expect("synthesized");
        let msg = Message::from_bytes(&hostile).expect("well-formed");
        assert_eq!(msg.answers.len(), 1);
        let RData::Txt(chunks) = &msg.answers[0].rdata else {
            panic!("expected TXT");
        };
        let text: Vec<u8> = chunks.concat();
        let text = String::from_utf8(text).expect("utf8");
        assert_eq!(text, "v=spf1 include:victim.test -all");
    }

    #[test]
    fn cname_chain_synthesis_is_a_self_alias() {
        let bytes = response("victim.test");
        let hostile = synthesize_hostile_dns(&bytes, DnsMutation::CnameChain).expect("synthesized");
        let msg = Message::from_bytes(&hostile).expect("well-formed");
        assert_eq!(msg.answers.len(), 1);
        let RData::Cname(target) = &msg.answers[0].rdata else {
            panic!("expected CNAME");
        };
        assert_eq!(target, &msg.answers[0].name);
    }

    #[test]
    fn synthesis_refuses_garbage_and_byte_level_kinds() {
        assert!(synthesize_hostile_dns(&[0xFF; 5], DnsMutation::SpfCycle).is_none());
        let bytes = response("victim.test");
        assert!(synthesize_hostile_dns(&bytes, DnsMutation::BitFlip).is_none());
    }
}
