//! Content-addressed, durable storage for campaign results.
//!
//! The paper's tables and figures are all projections of a handful of
//! measurement campaigns; real studies therefore separate *collection*
//! from *analysis* so one expensive crawl can be re-analyzed many
//! times. This module gives the simulation the same run-once /
//! analyze-many shape: a completed [`CampaignResult`] is serialized to
//! one file under the store root, **keyed by a content hash of
//! everything that determines the result** — the [`CampaignConfig`]
//! (campaign kind, probe set, seed, pause, latency model, fault plan,
//! shard count, session budget), the dataset kind, the population
//! scale and seed, and the profile derivation. A stale file can never
//! serve wrong data: a config change produces a different hash (a
//! different file), and the stored header repeats the full hash so
//! even a filename collision is caught at load time.
//!
//! On-disk format, reusing the [`crate::journal`] framing (magic +
//! length-prefixed CRC-32 frames) and binary codec:
//!
//! ```text
//! file   := magic frames*
//! magic  := "MVALSTO1"                          (8 bytes)
//! frame  := len:u32le crc:u32le payload         (crc = CRC-32/IEEE)
//! payload:= tag:u8 body
//! tags   := 0 header   (key hash, label, totals, fault + shard stats)
//!           1 sessions (chunk of SessionRecords)
//!           2 queries  (chunk of QueryRecords, canonical order)
//!           3 end      (totals again; nothing may follow)
//! ```
//!
//! [`CampaignStore::load`] verifies the magic, every frame's CRC, the
//! header hash against the requested key, the chunk counts against the
//! header totals, and that the end frame is the last byte of the file.
//! **Any** mismatch — torn tail, bit flip, stale key, short write —
//! returns a [`StoreError`], and the caller falls back to re-running
//! the campaign; corruption is never a panic and never trusted data.
//!
//! All store IO goes through the [`crate::vfs`] seam, so the
//! deterministic IO fault layer ([`mailval_simnet::IoPlan`]) exercises
//! the same save/load paths production uses: a failed save degrades to
//! store-off behavior, a corrupted read is just another clean miss.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::apparatus::QueryLog;
use crate::campaign::{CampaignConfig, CampaignKind, CampaignResult};
use crate::journal::{self, crc32, Dec, Enc, FrameError};
use crate::shard::ShardStats;
use crate::vfs::{OsFs, Vfs};
use mailval_crypto::sha256::sha256;
use mailval_simnet::{FaultConfig, IoConfig, LatencyModel, PayloadConfig};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File magic: identifies a mailval campaign store entry, version 1.
pub const MAGIC: [u8; 8] = *b"MVALSTO1";
/// Records per sessions/queries chunk frame (bounds frame size so the
/// journal's torn-tail heuristics keep working on huge campaigns).
const CHUNK: usize = 4096;
/// Domain-separation prefix mixed into every content hash; bump the
/// version suffix when the key encoding changes shape (v2 added the
/// hostile-payload knobs; v3 added the IO fault plan, the memory
/// budget and the `resource_shed`/`durability_lost` entry codec).
const KEY_DOMAIN: &[u8] = b"mailval-campaign-key-v3";

const TAG_HEADER: u8 = 0;
const TAG_SESSIONS: u8 = 1;
const TAG_QUERIES: u8 = 2;
const TAG_END: u8 = 3;

// ---------------------------------------------------------------------------
// Content-addressed keys
// ---------------------------------------------------------------------------

/// Everything that determines a campaign's bytes, gathered for hashing.
///
/// The fields beyond `config` describe how the population and profiles
/// were derived (they are inputs to `run_campaign` but live outside
/// [`CampaignConfig`]): the dataset kind, its generation scale and
/// seed, and a label for the profile pipeline (`"base"`,
/// `"drift:0.05"`, `"providers"`, ...).
#[derive(Debug, Clone)]
pub struct KeySpec<'a> {
    /// The campaign configuration to fingerprint.
    pub config: &'a CampaignConfig,
    /// Dataset label (e.g. `"NotifyEmail"`, `"TwoWeekMx"`,
    /// `"providers"`).
    pub dataset: &'a str,
    /// Population scale relative to the paper (`MAILVAL_SCALE`).
    pub scale: f64,
    /// Population generation seed.
    pub population_seed: u64,
    /// Profile-derivation label.
    pub profiles: &'a str,
}

impl KeySpec<'_> {
    /// Compute the content-addressed key for this spec.
    ///
    /// Durability-only knobs (`journal_dir`, `resume`, `fsync_every`,
    /// `supervisor`) are deliberately excluded: they cannot change a
    /// completed campaign's output, only how it survives crashes.
    /// Everything else — including the shard count and the IO fault
    /// plan, which are output-invariant by construction but cheap to
    /// key on — is hashed, so changing any knob forces a re-run.
    pub fn key(&self) -> CampaignKey {
        let c = self.config;
        let mut enc = Enc::default();
        enc.0.extend_from_slice(KEY_DOMAIN);
        enc.u8(kind_tag(c.kind));
        enc.size(c.tests.len());
        for t in &c.tests {
            enc.str(t);
        }
        enc.u64(c.seed);
        enc.u64(c.probe_pause_ms);
        put_latency(&mut enc, &c.latency);
        put_fault_config(&mut enc, &c.faults);
        put_payload_config(&mut enc, &c.payload);
        put_io_config(&mut enc, &c.io);
        enc.size(c.shards);
        enc.u64(c.budget.max_virtual_ms);
        enc.u64(c.budget.max_events);
        enc.u64(c.memory.max_session_bytes);
        enc.u64(c.memory.max_pending_events);
        enc.str(self.dataset);
        enc.f64(self.scale);
        enc.u64(self.population_seed);
        enc.str(self.profiles);
        CampaignKey {
            hash: sha256(&enc.0),
            label: format!(
                "{}/{:?}/tests={}/profiles={}",
                self.dataset,
                c.kind,
                if c.tests.is_empty() {
                    "-".to_string()
                } else {
                    c.tests.join("+")
                },
                self.profiles
            ),
        }
    }
}

fn kind_tag(kind: CampaignKind) -> u8 {
    match kind {
        CampaignKind::NotifyEmail => 0,
        CampaignKind::NotifyMx => 1,
        CampaignKind::TwoWeekMx => 2,
    }
}

fn put_latency(enc: &mut Enc, l: &LatencyModel) {
    enc.u64(l.base_one_way_ms);
    enc.u64(l.spread_ms);
    enc.f64(l.loss_probability);
    enc.u64(l.seed);
}

fn put_payload_config(enc: &mut Enc, p: &PayloadConfig) {
    enc.f64(p.dns_corrupt_probability);
    enc.f64(p.smtp_corrupt_probability);
    enc.u64(p.seed);
}

fn put_io_config(enc: &mut Enc, io: &IoConfig) {
    enc.u64(io.enospc_after_bytes);
    enc.f64(io.short_write_probability);
    enc.f64(io.fsync_fail_probability);
    enc.f64(io.rename_fail_probability);
    enc.f64(io.read_corrupt_probability);
    enc.u64(io.seed);
}

fn put_fault_config(enc: &mut Enc, f: &FaultConfig) {
    enc.f64(f.duplicate_probability);
    enc.f64(f.reorder_probability);
    enc.u64(f.reorder_delay_ms);
    enc.f64(f.truncate_probability);
    enc.f64(f.conn_reset_probability);
    enc.f64(f.conn_stall_probability);
    enc.u64(f.conn_stall_ms);
    enc.u64(f.seed);
    enc.u64(f.crash_after_sessions);
}

/// A campaign's content-addressed identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignKey {
    /// SHA-256 over the canonical encoding of every result-determining
    /// knob.
    pub hash: [u8; 32],
    /// Human-readable description for progress lines and diagnostics
    /// (not part of the identity).
    pub label: String,
}

impl CampaignKey {
    /// The short hex form used in filenames and progress lines.
    pub fn short_hex(&self) -> String {
        self.hash[..8].iter().map(|b| format!("{b:02x}")).collect()
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a store entry could not be served. Every variant is a clean
/// miss: the caller re-runs the campaign and overwrites the entry.
#[derive(Debug)]
pub enum StoreError {
    /// No entry file for this key.
    Missing,
    /// The file exists but is not a version-1 store entry.
    BadMagic,
    /// A frame was torn, its CRC failed, or bytes trail the end frame.
    Corrupt(&'static str),
    /// A frame payload failed to decode.
    Frame(FrameError),
    /// The entry's stored hash is not the requested key (stale config
    /// or filename collision).
    KeyMismatch,
    /// The entry decoded but its totals disagree with its chunks.
    CountMismatch,
    /// Underlying I/O failure while reading.
    Io(io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Missing => write!(f, "no store entry"),
            StoreError::BadMagic => write!(f, "bad store magic"),
            StoreError::Corrupt(what) => write!(f, "corrupt entry: {what}"),
            StoreError::Frame(e) => write!(f, "undecodable frame: {e}"),
            StoreError::KeyMismatch => write!(f, "stale entry (key mismatch)"),
            StoreError::CountMismatch => write!(f, "entry totals disagree with chunks"),
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<FrameError> for StoreError {
    fn from(e: FrameError) -> Self {
        StoreError::Frame(e)
    }
}

/// How a stored-campaign request was satisfied (surfaced in progress
/// lines and counted by the store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreStatus {
    /// Served from disk.
    Hit,
    /// Simulated (and persisted); the payload says why the entry could
    /// not be served (`"cold"` for a simply-missing entry).
    Miss(String),
    /// No store configured; simulated without persistence.
    Off,
}

impl StoreStatus {
    /// `true` when the campaign had to be simulated.
    pub fn simulated(&self) -> bool {
        !matches!(self, StoreStatus::Hit)
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// A directory of content-addressed campaign results.
pub struct CampaignStore {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CampaignStore {
    /// Open (lazily — the directory is created on first save) a store
    /// rooted at `root`, on the real filesystem.
    pub fn new(root: impl Into<PathBuf>) -> CampaignStore {
        CampaignStore::new_with_vfs(root, Arc::new(OsFs))
    }

    /// Open a store whose every IO operation goes through `vfs` (the
    /// fault-injection seam). Opening sweeps orphaned `*.camp.tmp`
    /// files — the residue of saves that died between write and rename
    /// — so a crashed run can never accumulate junk.
    pub fn new_with_vfs(root: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> CampaignStore {
        let store = CampaignStore {
            root: root.into(),
            vfs,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        };
        store.sweep_orphans();
        store
    }

    /// Remove leftover temporary entries under the root. Best-effort:
    /// a sweep failure (missing root, unremovable file) costs nothing
    /// but disk — every load path already ignores `.camp.tmp` files.
    fn sweep_orphans(&self) {
        let Ok(entries) = self.vfs.list_dir(&self.root) else {
            return;
        };
        for path in entries {
            let is_orphan = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".camp.tmp"));
            if is_orphan {
                match self.vfs.remove_file(&path) {
                    Ok(()) => crate::progress!("store: swept orphan {}", path.display()),
                    Err(e) => {
                        crate::progress!("store: could not sweep orphan {}: {e}", path.display())
                    }
                }
            }
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Entry filename for a key: the first 16 hash bytes, hex.
    pub fn path_for(&self, key: &CampaignKey) -> PathBuf {
        let hex: String = key.hash[..16].iter().map(|b| format!("{b:02x}")).collect();
        self.root.join(format!("{hex}.camp"))
    }

    /// Loads served since this store was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Failed loads (any [`StoreError`]) since this store was opened.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Load the result stored for `key`, verifying framing, checksums,
    /// the embedded key hash and the totals. Every failure is a clean
    /// [`StoreError`] — the caller re-runs the campaign.
    pub fn load(&self, key: &CampaignKey) -> Result<CampaignResult, StoreError> {
        let result = self.load_inner(key);
        match &result {
            Ok(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn load_inner(&self, key: &CampaignKey) -> Result<CampaignResult, StoreError> {
        let path = self.path_for(key);
        let data = match self.vfs.read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::Missing),
            Err(e) => return Err(StoreError::Io(e)),
        };
        decode_entry(&data, key)
    }

    /// Persist `result` under `key`. The entry is written to a
    /// temporary sibling and renamed into place, so a crash mid-save
    /// leaves either the old entry or none — never a torn one at the
    /// final path. A failed rename removes the temporary before
    /// reporting the error, so a fault-heavy run leaves no residue.
    pub fn save(&self, key: &CampaignKey, result: &CampaignResult) -> io::Result<PathBuf> {
        self.vfs.create_dir_all(&self.root)?;
        let path = self.path_for(key);
        let tmp = path.with_extension("camp.tmp");
        let bytes = encode_entry(key, result);
        let write = (|| -> io::Result<()> {
            let mut file = self.vfs.open_write(&tmp, true)?;
            file.write_all(&bytes)?;
            file.sync_data()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = self.vfs.rename(&tmp, &path) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        Ok(path)
    }
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn put_shard_stats(enc: &mut Enc, s: &ShardStats) {
    enc.size(s.shard);
    enc.size(s.sessions);
    enc.u64(s.events);
    enc.u64(s.queries_logged);
    enc.u64(s.virtual_ms);
    enc.f64(s.wall_ms);
    journal::put_faults_v3(enc, &s.faults);
    enc.u32(s.restarts);
    enc.boolean(s.durability_lost);
}

fn get_shard_stats(dec: &mut Dec<'_>) -> Result<ShardStats, FrameError> {
    Ok(ShardStats {
        shard: dec.size()?,
        sessions: dec.size()?,
        events: dec.u64()?,
        queries_logged: dec.u64()?,
        virtual_ms: dec.u64()?,
        wall_ms: dec.f64()?,
        faults: journal::get_faults_v3(dec)?,
        restarts: dec.u32()?,
        durability_lost: dec.boolean()?,
    })
}

/// Serialize a complete store entry (magic + all frames).
pub fn encode_entry(key: &CampaignKey, result: &CampaignResult) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);

    // Header frame.
    let mut enc = Enc::default();
    enc.u8(TAG_HEADER);
    enc.0.extend_from_slice(&key.hash);
    enc.str(&key.label);
    enc.size(result.sessions.len());
    enc.size(result.log.records.len());
    enc.u64(result.events);
    enc.boolean(result.partial);
    journal::put_faults_v3(&mut enc, &result.faults);
    enc.size(result.shard_stats.len());
    for s in &result.shard_stats {
        put_shard_stats(&mut enc, s);
    }
    push_frame(&mut out, &enc.0);

    // Session chunks, in global session order.
    for chunk in result.sessions.chunks(CHUNK) {
        let mut enc = Enc::default();
        enc.u8(TAG_SESSIONS);
        enc.u32(chunk.len() as u32);
        for record in chunk {
            journal::put_record(&mut enc, record);
        }
        push_frame(&mut out, &enc.0);
    }

    // Query chunks, in the log's canonical order.
    for chunk in result.log.records.chunks(CHUNK) {
        let mut enc = Enc::default();
        enc.u8(TAG_QUERIES);
        enc.u32(chunk.len() as u32);
        for query in chunk {
            journal::put_query(&mut enc, query);
        }
        push_frame(&mut out, &enc.0);
    }

    // End frame: repeat the totals so a truncated chunk sequence that
    // still frames cleanly is caught by the count check.
    let mut enc = Enc::default();
    enc.u8(TAG_END);
    enc.size(result.sessions.len());
    enc.size(result.log.records.len());
    push_frame(&mut out, &enc.0);
    out
}

/// Decode and verify a complete store entry against `key`.
pub fn decode_entry(data: &[u8], key: &CampaignKey) -> Result<CampaignResult, StoreError> {
    if data.len() < MAGIC.len() || data[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }

    // Walk the frames, verifying length and CRC before touching any
    // payload.
    let mut payloads: Vec<&[u8]> = Vec::new();
    let mut pos = MAGIC.len();
    while pos < data.len() {
        let header = data
            .get(pos..pos + 8)
            .ok_or(StoreError::Corrupt("torn frame header"))?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let payload = data
            .get(pos + 8..pos + 8 + len)
            .ok_or(StoreError::Corrupt("torn frame payload"))?;
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt("frame checksum mismatch"));
        }
        payloads.push(payload);
        pos += 8 + len;
    }

    // Header first, end last, nothing after the end frame (the loop
    // above already guarantees nothing trails the last frame).
    let mut iter = payloads.into_iter();
    let header = iter.next().ok_or(StoreError::Corrupt("no header frame"))?;
    let mut dec = Dec::new(header);
    if dec.u8()? != TAG_HEADER {
        return Err(StoreError::Corrupt("first frame is not the header"));
    }
    let mut stored_hash = [0u8; 32];
    for byte in &mut stored_hash {
        *byte = dec.u8()?;
    }
    if stored_hash != key.hash {
        return Err(StoreError::KeyMismatch);
    }
    let _label = dec.str()?;
    let nsessions = dec.size()?;
    let nqueries = dec.size()?;
    let events = dec.u64()?;
    let partial = dec.boolean()?;
    let faults = journal::get_faults_v3(&mut dec)?;
    let nshards = dec.size()?;
    if nshards > 1 << 20 {
        return Err(StoreError::Corrupt("implausible shard count"));
    }
    let mut shard_stats = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        shard_stats.push(get_shard_stats(&mut dec)?);
    }
    dec.finished()?;

    let mut sessions = Vec::with_capacity(nsessions.min(1 << 24));
    let mut log = QueryLog::new();
    let mut saw_end = false;
    for payload in iter {
        if saw_end {
            return Err(StoreError::Corrupt("frame after end frame"));
        }
        let mut dec = Dec::new(payload);
        match dec.u8()? {
            TAG_SESSIONS => {
                let n = dec.u32()? as usize;
                for _ in 0..n {
                    sessions.push(journal::get_record(&mut dec)?);
                }
                dec.finished()?;
            }
            TAG_QUERIES => {
                let n = dec.u32()? as usize;
                for _ in 0..n {
                    log.records.push(journal::get_query(&mut dec)?);
                }
                dec.finished()?;
            }
            TAG_END => {
                let end_sessions = dec.size()?;
                let end_queries = dec.size()?;
                dec.finished()?;
                if end_sessions != nsessions || end_queries != nqueries {
                    return Err(StoreError::CountMismatch);
                }
                saw_end = true;
            }
            TAG_HEADER => return Err(StoreError::Corrupt("duplicate header frame")),
            _ => return Err(StoreError::Frame(FrameError::BadTag)),
        }
    }
    if !saw_end {
        return Err(StoreError::Corrupt("missing end frame"));
    }
    if sessions.len() != nsessions || log.records.len() != nqueries {
        return Err(StoreError::CountMismatch);
    }

    // The log was stored canonical; re-sorting is an idempotent
    // belt-and-suspenders (stable sort, same key).
    log.sort_canonical();
    Ok(CampaignResult {
        log,
        sessions,
        events,
        faults,
        shard_stats,
        partial,
        // Phase timings and telemetry are observability about the
        // producing run, not campaign output; a store hit costs no
        // setup or simulation and carries no trace.
        phases: crate::campaign::PhaseTimes::default(),
        telemetry: None,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, sample_host_profiles};
    use crate::vfs::SimFs;
    use mailval_datasets::{DatasetKind, Population, PopulationConfig};
    use mailval_simnet::IoPlan;

    fn tiny_result(seed: u64) -> (CampaignConfig, Population, CampaignResult) {
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::NotifyEmail,
            scale: 0.002,
            seed,
        });
        let profiles = sample_host_profiles(&pop, seed);
        let config = CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            seed,
            probe_pause_ms: 0,
            shards: 2,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&config, &pop, &profiles);
        (config, pop, result)
    }

    fn spec<'a>(config: &'a CampaignConfig, seed: u64) -> KeySpec<'a> {
        KeySpec {
            config,
            dataset: "NotifyEmail",
            scale: 0.002,
            population_seed: seed,
            profiles: "base",
        }
    }

    fn temp_store(name: &str) -> CampaignStore {
        let dir =
            std::env::temp_dir().join(format!("mailval-store-tests-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CampaignStore::new(dir)
    }

    fn assert_results_equal(a: &CampaignResult, b: &CampaignResult) {
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.log.records, b.log.records);
        assert_eq!(a.events, b.events);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.partial, b.partial);
        assert_eq!(a.shard_stats.len(), b.shard_stats.len());
        for (x, y) in a.shard_stats.iter().zip(&b.shard_stats) {
            assert_eq!(x.shard, y.shard);
            assert_eq!(x.sessions, y.sessions);
            assert_eq!(x.events, y.events);
            assert_eq!(x.queries_logged, y.queries_logged);
            assert_eq!(x.virtual_ms, y.virtual_ms);
            assert_eq!(x.wall_ms.to_bits(), y.wall_ms.to_bits());
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.restarts, y.restarts);
            assert_eq!(x.durability_lost, y.durability_lost);
        }
    }

    #[test]
    fn save_load_roundtrips_byte_identically() {
        let (config, _pop, result) = tiny_result(41);
        let store = temp_store("roundtrip");
        let key = spec(&config, 41).key();
        let path = store.save(&key, &result).unwrap();
        // The file is deterministic: re-encoding yields the same bytes.
        assert_eq!(std::fs::read(&path).unwrap(), encode_entry(&key, &result));
        let loaded = store.load(&key).unwrap();
        assert_results_equal(&loaded, &result);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_entry_is_a_clean_miss() {
        let (config, ..) = tiny_result(43);
        let store = temp_store("missing");
        let err = store.load(&spec(&config, 43).key()).unwrap_err();
        assert!(matches!(err, StoreError::Missing));
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn truncated_tail_is_rejected_never_a_panic() {
        let (config, _pop, result) = tiny_result(47);
        let store = temp_store("truncated");
        let key = spec(&config, 47).key();
        let path = store.save(&key, &result).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Every possible truncation point must fail cleanly.
        for cut in [
            0,
            4,
            MAGIC.len(),
            MAGIC.len() + 3,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                store.load(&key).is_err(),
                "cut at {cut} must not load as valid"
            );
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn bit_flipped_frame_is_rejected() {
        let (config, _pop, result) = tiny_result(53);
        let store = temp_store("bitflip");
        let key = spec(&config, 53).key();
        let path = store.save(&key, &result).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of positions (header, middle, tail).
        for at in [9, clean.len() / 3, clean.len() / 2, clean.len() - 2] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            assert!(store.load(&key).is_err(), "flip at {at} must be rejected");
        }
        // Trailing garbage after the end frame is also rejected.
        let mut bytes = clean.clone();
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key).is_err());
        // And the pristine bytes still load.
        std::fs::write(&path, &clean).unwrap();
        assert!(store.load(&key).is_ok());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn every_single_byte_flip_is_rejected_never_a_panic() {
        let (config, _pop, mut result) = tiny_result(59);
        // Keep the entry small so the exhaustive byte sweep stays fast; the
        // header counts are derived from the vectors at save time, so a
        // truncated result is still a perfectly well-formed entry.
        result.sessions.truncate(2);
        result.log.records.truncate(2);
        let store = temp_store("flipsweep");
        let key = spec(&config, 59).key();
        let path = store.save(&key, &result).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Exhaustive: a hostile byte anywhere in the entry must yield a clean
        // error, never a panic and never a silently different result.
        for at in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert!(store.load(&key).is_err(), "flip at {at} must be rejected");
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(store.load(&key).is_ok());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_key_is_rejected_at_load() {
        let (config, _pop, result) = tiny_result(59);
        let store = temp_store("stale");
        let key = spec(&config, 59).key();
        store.save(&key, &result).unwrap();
        // Same file, different expected key: refuse to serve.
        let mut other = key.clone();
        other.hash[0] ^= 1;
        std::fs::rename(store.path_for(&key), store.path_for(&other)).unwrap();
        let err = store.load(&other).unwrap_err();
        assert!(matches!(err, StoreError::KeyMismatch));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn every_result_determining_knob_changes_the_hash() {
        let base_config = CampaignConfig {
            kind: CampaignKind::TwoWeekMx,
            tests: vec!["t01", "t06"],
            seed: 2021,
            shards: 4,
            ..CampaignConfig::default()
        };
        let base = KeySpec {
            config: &base_config,
            dataset: "TwoWeekMx",
            scale: 1.0,
            population_seed: 2021,
            profiles: "base",
        };
        let base_hash = base.key().hash;
        let changed = |config: &CampaignConfig| KeySpec { config, ..base }.key().hash;

        // Campaign seed.
        let mut c = base_config.clone();
        c.seed = 2022;
        assert_ne!(changed(&c), base_hash, "seed must invalidate");
        // Scale (MAILVAL_SCALE).
        assert_ne!(
            KeySpec { scale: 0.5, ..base }.key().hash,
            base_hash,
            "scale must invalidate"
        );
        // Shard count.
        let mut c = base_config.clone();
        c.shards = 8;
        assert_ne!(changed(&c), base_hash, "shard count must invalidate");
        // Fault plan (each class of knob).
        let mut c = base_config.clone();
        c.faults.duplicate_probability = 0.01;
        assert_ne!(changed(&c), base_hash, "fault probability must invalidate");
        let mut c = base_config.clone();
        c.faults.seed = 7;
        assert_ne!(changed(&c), base_hash, "fault seed must invalidate");
        let mut c = base_config.clone();
        c.faults.crash_after_sessions = 10;
        assert_ne!(changed(&c), base_hash, "crash injection must invalidate");
        let mut c = base_config.clone();
        c.latency.loss_probability = 0.05;
        assert_ne!(changed(&c), base_hash, "loss probability must invalidate");
        // Probe set: membership and order.
        let mut c = base_config.clone();
        c.tests = vec!["t01"];
        assert_ne!(changed(&c), base_hash, "probe set must invalidate");
        let mut c = base_config.clone();
        c.tests = vec!["t06", "t01"];
        assert_ne!(changed(&c), base_hash, "probe order must invalidate");
        // Population inputs.
        assert_ne!(
            KeySpec {
                population_seed: 1,
                ..base
            }
            .key()
            .hash,
            base_hash,
            "population seed must invalidate"
        );
        assert_ne!(
            KeySpec {
                dataset: "NotifyEmail",
                ..base
            }
            .key()
            .hash,
            base_hash,
            "dataset must invalidate"
        );
        assert_ne!(
            KeySpec {
                profiles: "drift:0.05",
                ..base
            }
            .key()
            .hash,
            base_hash,
            "profile derivation must invalidate"
        );
        // Session budget.
        let mut c = base_config.clone();
        c.budget.max_events = 10;
        assert_ne!(changed(&c), base_hash, "session budget must invalidate");
        // Hostile-payload knobs are result-determining.
        let mut c = base_config.clone();
        c.payload.dns_corrupt_probability = 0.1;
        assert_ne!(changed(&c), base_hash, "dns payload knob must invalidate");
        let mut c = base_config.clone();
        c.payload.smtp_corrupt_probability = 0.1;
        assert_ne!(changed(&c), base_hash, "smtp payload knob must invalidate");
        let mut c = base_config.clone();
        c.payload.seed = 99;
        assert_ne!(changed(&c), base_hash, "payload seed must invalidate");
        // IO fault plan (output-invariant by construction, but keyed
        // conservatively like the shard count).
        let mut c = base_config.clone();
        c.io.enospc_after_bytes = 4096;
        assert_ne!(changed(&c), base_hash, "io capacity must invalidate");
        let mut c = base_config.clone();
        c.io.short_write_probability = 0.1;
        assert_ne!(changed(&c), base_hash, "short-write knob must invalidate");
        let mut c = base_config.clone();
        c.io.read_corrupt_probability = 0.1;
        assert_ne!(changed(&c), base_hash, "read-corrupt knob must invalidate");
        let mut c = base_config.clone();
        c.io.seed = 77;
        assert_ne!(changed(&c), base_hash, "io seed must invalidate");
        // Memory backpressure budget is result-determining.
        let mut c = base_config.clone();
        c.memory.max_session_bytes = 1 << 20;
        assert_ne!(changed(&c), base_hash, "memory byte budget must invalidate");
        let mut c = base_config.clone();
        c.memory.max_pending_events = 64;
        assert_ne!(
            changed(&c),
            base_hash,
            "memory event budget must invalidate"
        );

        // Durability knobs must NOT invalidate: they cannot change the
        // output, only how it survives crashes.
        let mut c = base_config.clone();
        c.journal_dir = Some(PathBuf::from("/tmp/somewhere"));
        c.resume = true;
        c.fsync_every = 1;
        c.supervisor.max_shard_restarts = 9;
        assert_eq!(changed(&c), base_hash, "durability knobs must not key");
    }

    #[test]
    fn probe_campaign_roundtrips_with_attributions() {
        // Probe campaigns exercise the full record shape: testids,
        // rejections, attributed queries with paths.
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::TwoWeekMx,
            scale: 0.002,
            seed: 61,
        });
        let profiles = sample_host_profiles(&pop, 61);
        let config = CampaignConfig {
            kind: CampaignKind::TwoWeekMx,
            tests: vec!["t01", "t12"],
            seed: 61,
            probe_pause_ms: 15_000,
            shards: 3,
            ..CampaignConfig::default()
        };
        let result = run_campaign(&config, &pop, &profiles);
        assert!(result.log.records.iter().any(|r| r.attribution.is_some()));
        let store = temp_store("probe");
        let key = KeySpec {
            config: &config,
            dataset: "TwoWeekMx",
            scale: 0.002,
            population_seed: 61,
            profiles: "base",
        }
        .key();
        store.save(&key, &result).unwrap();
        let loaded = store.load(&key).unwrap();
        assert_results_equal(&loaded, &result);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn opening_a_store_sweeps_orphaned_tmp_files() {
        let (config, _pop, result) = tiny_result(67);
        let store = temp_store("orphans");
        let key = spec(&config, 67).key();
        store.save(&key, &result).unwrap();
        // Plant the residue of a save that died between write and
        // rename, plus a bystander that must survive the sweep.
        let orphan = store.root().join("deadbeefdeadbeef.camp.tmp");
        let bystander = store.root().join("notes.txt");
        std::fs::write(&orphan, b"torn half-save").unwrap();
        std::fs::write(&bystander, b"keep me").unwrap();
        let reopened = CampaignStore::new(store.root());
        assert!(!orphan.exists(), "orphan tmp must be swept on open");
        assert!(bystander.exists(), "sweep must only touch *.camp.tmp");
        assert!(
            store.path_for(&key).exists(),
            "sweep must not touch completed entries"
        );
        assert_results_equal(&reopened.load(&key).unwrap(), &result);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn read_corruption_through_simfs_is_a_clean_miss() {
        // Load the same entry through a SimFs that corrupts one byte of
        // every read: the production load path must classify each
        // corrupted image as a StoreError, never panic, and never serve
        // it as data. (The exhaustive positional sweep lives in
        // `every_single_byte_flip_is_rejected_never_a_panic`; this pins
        // the same property through the IO fault seam itself.)
        let (config, _pop, mut result) = tiny_result(71);
        result.sessions.truncate(4);
        result.log.records.truncate(4);
        let store = temp_store("simfs-miss");
        let key = spec(&config, 71).key();
        store.save(&key, &result).unwrap();
        let faulty = CampaignStore::new_with_vfs(
            store.root(),
            Arc::new(SimFs::new(IoPlan::new(IoConfig {
                read_corrupt_probability: 1.0,
                seed: 0x10_FA11,
                ..IoConfig::default()
            }))),
        );
        let mut rejected = 0;
        for _ in 0..64 {
            match faulty.load(&key) {
                Err(StoreError::Missing) => panic!("entry exists; corruption must not hide it"),
                Err(_) => rejected += 1,
                // The flipped byte can land in the ignored label text;
                // a lucky load is allowed, silent corruption is not.
                Ok(loaded) => assert_results_equal(&loaded, &result),
            }
        }
        assert!(rejected > 32, "only {rejected}/64 corrupted reads rejected");
        // The pristine path still serves the entry.
        assert_results_equal(&store.load(&key).unwrap(), &result);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
