//! Validator fingerprinting — the paper's proposed future work (§8):
//! "the collective set of behaviors might be used to classify and even
//! fingerprint an SPF validator implementation, to learn how many
//! distinct implementations are deployed."
//!
//! Each MTA's outcomes across the behavior tests form a feature vector;
//! identical vectors are grouped into implementation classes.

use crate::apparatus::QueryLog;
use mailval_dns::rr::RecordType;
use mailval_dns::server::Transport;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The behavior feature vector of one MTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BehaviorVector {
    /// §7.1: parallel lookups (t01).
    pub parallel: Option<bool>,
    /// Fig. 5 bucket: 0 = stops <10, 1 = intermediate, 2 = all 46 (t02).
    pub limit_bucket: Option<u8>,
    /// Checked the HELO policy (t03).
    pub helo_check: Option<bool>,
    /// Continued past a main-policy syntax error (t04).
    pub syntax_lenient: Option<bool>,
    /// Continued past a child permerror (t05).
    pub child_lenient: Option<bool>,
    /// Void-lookup bucket: 0 = ≤2, 1 = 3–4, 2 = all 5 (t06).
    pub void_bucket: Option<u8>,
    /// Performed the forbidden mx fallback (t07).
    pub mx_fallback: Option<bool>,
    /// Followed one of multiple records (t08).
    pub multi_follow: Option<bool>,
    /// Fell back to TCP (t09).
    pub tcp: Option<bool>,
    /// Retrieved the IPv6-only policy (t10).
    pub ipv6: Option<bool>,
}

/// One fingerprint class: a distinct vector and the MTAs exhibiting it.
#[derive(Debug, Clone)]
pub struct FingerprintClass {
    /// The shared behavior vector.
    pub vector: BehaviorVector,
    /// Host indices in this class.
    pub hosts: Vec<usize>,
}

/// Extract behavior vectors from a probe campaign's log.
pub fn behavior_vectors(log: &QueryLog) -> HashMap<usize, BehaviorVector> {
    let mut vectors: HashMap<usize, BehaviorVector> = HashMap::new();
    let ensure = |h: usize, vectors: &mut HashMap<usize, BehaviorVector>| {
        vectors.entry(h).or_insert(BehaviorVector {
            parallel: None,
            limit_bucket: None,
            helo_check: None,
            syntax_lenient: None,
            child_lenient: None,
            void_bucket: None,
            mx_fallback: None,
            multi_follow: None,
            tcp: None,
            ipv6: None,
        });
    };

    // Collect per-test intermediate state.
    #[derive(Default)]
    struct Scratch {
        t01_foo: Option<u64>,
        t01_l3: Option<u64>,
        t02_count: u32,
        t02_seen: bool,
        t03_base: bool,
        t03_helo: bool,
        t04_base: bool,
        t04_after: bool,
        t05_child: bool,
        t05_after: bool,
        t06_base: bool,
        t06_voids: u32,
        t07_base: bool,
        t07_fallback: bool,
        t08_base: bool,
        t08_follow: bool,
        t09_udp: bool,
        t09_tcp: bool,
        t10_base: bool,
        t10_v6: bool,
    }
    let mut scratch: HashMap<usize, Scratch> = HashMap::new();

    for r in &log.records {
        let Some(attr) = &r.attribution else { continue };
        let (Some(testid), Some(h)) = (attr.testid.as_deref(), attr.host_index) else {
            continue;
        };
        let s = scratch.entry(h).or_default();
        let p0 = attr.path.first().map(|x| x.as_str());
        let base = attr.path.is_empty() && r.qtype == RecordType::Txt;
        match testid {
            "t01" => match p0 {
                Some("foo") => {
                    s.t01_foo.get_or_insert(r.time_ms);
                }
                Some("l3") => {
                    s.t01_l3.get_or_insert(r.time_ms);
                }
                _ => {}
            },
            "t02" => {
                if base {
                    s.t02_seen = true;
                } else if !(attr.path.len() == 1 && attr.path[0] == "h") {
                    s.t02_count += 1;
                }
            }
            "t03" => {
                if base {
                    s.t03_base = true;
                }
                if p0 == Some("h") {
                    s.t03_helo = true;
                }
            }
            "t04" => {
                if base {
                    s.t04_base = true;
                }
                if p0 == Some("after") {
                    s.t04_after = true;
                }
            }
            "t05" => {
                if p0 == Some("child") {
                    s.t05_child = true;
                }
                if p0 == Some("after") {
                    s.t05_after = true;
                }
            }
            "t06" => {
                if base {
                    s.t06_base = true;
                } else if p0.is_some_and(|x| x.starts_with('v')) {
                    s.t06_voids += 1;
                }
            }
            "t07" => {
                if base {
                    s.t07_base = true;
                }
                if p0 == Some("gone") && r.qtype != RecordType::Mx {
                    s.t07_fallback = true;
                }
            }
            "t08" => {
                if base {
                    s.t08_base = true;
                }
                if matches!(p0, Some("one") | Some("two")) {
                    s.t08_follow = true;
                }
            }
            "t09" => {
                if base && r.transport == Transport::Udp {
                    s.t09_udp = true;
                }
                if base && r.transport == Transport::Tcp {
                    s.t09_tcp = true;
                }
            }
            "t10" => {
                if base {
                    s.t10_base = true;
                }
                if p0 == Some("p") {
                    s.t10_v6 = true;
                }
            }
            _ => {}
        }
    }

    for (h, s) in scratch {
        ensure(h, &mut vectors);
        let v = vectors.get_mut(&h).expect("just inserted");
        if let (Some(foo_ms), Some(l3)) = (s.t01_foo, s.t01_l3) {
            v.parallel = Some(foo_ms < l3);
        }
        if s.t02_seen {
            v.limit_bucket = Some(match s.t02_count {
                c if c <= 10 => 0,
                c if c >= 46 => 2,
                _ => 1,
            });
        }
        if s.t03_base {
            v.helo_check = Some(s.t03_helo);
        }
        if s.t04_base {
            v.syntax_lenient = Some(s.t04_after);
        }
        if s.t05_child {
            v.child_lenient = Some(s.t05_after);
        }
        if s.t06_base {
            v.void_bucket = Some(match s.t06_voids {
                c if c <= 2 => 0,
                c if c >= 5 => 2,
                _ => 1,
            });
        }
        if s.t07_base {
            v.mx_fallback = Some(s.t07_fallback);
        }
        if s.t08_base {
            v.multi_follow = Some(s.t08_follow);
        }
        if s.t09_udp {
            v.tcp = Some(s.t09_tcp);
        }
        if s.t10_base {
            v.ipv6 = Some(s.t10_v6);
        }
    }
    vectors
}

/// Group MTAs into implementation classes by exact vector equality,
/// largest class first.
pub fn classify(vectors: &HashMap<usize, BehaviorVector>) -> Vec<FingerprintClass> {
    let mut groups: BTreeMap<BehaviorVector, Vec<usize>> = BTreeMap::new();
    for (&h, &v) in vectors {
        groups.entry(v).or_default().push(h);
    }
    let mut classes: Vec<FingerprintClass> = groups
        .into_iter()
        .map(|(vector, mut hosts)| {
            hosts.sort_unstable();
            FingerprintClass { vector, hosts }
        })
        .collect();
    classes.sort_by_key(|c| std::cmp::Reverse(c.hosts.len()));
    classes
}

/// Summary stats over a classification.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintSummary {
    /// Fingerprinted MTAs.
    pub mtas: usize,
    /// Distinct behavior classes.
    pub classes: usize,
    /// Size of the largest class.
    pub largest: usize,
    /// Classes with a single member.
    pub singletons: usize,
}

/// Summarize a classification.
pub fn summarize(classes: &[FingerprintClass]) -> FingerprintSummary {
    FingerprintSummary {
        mtas: classes.iter().map(|c| c.hosts.len()).sum(),
        classes: classes.len(),
        largest: classes.first().map(|c| c.hosts.len()).unwrap_or(0),
        singletons: classes.iter().filter(|c| c.hosts.len() == 1).count(),
    }
}

/// Hosts whose vectors are fully populated (every probe test answered).
pub fn fully_observed(vectors: &HashMap<usize, BehaviorVector>) -> HashSet<usize> {
    vectors
        .iter()
        .filter(|(_, v)| {
            v.parallel.is_some()
                && v.limit_bucket.is_some()
                && v.helo_check.is_some()
                && v.syntax_lenient.is_some()
                && v.void_bucket.is_some()
        })
        .map(|(&h, _)| h)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, sample_host_profiles, CampaignConfig, CampaignKind};
    use mailval_datasets::{DatasetKind, Population, PopulationConfig};
    use mailval_simnet::LatencyModel;

    #[test]
    fn fingerprints_cluster_mtas() {
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::TwoWeekMx,
            scale: 0.015,
            seed: 31,
        });
        let profiles = sample_host_profiles(&pop, 31);
        let result = run_campaign(
            &CampaignConfig {
                kind: CampaignKind::TwoWeekMx,
                tests: vec![
                    "t01", "t02", "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10",
                ],
                seed: 31,
                probe_pause_ms: 15_000,
                latency: LatencyModel::default(),
                shards: 1,
                faults: mailval_simnet::FaultConfig::default(),
                ..CampaignConfig::default()
            },
            &pop,
            &profiles,
        );
        let vectors = behavior_vectors(&result.log);
        assert!(!vectors.is_empty());
        let classes = classify(&vectors);
        let summary = summarize(&classes);
        assert_eq!(summary.mtas, vectors.len());
        assert!(summary.classes >= 2, "expect behavioral diversity");
        assert!(summary.largest >= 1);
        // Among classified validators, the serial mainstream dominates
        // (§7.1: 97%).
        let serial = vectors
            .values()
            .filter(|v| v.parallel == Some(false))
            .count();
        let parallel = vectors
            .values()
            .filter(|v| v.parallel == Some(true))
            .count();
        assert!(serial > parallel, "serial {serial} vs parallel {parallel}");
    }
}
