//! Deterministic telemetry: virtual-time tracing, a metrics registry,
//! and exportable run reports.
//!
//! Everything in this module follows the [`crate::campaign::PhaseTimes`]
//! precedent: telemetry is **observability only**. Trace events and
//! metrics are never journaled, never hashed into
//! [`crate::campaign::CampaignResult::content_hash`], and never join a
//! store key — a traced run and an untraced run of the same campaign
//! produce byte-identical results, which the golden determinism test
//! pins with tracing both off and on.
//!
//! The tracing seam is the [`Tracer`] trait. The engine is generic over
//! it with [`NullTracer`] as the default: every hook site is guarded by
//! `if self.tracer.enabled()`, and `NullTracer::enabled` is a constant
//! `false`, so after monomorphization the disabled hooks are dead code
//! — zero allocations and zero branch cost on the hot path. The
//! [`RecordingTracer`] records one [`TraceEvent`] per hook with a
//! per-session sequence number; because sessions never interact, a
//! session's own event stream is invariant under shard count and
//! kill-and-resume, and the canonical `(time_ms, session, seq)` sort
//! makes the *merged* stream byte-identical for any shard fan-out.
//!
//! Replayed sessions (journal resume) emit no trace events: telemetry
//! is not journaled, so a resumed run's trace covers exactly the
//! sessions it actually simulated.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One traced occurrence inside a session, in virtual time.
///
/// Variants carry only what the export needs; labels are `&'static str`
/// where the vocabulary is closed and owned strings only where the
/// value is data-dependent (names, mutation kinds). Allocation happens
/// exclusively under an `enabled()` guard.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// The session's connection-establishment event fired.
    SessionStart,
    /// The session finished; `termination` labels how.
    SessionEnd {
        /// `completed`, `budget_exhausted`, `hostile_input`,
        /// `resource_shed` or `contained_panic`.
        termination: &'static str,
    },
    /// The MTA accepted the message for delivery.
    Delivered,
    /// The MTA issued a 451 tempfail (greylisting).
    TempFail,
    /// A client command batch arrived at the MTA.
    SmtpCommand {
        /// First verb of the batch (`EHLO`, `MAIL`, ...).
        verb: String,
    },
    /// The client parsed one complete server reply.
    SmtpReply {
        /// Three-digit reply code.
        code: u16,
    },
    /// The client's parser refused a server reply (hostile input).
    SmtpRejected {
        /// The [`mailval_simnet::MalformedClass`] label.
        class: String,
    },
    /// The client scheduled a backoff pause (greylist retry rounds).
    ClientPause {
        /// Pause length, virtual ms.
        ms: u64,
    },
    /// The client closed the session.
    ClientClose {
        /// Message delivered?
        delivered: bool,
        /// Transaction retries attempted.
        retries: u32,
    },
    /// The server-side FIN reached the client.
    ServerClose,
    /// The MTA stalled its next reply (flaky-implementation behavior).
    MtaStall {
        /// Extra delay, ms.
        delay_ms: u64,
    },
    /// An SPF evaluation concluded.
    SpfConcluded {
        /// The [`mailval_spf::SpfResult`] label.
        result: String,
    },
    /// Completed DNS lookups of the concluded SPF evaluation
    /// (per-term lookup depth; the §6.1 lookup-limit analyses).
    SpfLookups {
        /// Lookups the evaluation completed.
        count: u32,
    },
    /// An SPF evaluation tripped a hostile-policy guard.
    SpfHostile {
        /// An include/redirect cycle was detected.
        cycle: bool,
        /// A lookup budget was exhausted.
        exhausted: bool,
    },
    /// A DKIM verification concluded.
    DkimConcluded {
        /// Signature verified?
        pass: bool,
    },
    /// A DMARC evaluation concluded.
    DmarcConcluded {
        /// Policy passed?
        pass: bool,
    },
    /// The MTA asked its resolver for a lookup (lookup-span open).
    ResolveStart {
        /// MTA-side request id (pairs with [`TraceKind::ResolveDone`]).
        qid: u64,
        /// Queried name.
        name: String,
        /// Record type label.
        rtype: String,
        /// Served synchronously from the resolver cache.
        cached: bool,
    },
    /// A lookup finished (lookup-span close).
    ResolveDone {
        /// MTA-side request id.
        qid: u64,
        /// `records`, `nodata`, `nxdomain`, `timeout` or `servfail`.
        outcome: &'static str,
    },
    /// The resolver transmitted an upstream query (attempt-span open).
    DnsSend {
        /// Resolver-core attempt id.
        core_id: u16,
        /// `udp` or `tcp` (TCP = truncation fallback).
        transport: &'static str,
        /// Sent over the IPv6 apparatus endpoint.
        via_ipv6: bool,
        /// Encoded query size.
        bytes: usize,
    },
    /// An upstream response reached the resolver (attempt-span close).
    DnsRecv {
        /// Resolver-core attempt id.
        core_id: u16,
        /// Response size on the wire.
        bytes: usize,
    },
    /// An attempt timeout tripped the retry machinery.
    DnsTimeout {
        /// Resolver-core attempt id.
        core_id: u16,
    },
    /// The fault plan decided a datagram's fate.
    FaultDatagram {
        /// `drop`, `truncate`, `duplicate` or `delay`.
        fate: &'static str,
        /// Query-side (true) or response-side (false).
        query_side: bool,
    },
    /// The fault plan injected a connection fault.
    FaultConn {
        /// `reset` or `stall`.
        kind: &'static str,
    },
    /// The payload plan mutated a DNS response in flight.
    FaultDnsMutation {
        /// The [`mailval_simnet::DnsMutation`] label.
        kind: String,
    },
    /// The payload plan mutated an SMTP reply in flight.
    FaultSmtpMutation,
    /// An injected connection reset reached the wire.
    ConnReset,
}

impl TraceKind {
    /// Short stable name for exports.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::SessionStart => "session_start",
            TraceKind::SessionEnd { .. } => "session_end",
            TraceKind::Delivered => "delivered",
            TraceKind::TempFail => "tempfail",
            TraceKind::SmtpCommand { .. } => "smtp_command",
            TraceKind::SmtpReply { .. } => "smtp_reply",
            TraceKind::SmtpRejected { .. } => "smtp_rejected",
            TraceKind::ClientPause { .. } => "client_pause",
            TraceKind::ClientClose { .. } => "client_close",
            TraceKind::ServerClose => "server_close",
            TraceKind::MtaStall { .. } => "mta_stall",
            TraceKind::SpfConcluded { .. } => "spf_concluded",
            TraceKind::SpfLookups { .. } => "spf_lookups",
            TraceKind::SpfHostile { .. } => "spf_hostile",
            TraceKind::DkimConcluded { .. } => "dkim_concluded",
            TraceKind::DmarcConcluded { .. } => "dmarc_concluded",
            TraceKind::ResolveStart { .. } => "resolve_start",
            TraceKind::ResolveDone { .. } => "resolve_done",
            TraceKind::DnsSend { .. } => "dns_send",
            TraceKind::DnsRecv { .. } => "dns_recv",
            TraceKind::DnsTimeout { .. } => "dns_timeout",
            TraceKind::FaultDatagram { .. } => "fault_datagram",
            TraceKind::FaultConn { .. } => "fault_conn",
            TraceKind::FaultDnsMutation { .. } => "fault_dns_mutation",
            TraceKind::FaultSmtpMutation => "fault_smtp_mutation",
            TraceKind::ConnReset => "conn_reset",
        }
    }
}

/// One trace record: what happened, when (virtual ms), to which
/// session, and its per-session emission index.
///
/// `(session, seq)` is unique and `(time_ms, session, seq)` is the
/// canonical sort key: a session's events are emitted at non-decreasing
/// virtual time in an order that depends only on the session's own
/// inputs, so the sorted stream is invariant under shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time, ms.
    pub time_ms: u64,
    /// Campaign-global session id.
    pub session: usize,
    /// Per-session emission index (0, 1, 2, ...).
    pub seq: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// Sort into the canonical, shard-invariant order.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_unstable_by_key(|e| (e.time_ms, e.session, e.seq));
}

// ---------------------------------------------------------------------------
// The tracer seam
// ---------------------------------------------------------------------------

/// The engine's tracing seam.
///
/// The engine is generic over this trait with [`NullTracer`] as the
/// default type parameter; every hook site checks
/// [`Tracer::enabled`] before constructing event payloads, so the
/// disabled impl monomorphizes to nothing.
pub trait Tracer {
    /// Is this tracer recording? Hook sites guard on this; the null
    /// impl returns a constant `false` that dead-codes the hook away.
    fn enabled(&self) -> bool;
    /// Record one event. Only called under an `enabled()` guard.
    fn record(&mut self, time_ms: u64, session: usize, kind: TraceKind);
    /// Consume the recording into a shard's telemetry (`None` for the
    /// null tracer). Events come back canonically sorted.
    fn finish(&mut self) -> Option<Telemetry>;
}

/// The zero-cost disabled tracer (the engine default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record(&mut self, _time_ms: u64, _session: usize, _kind: TraceKind) {}
    fn finish(&mut self) -> Option<Telemetry> {
        None
    }
}

/// A tracer that records everything, assigning per-session sequence
/// numbers as it goes.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    events: Vec<TraceEvent>,
    next_seq: HashMap<usize, u32>,
}

impl Tracer for RecordingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, time_ms: u64, session: usize, kind: TraceKind) {
        let seq = self.next_seq.entry(session).or_insert(0);
        let s = *seq;
        *seq += 1;
        self.events.push(TraceEvent {
            time_ms,
            session,
            seq: s,
            kind,
        });
    }

    fn finish(&mut self) -> Option<Telemetry> {
        let mut events = std::mem::take(&mut self.events);
        self.next_seq.clear();
        sort_events(&mut events);
        let metrics = MetricsRegistry::from_events(&events);
        Some(Telemetry { events, metrics })
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A log2-bucketed histogram of virtual-time (or count) values.
///
/// Bucket `i > 0` counts values `v` with `2^(i-1) <= v < 2^i`; bucket 0
/// counts zeros. 33 buckets cover the u64 values the simulation can
/// produce (virtual times beyond 2^32 ms exceed any session budget).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Log2 buckets (see type docs).
    pub buckets: [u64; 33],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 33],
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        let idx = if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(32)
        };
        self.buckets[idx] += 1;
    }

    /// Fold another histogram in (summation: order-invariant).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Upper bound (exclusive) of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64 << i
        }
    }
}

/// Counters and histograms, keyed by stable names.
///
/// Built per shard from that shard's sorted event stream and merged by
/// summation over `BTreeMap` keys — addition commutes, so the merged
/// registry is identical for any shard count or merge order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Log2-bucketed histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add `by` to counter `name`.
    pub fn inc(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Record `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Fold another registry in (summation over keys).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Derive the full registry from an event stream. Metrics are a
    /// pure function of the trace, so per-shard registries built here
    /// and merged equal the registry built from the merged stream.
    pub fn from_events(events: &[TraceEvent]) -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        // Open spans: lookup start times by (session, qid), session
        // start times by session.
        let mut lookups: HashMap<(usize, u64), u64> = HashMap::new();
        let mut starts: HashMap<usize, u64> = HashMap::new();
        for e in events {
            match &e.kind {
                TraceKind::SessionStart => {
                    m.inc("sessions", 1);
                    starts.insert(e.session, e.time_ms);
                }
                TraceKind::SessionEnd { termination } => {
                    m.inc(&format!("sessions_{termination}"), 1);
                    if let Some(t0) = starts.remove(&e.session) {
                        m.observe("session_ms", e.time_ms.saturating_sub(t0));
                    }
                }
                TraceKind::Delivered => m.inc("deliveries", 1),
                TraceKind::TempFail => m.inc("tempfails", 1),
                TraceKind::SmtpCommand { .. } => m.inc("smtp_commands", 1),
                TraceKind::SmtpReply { code } => {
                    m.inc("smtp_replies", 1);
                    m.inc(&format!("smtp_replies_{}xx", code / 100), 1);
                }
                TraceKind::SmtpRejected { .. } => m.inc("smtp_rejected", 1),
                TraceKind::ClientPause { .. } => m.inc("client_pauses", 1),
                TraceKind::ClientClose { retries, .. } => {
                    m.inc("client_retries", u64::from(*retries));
                    m.observe("client_retries_per_session", u64::from(*retries));
                }
                TraceKind::ServerClose => m.inc("server_closes", 1),
                TraceKind::MtaStall { .. } => m.inc("mta_stalls", 1),
                TraceKind::SpfConcluded { result } => {
                    m.inc(&format!("spf_{}", result.to_ascii_lowercase()), 1);
                }
                TraceKind::SpfLookups { count } => {
                    m.observe("spf_lookups", u64::from(*count));
                }
                TraceKind::SpfHostile { .. } => m.inc("spf_hostile", 1),
                TraceKind::DkimConcluded { pass } => {
                    m.inc(if *pass { "dkim_pass" } else { "dkim_fail" }, 1);
                }
                TraceKind::DmarcConcluded { pass } => {
                    m.inc(if *pass { "dmarc_pass" } else { "dmarc_fail" }, 1);
                }
                TraceKind::ResolveStart { qid, cached, .. } => {
                    m.inc("dns_lookups", 1);
                    if *cached {
                        m.inc("dns_cache_hits", 1);
                    } else {
                        lookups.insert((e.session, *qid), e.time_ms);
                    }
                }
                TraceKind::ResolveDone { qid, outcome } => {
                    m.inc(&format!("dns_outcome_{outcome}"), 1);
                    if let Some(t0) = lookups.remove(&(e.session, *qid)) {
                        m.observe("dns_lookup_ms", e.time_ms.saturating_sub(t0));
                    }
                }
                TraceKind::DnsSend { transport, .. } => {
                    m.inc("dns_sends", 1);
                    if *transport == "tcp" {
                        m.inc("dns_tcp_fallbacks", 1);
                    }
                }
                TraceKind::DnsRecv { .. } => m.inc("dns_recvs", 1),
                TraceKind::DnsTimeout { .. } => m.inc("dns_attempt_timeouts", 1),
                TraceKind::FaultDatagram { fate, .. } => {
                    m.inc(&format!("fault_datagram_{fate}"), 1);
                }
                TraceKind::FaultConn { kind } => m.inc(&format!("fault_conn_{kind}"), 1),
                TraceKind::FaultDnsMutation { .. } => m.inc("fault_dns_mutations", 1),
                TraceKind::FaultSmtpMutation => m.inc("fault_smtp_mutations", 1),
                TraceKind::ConnReset => m.inc("conn_resets", 1),
            }
        }
        m
    }

    /// Resolver cache hit-rate, if any lookup was traced.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = *self.counters.get("dns_lookups")?;
        if lookups == 0 {
            return None;
        }
        let hits = self.counters.get("dns_cache_hits").copied().unwrap_or(0);
        Some(hits as f64 / lookups as f64)
    }
}

// ---------------------------------------------------------------------------
// Merged telemetry
// ---------------------------------------------------------------------------

/// One run's telemetry: the canonical event stream plus the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// Trace events in canonical `(time_ms, session, seq)` order.
    pub events: Vec<TraceEvent>,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// Merge per-shard telemetry into the campaign view: events
    /// re-sorted into the canonical order, registries summed. Both are
    /// order-invariant, so the merge is deterministic for any shard
    /// count.
    pub fn merge(parts: Vec<Telemetry>) -> Telemetry {
        let mut events = Vec::with_capacity(parts.iter().map(|p| p.events.len()).sum());
        let mut metrics = MetricsRegistry::default();
        for p in parts {
            events.extend(p.events);
            metrics.merge(&p.metrics);
        }
        sort_events(&mut events);
        Telemetry { events, metrics }
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Which sessions/shard a trace export keeps. Default keeps everything.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    /// Keep only these campaign-global session ids (empty = all).
    pub sessions: Vec<usize>,
    /// Keep only sessions of shard `k` of `n` (round-robin assignment,
    /// matching [`crate::shard::partition`]).
    pub shard: Option<(usize, usize)>,
}

impl TraceFilter {
    /// Does `session` pass the filter?
    pub fn keeps(&self, session: usize) -> bool {
        if let Some((k, n)) = self.shard {
            if n > 0 && session % n != k {
                return false;
            }
        }
        self.sessions.is_empty() || self.sessions.contains(&session)
    }
}

/// Attribute a lookup to the validation stage that issued it, from the
/// query shape alone (the probe's name scheme keeps these disjoint).
pub fn lookup_stage(name: &str, rtype: &str) -> &'static str {
    let lower = name.to_ascii_lowercase();
    if lower.starts_with("_dmarc.") {
        "dmarc"
    } else if lower.contains("._domainkey.") {
        "dkim"
    } else if rtype == "Txt" {
        "spf"
    } else {
        "spf-term"
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One Chrome trace line: a complete ("X") span.
fn push_span(
    out: &mut String,
    first: &mut bool,
    name: &str,
    session: usize,
    ts_ms: u64,
    dur_ms: u64,
    args: &str,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(out, "  {{\"name\": \"",);
    json_escape(name, out);
    let _ = write!(
        out,
        "\", \"ph\": \"X\", \"pid\": 1, \"tid\": {session}, \
         \"ts\": {}, \"dur\": {}{args}}}",
        ts_ms * 1000,
        dur_ms.max(1) * 1000,
    );
}

/// One Chrome trace line: an instant ("i") event.
fn push_instant(out: &mut String, first: &mut bool, name: &str, session: usize, ts_ms: u64) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(out, "  {{\"name\": \"");
    json_escape(name, out);
    let _ = write!(
        out,
        "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {session}, \"ts\": {}}}",
        ts_ms * 1000
    );
}

/// Export a filtered event stream as Chrome trace-event JSON
/// (Perfetto-loadable): session and DNS lookup/attempt spans as
/// complete ("X") events, everything else as instants, `ts` in
/// microseconds of virtual time, `tid` = session id.
///
/// Purely a function of the (already canonical) event stream, so the
/// export is byte-identical for any shard count.
pub fn chrome_trace_json(events: &[TraceEvent], filter: &TraceFilter) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;

    // Span-open bookkeeping, keyed to pair opens with closes.
    let mut session_open: HashMap<usize, u64> = HashMap::new();
    let mut lookup_open: HashMap<(usize, u64), (u64, String)> = HashMap::new();
    let mut attempt_open: HashMap<(usize, u16), (u64, &'static str)> = HashMap::new();

    for e in events {
        if !filter.keeps(e.session) {
            continue;
        }
        match &e.kind {
            TraceKind::SessionStart => {
                session_open.insert(e.session, e.time_ms);
            }
            TraceKind::SessionEnd { termination } => {
                if let Some(t0) = session_open.remove(&e.session) {
                    let name = format!("session {} [{termination}]", e.session);
                    push_span(
                        &mut out,
                        &mut first,
                        &name,
                        e.session,
                        t0,
                        e.time_ms.saturating_sub(t0),
                        "",
                    );
                }
            }
            TraceKind::ResolveStart {
                qid,
                name,
                rtype,
                cached,
            } => {
                let stage = lookup_stage(name, rtype);
                let label = format!("dns:{stage} {name} {rtype}");
                if *cached {
                    push_instant(
                        &mut out,
                        &mut first,
                        &format!("{label} [cached]"),
                        e.session,
                        e.time_ms,
                    );
                } else {
                    lookup_open.insert((e.session, *qid), (e.time_ms, label));
                }
            }
            TraceKind::ResolveDone { qid, outcome } => {
                if let Some((t0, label)) = lookup_open.remove(&(e.session, *qid)) {
                    let name = format!("{label} [{outcome}]");
                    push_span(
                        &mut out,
                        &mut first,
                        &name,
                        e.session,
                        t0,
                        e.time_ms.saturating_sub(t0),
                        "",
                    );
                }
            }
            TraceKind::DnsSend {
                core_id, transport, ..
            } => {
                attempt_open.insert((e.session, *core_id), (e.time_ms, transport));
            }
            TraceKind::DnsRecv { core_id, .. } => {
                if let Some((t0, transport)) = attempt_open.remove(&(e.session, *core_id)) {
                    let name = format!("attempt:{transport}");
                    push_span(
                        &mut out,
                        &mut first,
                        &name,
                        e.session,
                        t0,
                        e.time_ms.saturating_sub(t0),
                        "",
                    );
                }
            }
            TraceKind::DnsTimeout { core_id } => {
                if let Some((t0, transport)) = attempt_open.remove(&(e.session, *core_id)) {
                    let name = format!("attempt:{transport} [timeout]");
                    push_span(
                        &mut out,
                        &mut first,
                        &name,
                        e.session,
                        t0,
                        e.time_ms.saturating_sub(t0),
                        "",
                    );
                } else {
                    push_instant(&mut out, &mut first, "dns_timeout", e.session, e.time_ms);
                }
            }
            other => {
                let name = match other {
                    TraceKind::SmtpCommand { verb } => format!("smtp:{verb}"),
                    TraceKind::SmtpReply { code } => format!("reply:{code}"),
                    TraceKind::SmtpRejected { class } => format!("smtp_rejected:{class}"),
                    TraceKind::SpfConcluded { result } => format!("spf:{result}"),
                    TraceKind::FaultDatagram { fate, query_side } => {
                        format!(
                            "fault:datagram_{fate}:{}",
                            if *query_side { "query" } else { "response" }
                        )
                    }
                    TraceKind::FaultConn { kind } => format!("fault:conn_{kind}"),
                    TraceKind::FaultDnsMutation { kind } => format!("fault:dns_mutation:{kind}"),
                    _ => other.label().to_string(),
                };
                push_instant(&mut out, &mut first, &name, e.session, e.time_ms);
            }
        }
    }
    // Unclosed spans (e.g. a filter cutting a session's tail) degrade
    // to instants so nothing recorded is silently dropped.
    let mut leftovers: Vec<(u64, usize, String)> = Vec::new();
    for (session, t0) in session_open {
        leftovers.push((t0, session, format!("session {session} [unterminated]")));
    }
    for ((session, _qid), (t0, label)) in lookup_open {
        leftovers.push((t0, session, format!("{label} [open]")));
    }
    for ((session, _core), (t0, transport)) in attempt_open {
        leftovers.push((t0, session, format!("attempt:{transport} [open]")));
    }
    leftovers.sort_unstable_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
    for (t0, session, name) in leftovers {
        push_instant(&mut out, &mut first, &name, session, t0);
    }
    out.push_str("\n]}\n");
    out
}

/// Export a registry as a metrics-summary JSON document: counters and
/// histograms under sorted keys, histogram buckets as
/// `[upper_bound_exclusive, count]` pairs (zero buckets omitted).
pub fn metrics_json(m: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {\n");
    for (i, (k, v)) in m.counters.iter().enumerate() {
        let _ = write!(out, "    \"");
        json_escape(k, &mut out);
        let _ = writeln!(
            out,
            "\": {v}{}",
            if i + 1 == m.counters.len() { "" } else { "," }
        );
    }
    out.push_str("  },\n  \"histograms\": {\n");
    for (i, (k, h)) in m.histograms.iter().enumerate() {
        let _ = write!(out, "    \"");
        json_escape(k, &mut out);
        let _ = write!(
            out,
            "\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            h.count, h.sum
        );
        let mut first = true;
        for (b, n) in h.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "[{}, {n}]", Histogram::bucket_bound(b));
        }
        let _ = writeln!(
            out,
            "]}}{}",
            if i + 1 == m.histograms.len() { "" } else { "," }
        );
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ms: u64, session: usize, seq: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time_ms,
            session,
            seq,
            kind,
        }
    }

    #[test]
    fn null_tracer_is_disabled_and_yields_nothing() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        t.record(1, 2, TraceKind::SessionStart);
        assert!(t.finish().is_none());
    }

    #[test]
    fn recording_tracer_assigns_per_session_seq() {
        let mut t = RecordingTracer::default();
        t.record(5, 1, TraceKind::SessionStart);
        t.record(5, 0, TraceKind::SessionStart);
        t.record(9, 1, TraceKind::Delivered);
        let tel = t.finish().expect("recording");
        // Canonical order: (5,0,0), (5,1,0), (9,1,1).
        assert_eq!(tel.events.len(), 3);
        assert_eq!((tel.events[0].session, tel.events[0].seq), (0, 0));
        assert_eq!((tel.events[1].session, tel.events[1].seq), (1, 0));
        assert_eq!((tel.events[2].session, tel.events[2].seq), (1, 1));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1000 in [512, 1024)
    }

    #[test]
    fn registry_merge_is_order_invariant() {
        let mut a = MetricsRegistry::default();
        a.inc("x", 2);
        a.observe("h", 7);
        let mut b = MetricsRegistry::default();
        b.inc("x", 3);
        b.inc("y", 1);
        b.observe("h", 100);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["x"], 5);
        assert_eq!(ab.histograms["h"].count, 2);
    }

    #[test]
    fn metrics_from_events_pairs_lookup_spans() {
        let events = vec![
            ev(0, 7, 0, TraceKind::SessionStart),
            ev(
                2,
                7,
                1,
                TraceKind::ResolveStart {
                    qid: 1,
                    name: "spf.test".into(),
                    rtype: "Txt".into(),
                    cached: false,
                },
            ),
            ev(
                10,
                7,
                2,
                TraceKind::ResolveDone {
                    qid: 1,
                    outcome: "records",
                },
            ),
            ev(
                11,
                7,
                3,
                TraceKind::SessionEnd {
                    termination: "completed",
                },
            ),
        ];
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.counters["sessions"], 1);
        assert_eq!(m.counters["sessions_completed"], 1);
        assert_eq!(m.counters["dns_lookups"], 1);
        let h = &m.histograms["dns_lookup_ms"];
        assert_eq!((h.count, h.sum), (1, 8));
        assert_eq!(m.histograms["session_ms"].sum, 11);
        assert_eq!(m.cache_hit_rate(), Some(0.0));
    }

    #[test]
    fn chrome_export_emits_spans_and_filters() {
        let events = vec![
            ev(0, 0, 0, TraceKind::SessionStart),
            ev(1, 1, 0, TraceKind::SessionStart),
            ev(
                3,
                0,
                1,
                TraceKind::SessionEnd {
                    termination: "completed",
                },
            ),
            ev(
                4,
                1,
                1,
                TraceKind::SessionEnd {
                    termination: "completed",
                },
            ),
        ];
        let all = chrome_trace_json(&events, &TraceFilter::default());
        assert!(all.starts_with("{\"traceEvents\": ["));
        assert!(all.contains("\"tid\": 0"));
        assert!(all.contains("\"tid\": 1"));
        assert!(all.contains("\"ph\": \"X\""));
        let only1 = chrome_trace_json(
            &events,
            &TraceFilter {
                sessions: vec![1],
                shard: None,
            },
        );
        assert!(!only1.contains("\"tid\": 0"));
        assert!(only1.contains("\"tid\": 1"));
        // Shard filter: session 1 of 2 shards is shard 1.
        let shard0 = chrome_trace_json(
            &events,
            &TraceFilter {
                sessions: vec![],
                shard: Some((0, 2)),
            },
        );
        assert!(shard0.contains("\"tid\": 0"));
        assert!(!shard0.contains("\"tid\": 1"));
    }

    #[test]
    fn metrics_json_renders_sorted_and_sparse() {
        let mut m = MetricsRegistry::default();
        m.inc("b", 2);
        m.inc("a", 1);
        m.observe("lat", 5);
        let json = metrics_json(&m);
        let a = json.find("\"a\": 1").expect("a");
        let b = json.find("\"b\": 2").expect("b");
        assert!(a < b, "keys must render sorted");
        assert!(json.contains("\"buckets\": [[8, 1]]"));
    }

    #[test]
    fn lookup_stage_classifies_query_shapes() {
        assert_eq!(lookup_stage("_dmarc.x.test", "Txt"), "dmarc");
        assert_eq!(lookup_stage("sel1._domainkey.x.test", "Txt"), "dkim");
        assert_eq!(lookup_stage("x.test", "Txt"), "spf");
        assert_eq!(lookup_stage("x.test", "A"), "spf-term");
    }
}
