//! Query-name encoding and attribution (§4.4–§4.5 of the paper).
//!
//! Probe From addresses follow
//! `spf-test@<testid>.<mtaid>.spf-test.dns-lab.org`; notification From
//! addresses follow `spf-test@<domainid>.dsav-mail.dns-lab.org`. Every
//! follow-up name a test policy induces (include targets, `a`/`mx`
//! hints) carries the same identifying labels, e.g.
//! `l1.t01.m00042.spf-test.dns-lab.org`, so a single DNS query suffices
//! to attribute activity to one MTA and one test even when thousands of
//! MTAs validate simultaneously.

use mailval_dns::Name;
use mailval_smtp::EmailAddress;

/// The apparatus's name scheme: suffixes and label construction.
#[derive(Debug, Clone)]
pub struct NameScheme {
    /// Suffix for probe experiments (`spf-test.dns-lab.org` in the
    /// paper).
    pub probe_suffix: Name,
    /// Suffix for the notification campaign (`dsav-mail.dns-lab.org`).
    pub notify_suffix: Name,
}

impl Default for NameScheme {
    fn default() -> Self {
        NameScheme {
            probe_suffix: Name::parse("spf-test.dns-lab.org").expect("valid"),
            notify_suffix: Name::parse("dsav-mail.dns-lab.org").expect("valid"),
        }
    }
}

/// Parsed identity of a query name under one of the apparatus suffixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedName {
    /// `t01`..`t39` for probe names; `None` for notification names.
    pub testid: Option<String>,
    /// The MTA (`m...`) or domain (`d...`) identifier.
    pub entity: String,
    /// Labels left of the identifying pair, leftmost first (the policy
    /// path, e.g. `["l1"]` or `["foo"]`; empty for the base L0 name).
    pub path: Vec<String>,
}

impl NameScheme {
    /// The mtaid label for host index `i`.
    pub fn mtaid(&self, host_index: usize) -> String {
        format!("m{host_index:05}")
    }

    /// The domainid label for domain index `i`.
    pub fn domainid(&self, domain_index: usize) -> String {
        format!("d{domain_index:05}")
    }

    /// Base (L0) From-domain for a probe against `host_index` under test
    /// `testid`.
    pub fn probe_domain(&self, testid: &str, host_index: usize) -> Name {
        self.probe_suffix
            .prepend(&self.mtaid(host_index))
            .and_then(|n| n.prepend(testid))
            .expect("labels fit")
    }

    /// Probe From address (§4.4).
    pub fn probe_from(&self, testid: &str, host_index: usize) -> EmailAddress {
        EmailAddress::new("spf-test", self.probe_domain(testid, host_index))
    }

    /// Base From-domain for the notification email to domain
    /// `domain_index`.
    pub fn notify_domain(&self, domain_index: usize) -> Name {
        self.notify_suffix
            .prepend(&self.domainid(domain_index))
            .expect("labels fit")
    }

    /// Notification From address.
    pub fn notify_from(&self, domain_index: usize) -> EmailAddress {
        EmailAddress::new("spf-test", self.notify_domain(domain_index))
    }

    /// HELO identity used by the probe client for `testid`/`host_index`
    /// (the HELO-check test policy publishes a policy at this name).
    pub fn probe_helo(&self, testid: &str, host_index: usize) -> Name {
        self.probe_domain(testid, host_index)
            .prepend("h")
            .expect("labels fit")
    }

    /// A follow-up name under a base domain: `{label}.{base}`.
    pub fn follow_up(base: &Name, label: &str) -> Name {
        base.prepend(label).expect("labels fit")
    }

    /// Attribute a query name to (testid, entity, path). Returns `None`
    /// for names outside both apparatus suffixes.
    pub fn parse(&self, name: &Name) -> Option<ParsedName> {
        if let Some(left) = name.strip_suffix(&self.probe_suffix) {
            // left = [path..., testid, mtaid]
            if left.len() < 2 {
                return None;
            }
            let mtaid = left[left.len() - 1].clone();
            let testid = left[left.len() - 2].clone();
            if !mtaid.starts_with('m') || !testid.starts_with('t') {
                return None;
            }
            return Some(ParsedName {
                testid: Some(testid),
                entity: mtaid,
                path: left[..left.len() - 2].to_vec(),
            });
        }
        if let Some(left) = name.strip_suffix(&self.notify_suffix) {
            // left = [path..., domainid]
            if left.is_empty() {
                return None;
            }
            let domainid = left[left.len() - 1].clone();
            if !domainid.starts_with('d') {
                // _dmarc.<domainid>... parses with domainid in last slot;
                // names like `_dmarc.d00001.suffix` have the id last.
                return None;
            }
            return Some(ParsedName {
                testid: None,
                entity: domainid,
                path: left[..left.len() - 1].to_vec(),
            });
        }
        None
    }

    /// Extract the numeric host index from an `m...` label.
    pub fn host_index(entity: &str) -> Option<usize> {
        entity.strip_prefix('m')?.parse().ok()
    }

    /// Extract the numeric domain index from a `d...` label.
    pub fn domain_index(entity: &str) -> Option<usize> {
        entity.strip_prefix('d')?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> NameScheme {
        NameScheme::default()
    }

    #[test]
    fn probe_from_matches_paper_template() {
        let s = scheme();
        let from = s.probe_from("t01", 42);
        assert_eq!(from.to_string(), "spf-test@t01.m00042.spf-test.dns-lab.org");
    }

    #[test]
    fn notify_from_matches_paper_template() {
        let s = scheme();
        let from = s.notify_from(7);
        assert_eq!(from.to_string(), "spf-test@d00007.dsav-mail.dns-lab.org");
    }

    #[test]
    fn attribution_roundtrip_probe() {
        let s = scheme();
        let base = s.probe_domain("t05", 3);
        let parsed = s.parse(&base).unwrap();
        assert_eq!(parsed.testid.as_deref(), Some("t05"));
        assert_eq!(parsed.entity, "m00003");
        assert!(parsed.path.is_empty());

        let follow = NameScheme::follow_up(&base, "l1");
        let parsed = s.parse(&follow).unwrap();
        assert_eq!(parsed.testid.as_deref(), Some("t05"));
        assert_eq!(parsed.path, vec!["l1"]);
        assert_eq!(NameScheme::host_index(&parsed.entity), Some(3));
    }

    #[test]
    fn attribution_roundtrip_notify() {
        let s = scheme();
        let base = s.notify_domain(12);
        let parsed = s.parse(&base).unwrap();
        assert_eq!(parsed.testid, None);
        assert_eq!(NameScheme::domain_index(&parsed.entity), Some(12));

        // DKIM key / DMARC policy names attribute too.
        let dkim = Name::parse("sel1._domainkey.d00012.dsav-mail.dns-lab.org").unwrap();
        let parsed = s.parse(&dkim).unwrap();
        assert_eq!(parsed.entity, "d00012");
        assert_eq!(parsed.path, vec!["sel1", "_domainkey"]);

        let dmarc = Name::parse("_dmarc.d00012.dsav-mail.dns-lab.org").unwrap();
        let parsed = s.parse(&dmarc).unwrap();
        assert_eq!(parsed.path, vec!["_dmarc"]);
    }

    #[test]
    fn multi_label_paths() {
        let s = scheme();
        let deep = Name::parse("h.e.c.a.n01.t02.m00100.spf-test.dns-lab.org").unwrap();
        let parsed = s.parse(&deep).unwrap();
        assert_eq!(parsed.testid.as_deref(), Some("t02"));
        assert_eq!(parsed.path, vec!["h", "e", "c", "a", "n01"]);
    }

    #[test]
    fn foreign_names_rejected() {
        let s = scheme();
        assert_eq!(s.parse(&Name::parse("example.com").unwrap()), None);
        assert_eq!(s.parse(&s.probe_suffix), None);
        // Malformed ids (missing t/m prefixes).
        assert_eq!(
            s.parse(&Name::parse("x01.y02.spf-test.dns-lab.org").unwrap()),
            None
        );
    }

    #[test]
    fn helo_name_under_test_domain() {
        let s = scheme();
        let helo = s.probe_helo("t03", 9);
        assert_eq!(helo.to_string(), "h.t03.m00009.spf-test.dns-lab.org");
        let parsed = s.parse(&helo).unwrap();
        assert_eq!(parsed.path, vec!["h"]);
    }
}
