//! Per-session state: the campaign-visible record and the live protocol
//! actors driving one probe-client ↔ MTA connection.

use mailval_mta::actor::MtaActor;
use mailval_mta::resolver::ResolverActor;
use mailval_simnet::FaultCursor;
use mailval_smtp::client::{ClientOutcome, ClientSession};
use mailval_smtp::reply::ReplyParser;
use std::net::IpAddr;

/// Per-session record — the campaign's durable output for one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// Global session index, stable across shard counts (assigned in
    /// campaign build order, before partitioning).
    pub session_id: usize,
    /// Index of the target MTA host in the population.
    pub host_index: usize,
    /// The recipient domain's index.
    pub domain_index: usize,
    /// Test id (`None` for NotifyEmail deliveries).
    pub testid: Option<&'static str>,
    /// Virtual start time.
    pub start_ms: u64,
    /// The SMTP outcome.
    pub outcome: Option<ClientOutcome>,
    /// When the message was accepted for delivery (NotifyEmail).
    pub delivery_time_ms: Option<u64>,
    /// The MTA, not the client, terminated the connection (a
    /// server-initiated close that ended the session before the client's
    /// own close path could record an outcome).
    pub closed_by_server: bool,
    /// The session's MTA panicked mid-dialogue and the engine contained
    /// it (`catch_unwind`): the payload message, and no further events
    /// were dispatched to this session.
    pub error: Option<String>,
}

/// One live session: record plus the protocol state machines.
pub struct LiveSession {
    pub(crate) record: SessionRecord,
    pub(crate) client: ClientSession,
    pub(crate) parser: ReplyParser,
    pub(crate) mta: MtaActor,
    pub(crate) resolver: ResolverActor,
    pub(crate) mta_ip: IpAddr,
    /// Per-session fault cursors (datagram/segment indices), advanced on
    /// every fate decision so fault sequences are shard-invariant.
    pub(crate) faults: FaultCursor,
    /// Accumulated MTA stall time to add to the next SMTP segment.
    pub(crate) stall_credit_ms: u64,
}

impl LiveSession {
    /// Assemble a session from its parts. The campaign layer builds the
    /// actors (it owns population, profiles and name scheme); the engine
    /// only drives them.
    pub fn new(
        record: SessionRecord,
        client: ClientSession,
        mta: MtaActor,
        resolver: ResolverActor,
        mta_ip: IpAddr,
    ) -> LiveSession {
        LiveSession {
            record,
            client,
            parser: ReplyParser::new(),
            mta,
            resolver,
            mta_ip,
            faults: FaultCursor::default(),
            stall_credit_ms: 0,
        }
    }

    /// The session's campaign-global id.
    pub fn session_id(&self) -> usize {
        self.record.session_id
    }

    /// The session's record (so far).
    pub fn record(&self) -> &SessionRecord {
        &self.record
    }
}
