//! The per-shard session engine: a virtual-time event loop driving any
//! number of **independent** probe sessions against the shared
//! authoritative server.

use super::event::Ev;
use super::session::{LiveSession, SessionOutcome, SessionRecord};
use crate::apparatus::{QueryLog, QueryRecord, SynthesizingAuthority};
use crate::journal::{JournalFrame, JournalWriter, Replay};
use crate::telemetry::{NullTracer, Telemetry, TraceKind, Tracer};
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::server::{ServerCore, Transport};
use mailval_mta::actor::{MtaEvent, MtaInput, MtaOutput};
use mailval_mta::resolver::{ResolverEvent, UpstreamSend};
use mailval_simnet::{
    ConnFault, DatagramFate, DnsMutation, FaultConfig, FaultPlan, FaultStats, LatencyModel,
    MalformedClass, PayloadConfig, PayloadPlan, Simulator,
};
use mailval_smtp::client::ClientAction;
use std::net::IpAddr;
use std::sync::Arc;

/// Per-session runaway limits. A nine-month campaign cannot afford one
/// pathological session (a retry loop against a profile that tempfails
/// forever, a stall cascade) holding its shard hostage: the engine
/// terminates any session that exceeds either limit with
/// [`SessionOutcome::BudgetExhausted`] and moves on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBudget {
    /// Maximum virtual time a session may span, from its start event to
    /// its latest event, ms. Default: seven virtual days — an order of
    /// magnitude past the two-week probes' longest legitimate single
    /// session, far below a runaway loop's reach.
    pub max_virtual_ms: u64,
    /// Maximum events dispatched to one session. Default: one million —
    /// real sessions take tens to hundreds.
    pub max_events: u64,
}

impl Default for SessionBudget {
    fn default() -> Self {
        SessionBudget {
            max_virtual_ms: 7 * 24 * 60 * 60 * 1000,
            max_events: 1_000_000,
        }
    }
}

/// Per-session memory backpressure: bounds on the *queued* work a
/// session may accumulate before the engine sheds it. The
/// [`SessionBudget`] caps events already dispatched; this caps events
/// (and their `Arc` payload bytes) scheduled but not yet popped — the
/// quantity that actually grows the heap when a runaway session
/// schedules faster than it drains. Both bounds are checked at
/// dispatch time against the session's own accounting, so the decision
/// is shard- and resume-invariant like every other engine decision.
/// Zero means unlimited; the default is fully inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBudget {
    /// Maximum payload bytes queued for one session (the sum of
    /// `Ev::payload_bytes` over its pending events). Zero = unlimited.
    pub max_session_bytes: u64,
    /// Maximum pending (scheduled, not yet dispatched) events for one
    /// session. Zero = unlimited.
    pub max_pending_events: u64,
}

impl MemoryBudget {
    /// True when some limit can ever trip (fast-path check).
    pub fn is_active(&self) -> bool {
        self.max_session_bytes > 0 || self.max_pending_events > 0
    }
}

/// Engine wiring that is identical for every session: the latency model
/// and the fixed apparatus endpoints.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Network latency model (injectable: tests swap in zero-latency or
    /// adversarial models without touching the driver).
    pub latency: LatencyModel,
    /// Fault-injection knobs; the default injects nothing. Combined with
    /// `latency.loss_probability` (the loss oracle) into a [`FaultPlan`].
    pub faults: FaultConfig,
    /// Hostile-peer payload mutation knobs; the default mutates nothing.
    /// Decisions are keyed by (seed, session id, payload cursor), so
    /// like the fault plan they are shard- and resume-invariant.
    pub payload: PayloadConfig,
    /// The probe client's source address.
    pub client_ip: IpAddr,
    /// The authoritative server's address.
    pub auth_ip: IpAddr,
    /// Local validator↔resolver hop, ms.
    pub local_hop_ms: u64,
    /// Per-session runaway limits.
    pub budget: SessionBudget,
    /// Per-session queued-work limits (memory backpressure); the
    /// default is inert.
    pub memory: MemoryBudget,
}

/// What one engine run produced.
pub struct EngineOutput {
    /// The shard's query log, already in canonical `(time_ms, session)`
    /// order.
    pub log: QueryLog,
    /// Finished session records, in the shard's insertion order.
    pub records: Vec<SessionRecord>,
    /// Run counters.
    pub stats: EngineStats,
    /// The shard's trace + metrics, when the engine ran with a
    /// recording tracer. Observability only: never journaled or hashed,
    /// and `None` for replayed (journal-finalized) output.
    pub telemetry: Option<Telemetry>,
}

/// Live heartbeat configuration: a rate-limited progress line the
/// engine emits from its event loop (per-shard sessions/s, pending
/// events, simulator backlog). Wall-clock rate limiting only affects
/// *when lines print*, never the simulation — the heartbeat reads
/// engine state, it does not write it.
#[derive(Debug)]
struct Heartbeat {
    shard: usize,
    interval: std::time::Duration,
    started: std::time::Instant,
    last: std::time::Instant,
    last_completed: u64,
}

/// Lightweight per-engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Sessions driven (including sessions replayed from a journal).
    pub sessions: usize,
    /// Virtual events dispatched to live sessions. Drained stale events
    /// of already-finished sessions are excluded, which makes the count
    /// both shard-invariant and resume-invariant (a replayed session
    /// contributes exactly the events its original run dispatched).
    pub events: u64,
    /// Queries logged at the authoritative server.
    pub queries_logged: u64,
    /// Virtual time of the latest event dispatched to a live session
    /// (or replayed from a journal), ms.
    pub virtual_ms: u64,
    /// Fault-injection counters (all zero when no faults configured).
    pub faults: FaultStats,
    /// The shard's journal failed mid-run and the engine demoted it to
    /// non-durable mode: results are complete and correct, but a crash
    /// after the demotion would lose the un-journaled suffix.
    /// Observability only — never hashed into campaign content.
    pub durability_lost: bool,
}

/// A virtual-time driver for a set of sessions that never interact.
///
/// This is the unit of parallelism: a campaign partitions its sessions
/// into shards and runs one `SessionEngine` per shard, all borrowing the
/// same [`ServerCore`] (whose handling is `&self`-only and stateless per
/// query). The clock is injectable via [`SessionEngine::with_clock`];
/// the default starts at virtual zero.
///
/// The engine is generic over its [`Tracer`]; the default
/// [`NullTracer`] monomorphizes every `if self.tracer.enabled()` hook
/// to dead code, so tracing costs nothing unless a recording tracer is
/// injected via [`SessionEngine::with_tracer`].
pub struct SessionEngine<'a, T: Tracer = NullTracer> {
    sim: Simulator<Ev>,
    sessions: Vec<LiveSession>,
    server: &'a ServerCore<SynthesizingAuthority>,
    log: QueryLog,
    config: EngineConfig,
    plan: FaultPlan,
    payload: PayloadPlan,
    /// Journal receiving one frame per completed session, when the
    /// campaign runs with durability enabled.
    journal: Option<JournalWriter>,
    /// Records of sessions already completed in a previous run of this
    /// shard, replayed from its journal (resume).
    replay_records: Vec<SessionRecord>,
    replay_faults: FaultStats,
    replay_events: u64,
    replay_virtual_ms: u64,
    /// Sessions completed so far, replayed *plus* live — the cursor the
    /// deterministic `crash_after_sessions` injection compares against.
    completed: u64,
    /// Reusable DNS reply encode buffer: one allocation per shard
    /// absorbs every server reply encode instead of one `Vec` per
    /// datagram (see [`ServerCore::handle_with`]).
    scratch: Vec<u8>,
    /// The journal failed and was demoted mid-run (see
    /// [`EngineStats::durability_lost`]).
    durability_lost: bool,
    /// The tracing seam (NullTracer unless injected).
    tracer: T,
    /// Live heartbeat state, when enabled.
    heartbeat: Option<Heartbeat>,
    /// Dispatch counter driving the cheap heartbeat check mask.
    ticks: u64,
}

impl<'a> SessionEngine<'a> {
    /// A fresh engine at virtual time zero.
    pub fn new(server: &'a ServerCore<SynthesizingAuthority>, config: EngineConfig) -> Self {
        Self::with_clock(server, config, Simulator::new())
    }

    /// An engine over an injected clock (e.g. one pre-advanced to a
    /// campaign epoch, or shared-sequence test setups).
    pub fn with_clock(
        server: &'a ServerCore<SynthesizingAuthority>,
        config: EngineConfig,
        clock: Simulator<Ev>,
    ) -> Self {
        Self::with_parts(server, config, clock, NullTracer)
    }
}

impl<'a, T: Tracer> SessionEngine<'a, T> {
    /// A fresh engine recording through `tracer`. Tracing is
    /// observability only: the simulation takes exactly the same steps
    /// as an untraced run (the golden determinism tests pin this).
    pub fn with_tracer(
        server: &'a ServerCore<SynthesizingAuthority>,
        config: EngineConfig,
        tracer: T,
    ) -> Self {
        Self::with_parts(server, config, Simulator::new(), tracer)
    }

    fn with_parts(
        server: &'a ServerCore<SynthesizingAuthority>,
        config: EngineConfig,
        clock: Simulator<Ev>,
        tracer: T,
    ) -> Self {
        let plan = FaultPlan::new(config.faults.clone(), config.latency.clone());
        let payload = PayloadPlan::new(config.payload.clone());
        SessionEngine {
            sim: clock,
            sessions: Vec::new(),
            server,
            log: QueryLog::new(),
            config,
            plan,
            payload,
            journal: None,
            replay_records: Vec::new(),
            replay_faults: FaultStats::default(),
            replay_events: 0,
            replay_virtual_ms: 0,
            completed: 0,
            scratch: Vec::new(),
            durability_lost: false,
            tracer,
            heartbeat: None,
            ticks: 0,
        }
    }

    /// Enable the live heartbeat: at most one `progress!` line per
    /// `interval_ms` of wall clock, labeled with `shard`.
    pub fn set_heartbeat(&mut self, shard: usize, interval_ms: u64) {
        let now = std::time::Instant::now();
        self.heartbeat = Some(Heartbeat {
            shard,
            interval: std::time::Duration::from_millis(interval_ms.max(1)),
            started: now,
            last: now,
            last_completed: 0,
        });
    }

    /// Attach a journal: every completed session is appended as one
    /// frame. On resume, attach with `JournalWriter::open_append` at the
    /// `valid_len` established by the [`Replay`] fed to
    /// [`SessionEngine::seed_replay`].
    pub fn set_journal(&mut self, writer: JournalWriter) {
        self.journal = Some(writer);
    }

    /// Seed the engine with sessions already completed by a previous run
    /// of this shard (replayed from its journal). The caller must *not*
    /// [`SessionEngine::add_session`] those sessions again — use
    /// [`Replay::completed_ids`] to skip them. The merged output is then
    /// byte-identical to an uninterrupted run.
    pub fn seed_replay(&mut self, replay: Replay) {
        for frame in replay.frames {
            self.replay_events += frame.events;
            self.replay_faults.merge(&frame.faults);
            self.replay_virtual_ms = self.replay_virtual_ms.max(frame.end_ms);
            self.log.records.extend(frame.queries);
            self.replay_records.push(frame.record);
        }
        self.completed = self.replay_records.len() as u64;
    }

    /// Add a session and schedule its connection establishment at
    /// `start_ms` (absolute virtual time).
    pub fn add_session(&mut self, mut session: LiveSession, start_ms: u64) {
        let local = self.sessions.len();
        session.record.start_ms = start_ms;
        self.sessions.push(session);
        self.sched_at(start_ms, Ev::Start(local));
    }

    /// Number of sessions added so far.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drive every session to completion and return the shard's output.
    ///
    /// Per-session failures are *contained*: a panic while dispatching an
    /// event (e.g. a poisoned MTA implementation) marks that session's
    /// record with an error outcome and stops dispatching to it, instead
    /// of killing the whole shard.
    pub fn run(mut self) -> EngineOutput {
        while let Some((time_ms, ev)) = self.sim.next() {
            self.ticks += 1;
            if self.heartbeat.is_some() && self.ticks & 0xFFF == 0 {
                self.maybe_heartbeat(time_ms);
            }
            let id = ev.session();
            let budget = self.config.budget;
            let memory = self.config.memory;
            {
                let s = &mut self.sessions[id];
                if s.done {
                    continue; // stale event of an already-finished session
                }
                s.pending = s.pending.saturating_sub(1);
                s.queued_bytes = s.queued_bytes.saturating_sub(ev.payload_bytes());
                s.last_event_ms = time_ms;
                let elapsed = time_ms.saturating_sub(s.record.start_ms);
                if s.events >= budget.max_events || elapsed > budget.max_virtual_ms {
                    // Checked *before* dispatch and *before* counting the
                    // event, so a terminated session never exceeds either
                    // limit.
                    s.record.termination = SessionOutcome::BudgetExhausted {
                        virtual_ms: elapsed,
                        events: s.events,
                    };
                    s.stats.budget_exhausted += 1;
                    self.finish_session(id);
                    continue;
                }
                if (memory.max_pending_events > 0 && s.pending > memory.max_pending_events)
                    || (memory.max_session_bytes > 0 && s.queued_bytes > memory.max_session_bytes)
                {
                    // Memory backpressure: the session's *queued* work
                    // exceeds its budget — shed it before its payload
                    // queue can blow up the shard. Decided purely from
                    // the session's own accounting at its own dispatch
                    // (same-session events keep their relative order for
                    // any shard count), so the shed point is shard- and
                    // resume-invariant.
                    s.record.termination = SessionOutcome::ResourceShed {
                        queued_bytes: s.queued_bytes,
                        pending_events: s.pending,
                    };
                    s.stats.resource_shed += 1;
                    self.finish_session(id);
                    continue;
                }
                s.events += 1;
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.dispatch(ev);
            }));
            match result {
                Ok(()) => {
                    // A hostile-input termination ends the session at the
                    // rejection even while later events are still queued
                    // (they drain as stale).
                    let finished = {
                        let s = &self.sessions[id];
                        s.pending == 0
                            || matches!(s.record.termination, SessionOutcome::HostileInput { .. })
                    };
                    if finished {
                        self.finish_session(id);
                    }
                }
                Err(payload) => {
                    // Materialized only here, on the (rare) error path;
                    // an owned `String` payload is moved, not cloned.
                    let msg = match payload.downcast::<String>() {
                        Ok(s) => *s,
                        Err(payload) => payload
                            .downcast_ref::<&str>()
                            .map_or_else(|| "panic".to_string(), |s| (*s).to_string()),
                    };
                    self.sessions[id].record.error = Some(msg);
                    self.sessions[id].stats.contained_panics += 1;
                    self.finish_session(id);
                }
            }
        }
        // The queue is empty, so every session's `pending` hit zero and
        // was finished above; this sweep only matters for engines run
        // with zero events (added sessions but a pre-drained clock).
        for id in 0..self.sessions.len() {
            if !self.sessions[id].done {
                self.finish_session(id);
            }
        }
        if let Some(w) = self.journal.as_mut() {
            if let Err(e) = w.sync() {
                // The final fsync failing means the journal tail may not
                // survive a machine crash: surface it as lost durability.
                crate::progress!("final journal sync failed: {e}");
                self.durability_lost = true;
            }
        }
        let mut faults = self.replay_faults;
        let mut events = self.replay_events;
        let mut virtual_ms = self.replay_virtual_ms;
        for s in &self.sessions {
            faults.merge(&s.stats);
            events += s.events;
            virtual_ms = virtual_ms.max(s.last_event_ms);
        }
        let stats = EngineStats {
            sessions: self.replay_records.len() + self.sessions.len(),
            events,
            queries_logged: self.log.records.len() as u64,
            virtual_ms,
            faults,
            durability_lost: self.durability_lost,
        };
        self.log.sort_canonical();
        let telemetry = self.tracer.finish();
        let mut records = self.replay_records;
        records.extend(self.sessions.into_iter().map(|s| s.record));
        EngineOutput {
            log: self.log,
            records,
            stats,
            telemetry,
        }
    }

    /// Emit the rate-limited heartbeat line, if its interval elapsed.
    /// Pure observability: reads counters, emits one `progress!` line.
    fn maybe_heartbeat(&mut self, virtual_ms: u64) {
        let completed = self.completed;
        let pending = self.sim.pending();
        let live: usize = self.sessions.iter().filter(|s| !s.done).count();
        let Some(hb) = self.heartbeat.as_mut() else {
            return;
        };
        if hb.last.elapsed() < hb.interval {
            return;
        }
        let elapsed = hb.started.elapsed().as_secs_f64().max(1e-9);
        let rate = completed as f64 / elapsed;
        let delta = completed.saturating_sub(hb.last_completed);
        hb.last = std::time::Instant::now();
        hb.last_completed = completed;
        let shard = hb.shard;
        crate::progress!(
            "shard {shard} heartbeat: {completed} sessions done (+{delta}, {rate:.0}/s), \
             {live} live, {pending} pending events, t={virtual_ms}ms"
        );
    }

    /// Mark session `id` finished: fold its retries into its fault
    /// counters, journal it as one frame, and move its buffered queries
    /// into the shard log. Fires the deterministic
    /// `crash_after_sessions` injection once the completion count
    /// (replayed + live) reaches the configured N — *after* the N-th
    /// frame is durably journaled, so a resumed run replays exactly N
    /// sessions and sails past the trigger.
    fn finish_session(&mut self, id: usize) {
        let s = &mut self.sessions[id];
        if s.done {
            return;
        }
        s.done = true;
        if self.tracer.enabled() {
            let termination = match (&s.record.error, &s.record.termination) {
                (Some(_), _) => "contained_panic",
                (None, SessionOutcome::Completed) => "completed",
                (None, SessionOutcome::BudgetExhausted { .. }) => "budget_exhausted",
                (None, SessionOutcome::HostileInput { .. }) => "hostile_input",
                (None, SessionOutcome::ResourceShed { .. }) => "resource_shed",
            };
            self.tracer.record(
                s.last_event_ms,
                s.record.session_id,
                TraceKind::SessionEnd { termination },
            );
        }
        if let Some(outcome) = &s.record.outcome {
            s.stats.client_retries += u64::from(outcome.retries);
        }
        let frame = JournalFrame {
            record: s.record.clone(),
            queries: std::mem::take(&mut s.queries),
            faults: s.stats,
            events: s.events,
            end_ms: s.last_event_ms,
        };
        if let Some(w) = self.journal.as_mut() {
            if let Err(e) = w.append(&frame) {
                // Graceful degradation: a failed append (full disk, short
                // write, failed fsync) demotes this shard to non-durable
                // mode. Results stay complete and correct — only crash
                // recovery coverage is lost, and that loss is visible in
                // `durability_lost`. The torn frame the failure may have
                // left behind is exactly what replay's CRC/prefix salvage
                // is built to drop.
                crate::progress!("journal demoted to non-durable: {e}");
                self.journal = None;
                self.durability_lost = true;
            }
        }
        self.log.records.extend(frame.queries);
        self.completed += 1;
        let crash_after = self.config.faults.crash_after_sessions;
        if crash_after > 0 && self.completed == crash_after {
            if let Some(w) = self.journal.as_mut() {
                let _ = w.sync();
            }
            panic!("fault injection: shard crash after {crash_after} completed sessions");
        }
    }

    /// Schedule `ev` after `delay_ms`, counting it against its session's
    /// pending-event balance (completion is `pending == 0`) and queued
    /// payload bytes (memory-budget accounting).
    fn sched(&mut self, delay_ms: u64, ev: Ev) {
        let s = &mut self.sessions[ev.session()];
        s.pending += 1;
        s.queued_bytes += ev.payload_bytes();
        self.sim.schedule(delay_ms, ev);
    }

    /// Absolute-time variant of [`SessionEngine::sched`].
    fn sched_at(&mut self, time_ms: u64, ev: Ev) {
        let s = &mut self.sessions[ev.session()];
        s.pending += 1;
        s.queued_bytes += ev.payload_bytes();
        self.sim.schedule_at(time_ms, ev);
    }

    /// Record one trace event for session `id` at the current virtual
    /// time. Call sites guard with `self.tracer.enabled()` so payload
    /// construction never happens on the untraced hot path.
    #[inline]
    fn trace(&mut self, id: usize, kind: TraceKind) {
        let sid = self.sessions[id].record.session_id;
        let now = self.sim.now_ms();
        self.tracer.record(now, sid, kind);
    }

    fn one_way_client(&self, id: usize) -> u64 {
        self.config
            .latency
            .one_way_ms(&self.config.client_ip, &self.sessions[id].mta_ip)
    }

    fn one_way_auth(&self, id: usize) -> u64 {
        self.config
            .latency
            .one_way_ms(&self.sessions[id].mta_ip, &self.config.auth_ip)
    }

    /// The fate of the next UDP datagram of session `id`. Keyed by the
    /// campaign-global session id and the session's own datagram cursor,
    /// so the decision is independent of shard count and event
    /// interleaving.
    fn datagram_fate(&mut self, id: usize, may_truncate: bool) -> DatagramFate {
        let session = &mut self.sessions[id];
        let sid = session.record.session_id as u64;
        self.plan
            .datagram_fate(sid, &mut session.faults, may_truncate)
    }

    /// The fate of the next SMTP segment of session `id`.
    fn conn_fault(&mut self, id: usize) -> ConnFault {
        let session = &mut self.sessions[id];
        let sid = session.record.session_id as u64;
        self.plan.conn_fault(sid, &mut session.faults)
    }

    /// Maybe mutate the next DNS response payload of session `id` in
    /// place (keyed like the fate decisions: campaign-global session id
    /// plus the session's payload cursor). Content-level kinds (SPF
    /// cycle, CNAME self-chain; only offered when the session's profile
    /// is `hostile_dns`) are synthesized here from the response's own
    /// question — the plan itself never sees domain names.
    fn mutate_dns_payload(&mut self, id: usize, bytes: &mut Vec<u8>) -> Option<DnsMutation> {
        let session = &mut self.sessions[id];
        let sid = session.record.session_id as u64;
        let hostile = session.hostile_dns;
        let mutation = self
            .payload
            .mutate_dns(sid, &mut session.faults, bytes, hostile);
        if let Some(kind) = mutation {
            session.stats.dns_payload_mutations += 1;
            if matches!(kind, DnsMutation::SpfCycle | DnsMutation::CnameChain) {
                if let Some(replacement) = crate::hostile::synthesize_hostile_dns(bytes, kind) {
                    *bytes = replacement;
                }
            }
        }
        mutation
    }

    /// Maybe mutate the next SMTP reply payload of session `id` in
    /// place; true when a mutation was applied.
    fn mutate_smtp_payload(&mut self, id: usize, text: &mut String) -> bool {
        let session = &mut self.sessions[id];
        let sid = session.record.session_id as u64;
        if self
            .payload
            .mutate_smtp(sid, &mut session.faults, text)
            .is_some()
        {
            session.stats.smtp_payload_mutations += 1;
            true
        } else {
            false
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Start(id) => {
                if self.tracer.enabled() {
                    self.trace(id, TraceKind::SessionStart);
                }
                let outputs = self.sessions[id].mta.handle(MtaInput::Connected);
                self.handle_mta_outputs(id, outputs);
            }
            Ev::ToMta(id, text) => {
                if self.tracer.enabled() {
                    let verb = text.split_whitespace().next().unwrap_or("").to_string();
                    self.trace(id, TraceKind::SmtpCommand { verb });
                }
                let mut outputs = Vec::new();
                for line in text.split_inclusive("\r\n") {
                    let line = line.trim_end_matches(['\r', '\n']);
                    outputs.extend(
                        self.sessions[id]
                            .mta
                            .handle(MtaInput::Line(line.to_string())),
                    );
                }
                self.handle_mta_outputs(id, outputs);
            }
            Ev::ToClient(id, text) => {
                let tracing = self.tracer.enabled();
                let mut traced_codes: Vec<u16> = Vec::new();
                let mut traced_reject: Option<String> = None;
                let mut actions = Vec::new();
                let mut rejected = false;
                {
                    let session = &mut self.sessions[id];
                    for line in text.split_inclusive("\r\n") {
                        let line = line.trim_end_matches(['\r', '\n']);
                        if line.is_empty() {
                            continue;
                        }
                        match session.parser.push_line(line) {
                            Ok(Some(reply)) => {
                                if tracing {
                                    traced_codes.push(reply.code);
                                }
                                actions.push(session.client.on_reply(reply));
                            }
                            Ok(None) => {}
                            Err(e) => {
                                // The probe client fails closed on a
                                // reply its parser refuses: classify the
                                // rejection, settle the outcome, and end
                                // the session here (a measurement probe
                                // has no business guessing at garbage).
                                let class = crate::hostile::classify_reply(&e);
                                if tracing {
                                    traced_reject = Some(format!("{class:?}"));
                                }
                                session.stats.malformed.record(class);
                                session.stats.hostile_inputs += 1;
                                session.record.termination = SessionOutcome::HostileInput { class };
                                if session.record.outcome.is_none() {
                                    session.record.outcome = Some(session.client.on_disconnect());
                                }
                                rejected = true;
                                break;
                            }
                        }
                    }
                }
                if tracing {
                    for code in traced_codes {
                        self.trace(id, TraceKind::SmtpReply { code });
                    }
                    if let Some(class) = traced_reject {
                        self.trace(id, TraceKind::SmtpRejected { class });
                    }
                }
                if rejected {
                    // The client hangs up; the MTA observes the
                    // disconnect. Anything it schedules drains as stale
                    // once the session is finished below.
                    let outputs = self.sessions[id].mta.handle(MtaInput::Disconnected);
                    self.handle_mta_outputs(id, outputs);
                    return;
                }
                for action in actions {
                    self.handle_client_action(id, action);
                }
            }
            Ev::ClientPauseDone(id) => {
                let action = self.sessions[id].client.on_pause_elapsed();
                self.handle_client_action(id, action);
            }
            Ev::MtaTimer(id, token) => {
                let outputs = self.sessions[id].mta.handle(MtaInput::Timer { token });
                self.handle_mta_outputs(id, outputs);
            }
            Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6) => {
                // Log with attribution (§4.5). Buffered on the session
                // (not the shard log) so a completed session journals as
                // one self-contained frame; the buffers concatenate into
                // the shard log at completion and a stable canonical
                // sort restores the global order.
                if let Ok(msg) = mailval_dns::Message::from_bytes(&bytes) {
                    if let Some(q) = msg.question() {
                        let record = QueryRecord {
                            time_ms: self.sim.now_ms(),
                            session: self.sessions[id].record.session_id,
                            qname: q.name.clone(),
                            qtype: q.rtype,
                            transport,
                            via_ipv6,
                            attribution: self.server.authority().attribute(&q.name),
                        };
                        self.sessions[id].queries.push(record);
                    }
                }
                // Encode the reply into the shard's scratch buffer
                // (taken out of `self` for the duration so the borrow
                // checker sees disjoint pieces, returned below with its
                // allocation intact for the next reply).
                let mut reply = std::mem::take(&mut self.scratch);
                let delay_ms = self
                    .server
                    .handle_with(&bytes, transport, via_ipv6, &mut reply);
                if let Some(delay_ms) = delay_ms {
                    let rtt = self.one_way_auth(id);
                    let base = delay_ms + rtt;
                    // Hostile-peer payload mutation happens at the
                    // *server* (before the network decides the
                    // datagram's fate), so it applies on TCP too: a
                    // hostile peer is not bound by transport
                    // reliability.
                    let mutation = self.mutate_dns_payload(id, &mut reply);
                    if self.tracer.enabled() {
                        if let Some(kind) = mutation {
                            self.trace(
                                id,
                                TraceKind::FaultDnsMutation {
                                    kind: format!("{kind:?}"),
                                },
                            );
                        }
                    }
                    // Response-side faults (UDP only; TCP is reliable,
                    // and only responses can be meaningfully truncated).
                    let fate = if transport == Transport::Udp {
                        self.datagram_fate(id, true)
                    } else {
                        DatagramFate::Deliver
                    };
                    if self.tracer.enabled() {
                        if let Some(label) = fate_label(fate) {
                            self.trace(
                                id,
                                TraceKind::FaultDatagram {
                                    fate: label,
                                    query_side: false,
                                },
                            );
                        }
                    }
                    match fate {
                        DatagramFate::Drop => {
                            self.sessions[id].stats.dns_dropped += 1;
                            // The armed DnsTimeout will fire the retry.
                        }
                        DatagramFate::Truncate => {
                            self.sessions[id].stats.dns_truncated += 1;
                            if let Some(mangled) = mailval_dns::truncate_response(&reply) {
                                reply = mangled;
                            }
                            let bytes: Arc<[u8]> = reply.as_slice().into();
                            self.sched(base, Ev::DnsReturn(id, core_id, bytes, via_ipv6));
                        }
                        DatagramFate::Duplicate { gap_ms } => {
                            self.sessions[id].stats.dns_duplicated += 1;
                            let bytes: Arc<[u8]> = reply.as_slice().into();
                            self.sched(
                                base,
                                Ev::DnsReturn(id, core_id, Arc::clone(&bytes), via_ipv6),
                            );
                            // The copy arrives after the original; the
                            // resolver sees it as Idle (lookup settled).
                            self.sched(base + gap_ms, Ev::DnsReturn(id, core_id, bytes, via_ipv6));
                        }
                        DatagramFate::Delay { extra_ms } => {
                            self.sessions[id].stats.dns_delayed += 1;
                            let bytes: Arc<[u8]> = reply.as_slice().into();
                            self.sched(
                                base + extra_ms,
                                Ev::DnsReturn(id, core_id, bytes, via_ipv6),
                            );
                        }
                        DatagramFate::Deliver => {
                            let bytes: Arc<[u8]> = reply.as_slice().into();
                            self.sched(base, Ev::DnsReturn(id, core_id, bytes, via_ipv6));
                        }
                    }
                }
                self.scratch = reply;
            }
            Ev::DnsReturn(id, core_id, bytes, via_ipv6) => {
                if self.tracer.enabled() {
                    self.trace(
                        id,
                        TraceKind::DnsRecv {
                            core_id,
                            bytes: bytes.len(),
                        },
                    );
                }
                let now = self.sim.now_ms();
                let event = self.sessions[id]
                    .resolver
                    .on_upstream_response(core_id, &bytes, via_ipv6, now);
                // The resolver failed closed (ServFail) on anything its
                // decoder rejected; classify those rejections. DNS-level
                // garbage never ends a session — the dialogue continues
                // on the failed lookup.
                for e in self.sessions[id].resolver.take_wire_errors() {
                    let class = crate::hostile::classify_wire(&e);
                    self.sessions[id].stats.malformed.record(class);
                }
                self.handle_resolver_event(id, event);
            }
            Ev::DnsTimeout(id, core_id, via_ipv6) => {
                let now = self.sim.now_ms();
                let event = self.sessions[id]
                    .resolver
                    .on_timeout(core_id, via_ipv6, now);
                // A stale timer pop (lookup already settled) comes back
                // Idle — simulator bookkeeping, not a wire fact, so it
                // leaves no trace.
                if self.tracer.enabled() && !matches!(event, ResolverEvent::Idle) {
                    self.trace(id, TraceKind::DnsTimeout { core_id });
                }
                self.handle_resolver_event(id, event);
            }
            Ev::MtaDns(id, qid, outcome) => {
                let outputs = self.sessions[id]
                    .mta
                    .handle(MtaInput::DnsFinished { qid, outcome });
                self.handle_mta_outputs(id, outputs);
            }
            Ev::ServerClosed(id) => {
                if self.tracer.enabled() {
                    self.trace(id, TraceKind::ServerClose);
                }
                // The server-side FIN reached the client. If the client
                // already finished through its own close path the session
                // record is settled; otherwise capture the partial
                // outcome (§6.2: MTA-initiated disconnects, e.g.
                // blacklist rejections that slam the connection).
                let session = &mut self.sessions[id];
                if session.record.outcome.is_none() {
                    session.record.outcome = Some(session.client.on_disconnect());
                    session.record.closed_by_server = true;
                }
            }
            Ev::ConnReset(id) => {
                if self.tracer.enabled() {
                    self.trace(id, TraceKind::ConnReset);
                }
                // An injected reset reached the wire: the segment that
                // carried it is gone and both ends observe a disconnect.
                // Unlike `ServerClosed` this is the *network's* doing,
                // so `closed_by_server` stays false.
                let session = &mut self.sessions[id];
                if session.record.outcome.is_none() {
                    session.record.outcome = Some(session.client.on_disconnect());
                }
                let outputs = self.sessions[id].mta.handle(MtaInput::Disconnected);
                self.handle_mta_outputs(id, outputs);
            }
        }
    }

    fn handle_mta_outputs(&mut self, id: usize, outputs: Vec<MtaOutput>) {
        for output in outputs {
            match output {
                MtaOutput::Smtp(mut text) => {
                    // Hostile-peer reply mutation happens at the server,
                    // before the network decides the segment's fate.
                    if self.mutate_smtp_payload(id, &mut text) && self.tracer.enabled() {
                        self.trace(id, TraceKind::FaultSmtpMutation);
                    }
                    let text: Arc<str> = text.into();
                    // Any stall the MTA declared in this batch delays the
                    // reply segment that follows it.
                    let stall = std::mem::take(&mut self.sessions[id].stall_credit_ms);
                    let delay = self.one_way_client(id) + stall;
                    match self.conn_fault(id) {
                        ConnFault::Reset => {
                            self.sessions[id].stats.conn_resets += 1;
                            if self.tracer.enabled() {
                                self.trace(id, TraceKind::FaultConn { kind: "reset" });
                            }
                            self.sched(delay, Ev::ConnReset(id));
                        }
                        ConnFault::Stall { extra_ms } => {
                            self.sessions[id].stats.conn_stalls += 1;
                            if self.tracer.enabled() {
                                self.trace(id, TraceKind::FaultConn { kind: "stall" });
                            }
                            self.sched(delay + extra_ms, Ev::ToClient(id, text));
                        }
                        ConnFault::Deliver => {
                            self.sched(delay, Ev::ToClient(id, text));
                        }
                    }
                }
                MtaOutput::Stall { delay_ms } => {
                    self.sessions[id].stats.mta_stalls += 1;
                    self.sessions[id].stall_credit_ms += delay_ms;
                    if self.tracer.enabled() {
                        self.trace(id, TraceKind::MtaStall { delay_ms });
                    }
                }
                MtaOutput::Resolve { qid, name, rtype } => {
                    let now = self.sim.now_ms();
                    // Snapshot the cache-hit counter around the resolve
                    // call: a lookup answered synchronously from cache is
                    // marked `cached` so the exporter doesn't draw a
                    // zero-length wire span for it.
                    let traced = if self.tracer.enabled() {
                        Some((name.to_string(), format!("{rtype:?}")))
                    } else {
                        None
                    };
                    let hits_before = self.sessions[id].resolver.cache_hits();
                    let event = self.sessions[id].resolver.resolve(qid, name, rtype, now);
                    if let Some((qname, qtype)) = traced {
                        let cached = self.sessions[id].resolver.cache_hits() > hits_before;
                        self.trace(
                            id,
                            TraceKind::ResolveStart {
                                qid,
                                name: qname,
                                rtype: qtype,
                                cached,
                            },
                        );
                    }
                    self.handle_resolver_event(id, event);
                }
                MtaOutput::SetTimer { token, delay_ms } => {
                    self.sched(delay_ms, Ev::MtaTimer(id, token));
                }
                MtaOutput::Close => {
                    // Propagate the server-initiated disconnect to the
                    // client after the wire delay (it travels with, and
                    // sorts after, any final reply emitted in the same
                    // output batch).
                    let delay = self.one_way_client(id);
                    self.sched(delay, Ev::ServerClosed(id));
                }
                MtaOutput::Event(MtaEvent::MessageAccepted) => {
                    self.sessions[id].record.delivery_time_ms = Some(self.sim.now_ms());
                    if self.tracer.enabled() {
                        self.trace(id, TraceKind::Delivered);
                    }
                }
                MtaOutput::Event(MtaEvent::TempFailed) => {
                    self.sessions[id].stats.tempfails += 1;
                    if self.tracer.enabled() {
                        self.trace(id, TraceKind::TempFail);
                    }
                }
                MtaOutput::Event(MtaEvent::SpfConcluded(result)) if self.tracer.enabled() => {
                    self.trace(
                        id,
                        TraceKind::SpfConcluded {
                            result: format!("{result:?}"),
                        },
                    );
                }
                MtaOutput::Event(MtaEvent::SpfLookups(count)) if self.tracer.enabled() => {
                    self.trace(id, TraceKind::SpfLookups { count });
                }
                MtaOutput::Event(MtaEvent::DkimConcluded(pass)) if self.tracer.enabled() => {
                    self.trace(id, TraceKind::DkimConcluded { pass });
                }
                MtaOutput::Event(MtaEvent::DmarcConcluded(pass)) if self.tracer.enabled() => {
                    self.trace(id, TraceKind::DmarcConcluded { pass });
                }
                MtaOutput::Event(MtaEvent::SpfHostile {
                    cycle_detected,
                    lookups_exhausted,
                }) => {
                    if self.tracer.enabled() {
                        self.trace(
                            id,
                            TraceKind::SpfHostile {
                                cycle: cycle_detected,
                                exhausted: lookups_exhausted,
                            },
                        );
                    }
                    // Classification only: the evaluator already failed
                    // closed with a deterministic PermError and the
                    // session continues. Counted only under an active
                    // payload campaign (or a hostile zone) — the paper's
                    // own probe policies deliberately exceed the lookup
                    // limits, and those measurements are not attacks.
                    if self.payload.is_active() || self.sessions[id].hostile_dns {
                        let stats = &mut self.sessions[id].stats;
                        if cycle_detected {
                            stats.malformed.record(MalformedClass::SpfPolicyLoop);
                        }
                        if lookups_exhausted {
                            stats.malformed.record(MalformedClass::SpfLookupExhausted);
                        }
                    }
                }
                MtaOutput::Event(_) => {}
            }
        }
    }

    fn handle_resolver_event(&mut self, id: usize, event: ResolverEvent) {
        match event {
            ResolverEvent::Finished { qid, outcome } => {
                if matches!(outcome, ResolveOutcome::Timeout) {
                    self.sessions[id].stats.dns_timeouts += 1;
                }
                if self.tracer.enabled() {
                    self.trace(
                        id,
                        TraceKind::ResolveDone {
                            qid,
                            outcome: outcome_label(&outcome),
                        },
                    );
                }
                self.sched(self.config.local_hop_ms, Ev::MtaDns(id, qid, outcome));
            }
            ResolverEvent::Send(UpstreamSend {
                core_id,
                bytes,
                transport,
                via_ipv6,
                timeout_ms,
            }) => {
                let rtt = self.one_way_auth(id);
                // The attempt timeout is ALWAYS armed, whatever happens
                // to the datagram: a dropped query must trip
                // `ResolverCore::on_timeout`'s retry machinery.
                self.sched(timeout_ms, Ev::DnsTimeout(id, core_id, via_ipv6));
                if self.tracer.enabled() {
                    self.trace(
                        id,
                        TraceKind::DnsSend {
                            core_id,
                            transport: match transport {
                                Transport::Udp => "udp",
                                Transport::Tcp => "tcp",
                            },
                            via_ipv6,
                            bytes: bytes.len(),
                        },
                    );
                }
                let bytes: Arc<[u8]> = bytes.into();
                // Query-side faults (UDP only; queries can't truncate).
                let fate = if transport == Transport::Udp {
                    self.datagram_fate(id, false)
                } else {
                    DatagramFate::Deliver
                };
                if self.tracer.enabled() {
                    if let Some(label) = fate_label(fate) {
                        self.trace(
                            id,
                            TraceKind::FaultDatagram {
                                fate: label,
                                query_side: true,
                            },
                        );
                    }
                }
                match fate {
                    DatagramFate::Drop => {
                        self.sessions[id].stats.dns_dropped += 1;
                    }
                    DatagramFate::Duplicate { gap_ms } => {
                        self.sessions[id].stats.dns_duplicated += 1;
                        self.sched(
                            rtt,
                            Ev::DnsArrive(id, core_id, Arc::clone(&bytes), transport, via_ipv6),
                        );
                        self.sched(
                            rtt + gap_ms,
                            Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6),
                        );
                    }
                    DatagramFate::Delay { extra_ms } => {
                        self.sessions[id].stats.dns_delayed += 1;
                        self.sched(
                            rtt + extra_ms,
                            Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6),
                        );
                    }
                    DatagramFate::Deliver | DatagramFate::Truncate => {
                        self.sched(rtt, Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6));
                    }
                }
            }
            ResolverEvent::Idle => {}
        }
    }

    fn handle_client_action(&mut self, id: usize, action: ClientAction) {
        match action {
            ClientAction::Send(bytes) => {
                let delay = self.one_way_client(id);
                // Valid UTF-8 (every command the probe client emits) is
                // wrapped without a second copy; only genuinely invalid
                // bytes pay for the lossy conversion.
                let text: Arc<str> = match String::from_utf8(bytes) {
                    Ok(s) => s.into(),
                    Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned().into(),
                };
                match self.conn_fault(id) {
                    ConnFault::Reset => {
                        self.sessions[id].stats.conn_resets += 1;
                        if self.tracer.enabled() {
                            self.trace(id, TraceKind::FaultConn { kind: "reset" });
                        }
                        self.sched(delay, Ev::ConnReset(id));
                    }
                    ConnFault::Stall { extra_ms } => {
                        self.sessions[id].stats.conn_stalls += 1;
                        if self.tracer.enabled() {
                            self.trace(id, TraceKind::FaultConn { kind: "stall" });
                        }
                        self.sched(delay + extra_ms, Ev::ToMta(id, text));
                    }
                    ConnFault::Deliver => {
                        self.sched(delay, Ev::ToMta(id, text));
                    }
                }
            }
            ClientAction::Pause(0) => {}
            ClientAction::Pause(ms) => {
                if self.tracer.enabled() {
                    self.trace(id, TraceKind::ClientPause { ms });
                }
                self.sched(ms, Ev::ClientPauseDone(id));
            }
            ClientAction::Close(outcome) => {
                if self.tracer.enabled() {
                    self.trace(
                        id,
                        TraceKind::ClientClose {
                            delivered: outcome.delivered,
                            retries: outcome.retries,
                        },
                    );
                }
                self.sessions[id].record.outcome = Some(*outcome);
                let outputs = self.sessions[id].mta.handle(MtaInput::Disconnected);
                self.handle_mta_outputs(id, outputs);
            }
        }
    }
}

/// Trace label for a non-trivial datagram fate (`None` for a normal
/// delivery, which is not a fault and leaves no trace).
fn fate_label(fate: DatagramFate) -> Option<&'static str> {
    match fate {
        DatagramFate::Deliver => None,
        DatagramFate::Drop => Some("drop"),
        DatagramFate::Truncate => Some("truncate"),
        DatagramFate::Duplicate { .. } => Some("duplicate"),
        DatagramFate::Delay { .. } => Some("delay"),
    }
}

/// Trace label for a lookup outcome.
fn outcome_label(outcome: &ResolveOutcome) -> &'static str {
    match outcome {
        ResolveOutcome::Records(_) => "records",
        ResolveOutcome::NoData => "nodata",
        ResolveOutcome::NxDomain => "nxdomain",
        ResolveOutcome::Timeout => "timeout",
        ResolveOutcome::ServFail => "servfail",
    }
}
