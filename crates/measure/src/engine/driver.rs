//! The per-shard session engine: a virtual-time event loop driving any
//! number of **independent** probe sessions against the shared
//! authoritative server.

use super::event::Ev;
use super::session::{LiveSession, SessionRecord};
use crate::apparatus::{QueryLog, QueryRecord, SynthesizingAuthority};
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::server::{ServerCore, Transport};
use mailval_mta::actor::{MtaEvent, MtaInput, MtaOutput};
use mailval_mta::resolver::{ResolverEvent, UpstreamSend};
use mailval_simnet::{
    ConnFault, DatagramFate, FaultConfig, FaultPlan, FaultStats, LatencyModel, Simulator,
};
use mailval_smtp::client::ClientAction;
use std::net::IpAddr;

/// Engine wiring that is identical for every session: the latency model
/// and the fixed apparatus endpoints.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Network latency model (injectable: tests swap in zero-latency or
    /// adversarial models without touching the driver).
    pub latency: LatencyModel,
    /// Fault-injection knobs; the default injects nothing. Combined with
    /// `latency.loss_probability` (the loss oracle) into a [`FaultPlan`].
    pub faults: FaultConfig,
    /// The probe client's source address.
    pub client_ip: IpAddr,
    /// The authoritative server's address.
    pub auth_ip: IpAddr,
    /// Local validator↔resolver hop, ms.
    pub local_hop_ms: u64,
}

/// What one engine run produced.
pub struct EngineOutput {
    /// The shard's query log, already in canonical `(time_ms, session)`
    /// order.
    pub log: QueryLog,
    /// Finished session records, in the shard's insertion order.
    pub records: Vec<SessionRecord>,
    /// Run counters.
    pub stats: EngineStats,
}

/// Lightweight per-engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Sessions driven.
    pub sessions: usize,
    /// Virtual events dispatched.
    pub events: u64,
    /// Queries logged at the authoritative server.
    pub queries_logged: u64,
    /// Final virtual clock value, ms.
    pub virtual_ms: u64,
    /// Fault-injection counters (all zero when no faults configured).
    pub faults: FaultStats,
}

/// A virtual-time driver for a set of sessions that never interact.
///
/// This is the unit of parallelism: a campaign partitions its sessions
/// into shards and runs one `SessionEngine` per shard, all borrowing the
/// same [`ServerCore`] (whose handling is `&self`-only and stateless per
/// query). The clock is injectable via [`SessionEngine::with_clock`];
/// the default starts at virtual zero.
pub struct SessionEngine<'a> {
    sim: Simulator<Ev>,
    sessions: Vec<LiveSession>,
    server: &'a ServerCore<SynthesizingAuthority>,
    log: QueryLog,
    config: EngineConfig,
    plan: FaultPlan,
    faults: FaultStats,
}

impl<'a> SessionEngine<'a> {
    /// A fresh engine at virtual time zero.
    pub fn new(server: &'a ServerCore<SynthesizingAuthority>, config: EngineConfig) -> Self {
        Self::with_clock(server, config, Simulator::new())
    }

    /// An engine over an injected clock (e.g. one pre-advanced to a
    /// campaign epoch, or shared-sequence test setups).
    pub fn with_clock(
        server: &'a ServerCore<SynthesizingAuthority>,
        config: EngineConfig,
        clock: Simulator<Ev>,
    ) -> Self {
        let plan = FaultPlan::new(config.faults.clone(), config.latency.clone());
        SessionEngine {
            sim: clock,
            sessions: Vec::new(),
            server,
            log: QueryLog::new(),
            config,
            plan,
            faults: FaultStats::default(),
        }
    }

    /// Add a session and schedule its connection establishment at
    /// `start_ms` (absolute virtual time).
    pub fn add_session(&mut self, mut session: LiveSession, start_ms: u64) {
        let local = self.sessions.len();
        session.record.start_ms = start_ms;
        self.sessions.push(session);
        self.sim.schedule_at(start_ms, Ev::Start(local));
    }

    /// Number of sessions added so far.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drive every session to completion and return the shard's output.
    ///
    /// Per-session failures are *contained*: a panic while dispatching an
    /// event (e.g. a poisoned MTA implementation) marks that session's
    /// record with an error outcome and stops dispatching to it, instead
    /// of killing the whole shard.
    pub fn run(mut self) -> EngineOutput {
        while let Some((_, ev)) = self.sim.next() {
            let id = ev.session();
            if self.sessions[id].record.error.is_some() {
                continue; // poisoned session: drop its remaining events
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.dispatch(ev);
            }));
            if let Err(payload) = result {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                self.sessions[id].record.error = Some(msg);
                self.faults.contained_panics += 1;
            }
        }
        self.faults.client_retries = self
            .sessions
            .iter()
            .filter_map(|s| s.record.outcome.as_ref())
            .map(|o| u64::from(o.retries))
            .sum();
        let stats = EngineStats {
            sessions: self.sessions.len(),
            events: self.sim.dispatched,
            queries_logged: self.log.records.len() as u64,
            virtual_ms: self.sim.now_ms(),
            faults: self.faults,
        };
        self.log.sort_canonical();
        EngineOutput {
            log: self.log,
            records: self.sessions.into_iter().map(|s| s.record).collect(),
            stats,
        }
    }

    fn one_way_client(&self, id: usize) -> u64 {
        self.config
            .latency
            .one_way_ms(&self.config.client_ip, &self.sessions[id].mta_ip)
    }

    fn one_way_auth(&self, id: usize) -> u64 {
        self.config
            .latency
            .one_way_ms(&self.sessions[id].mta_ip, &self.config.auth_ip)
    }

    /// The fate of the next UDP datagram of session `id`. Keyed by the
    /// campaign-global session id and the session's own datagram cursor,
    /// so the decision is independent of shard count and event
    /// interleaving.
    fn datagram_fate(&mut self, id: usize, may_truncate: bool) -> DatagramFate {
        let session = &mut self.sessions[id];
        let sid = session.record.session_id as u64;
        self.plan
            .datagram_fate(sid, &mut session.faults, may_truncate)
    }

    /// The fate of the next SMTP segment of session `id`.
    fn conn_fault(&mut self, id: usize) -> ConnFault {
        let session = &mut self.sessions[id];
        let sid = session.record.session_id as u64;
        self.plan.conn_fault(sid, &mut session.faults)
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Start(id) => {
                let outputs = self.sessions[id].mta.handle(MtaInput::Connected);
                self.handle_mta_outputs(id, outputs);
            }
            Ev::ToMta(id, text) => {
                let mut outputs = Vec::new();
                for line in text.split_inclusive("\r\n") {
                    let line = line.trim_end_matches(['\r', '\n']);
                    outputs.extend(
                        self.sessions[id]
                            .mta
                            .handle(MtaInput::Line(line.to_string())),
                    );
                }
                self.handle_mta_outputs(id, outputs);
            }
            Ev::ToClient(id, text) => {
                let mut actions = Vec::new();
                {
                    let session = &mut self.sessions[id];
                    for line in text.split_inclusive("\r\n") {
                        let line = line.trim_end_matches(['\r', '\n']);
                        if line.is_empty() {
                            continue;
                        }
                        if let Ok(Some(reply)) = session.parser.push_line(line) {
                            actions.push(session.client.on_reply(reply));
                        }
                    }
                }
                for action in actions {
                    self.handle_client_action(id, action);
                }
            }
            Ev::ClientPauseDone(id) => {
                let action = self.sessions[id].client.on_pause_elapsed();
                self.handle_client_action(id, action);
            }
            Ev::MtaTimer(id, token) => {
                let outputs = self.sessions[id].mta.handle(MtaInput::Timer { token });
                self.handle_mta_outputs(id, outputs);
            }
            Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6) => {
                // Log with attribution (§4.5).
                if let Ok(msg) = mailval_dns::Message::from_bytes(&bytes) {
                    if let Some(q) = msg.question() {
                        self.log.push(QueryRecord {
                            time_ms: self.sim.now_ms(),
                            session: self.sessions[id].record.session_id,
                            qname: q.name.clone(),
                            qtype: q.rtype,
                            transport,
                            via_ipv6,
                            attribution: self.server.authority().attribute(&q.name),
                        });
                    }
                }
                if let Some(reply) = self.server.handle(&bytes, transport, via_ipv6) {
                    let rtt = self.one_way_auth(id);
                    let base = reply.delay_ms + rtt;
                    let mut bytes = reply.bytes;
                    // Response-side faults (UDP only; TCP is reliable,
                    // and only responses can be meaningfully truncated).
                    let fate = if transport == Transport::Udp {
                        self.datagram_fate(id, true)
                    } else {
                        DatagramFate::Deliver
                    };
                    match fate {
                        DatagramFate::Drop => {
                            self.faults.dns_dropped += 1;
                            // The armed DnsTimeout will fire the retry.
                        }
                        DatagramFate::Truncate => {
                            self.faults.dns_truncated += 1;
                            if let Some(mangled) = mailval_dns::truncate_response(&bytes) {
                                bytes = mangled;
                            }
                            self.sim
                                .schedule(base, Ev::DnsReturn(id, core_id, bytes, via_ipv6));
                        }
                        DatagramFate::Duplicate { gap_ms } => {
                            self.faults.dns_duplicated += 1;
                            self.sim.schedule(
                                base,
                                Ev::DnsReturn(id, core_id, bytes.clone(), via_ipv6),
                            );
                            // The copy arrives after the original; the
                            // resolver sees it as Idle (lookup settled).
                            self.sim.schedule(
                                base + gap_ms,
                                Ev::DnsReturn(id, core_id, bytes, via_ipv6),
                            );
                        }
                        DatagramFate::Delay { extra_ms } => {
                            self.faults.dns_delayed += 1;
                            self.sim.schedule(
                                base + extra_ms,
                                Ev::DnsReturn(id, core_id, bytes, via_ipv6),
                            );
                        }
                        DatagramFate::Deliver => {
                            self.sim
                                .schedule(base, Ev::DnsReturn(id, core_id, bytes, via_ipv6));
                        }
                    }
                }
            }
            Ev::DnsReturn(id, core_id, bytes, via_ipv6) => {
                let now = self.sim.now_ms();
                let event = self.sessions[id]
                    .resolver
                    .on_upstream_response(core_id, &bytes, via_ipv6, now);
                self.handle_resolver_event(id, event);
            }
            Ev::DnsTimeout(id, core_id, via_ipv6) => {
                let now = self.sim.now_ms();
                let event = self.sessions[id]
                    .resolver
                    .on_timeout(core_id, via_ipv6, now);
                self.handle_resolver_event(id, event);
            }
            Ev::MtaDns(id, qid, outcome) => {
                let outputs = self.sessions[id]
                    .mta
                    .handle(MtaInput::DnsFinished { qid, outcome });
                self.handle_mta_outputs(id, outputs);
            }
            Ev::ServerClosed(id) => {
                // The server-side FIN reached the client. If the client
                // already finished through its own close path the session
                // record is settled; otherwise capture the partial
                // outcome (§6.2: MTA-initiated disconnects, e.g.
                // blacklist rejections that slam the connection).
                let session = &mut self.sessions[id];
                if session.record.outcome.is_none() {
                    session.record.outcome = Some(session.client.on_disconnect());
                    session.record.closed_by_server = true;
                }
            }
            Ev::ConnReset(id) => {
                // An injected reset reached the wire: the segment that
                // carried it is gone and both ends observe a disconnect.
                // Unlike `ServerClosed` this is the *network's* doing,
                // so `closed_by_server` stays false.
                let session = &mut self.sessions[id];
                if session.record.outcome.is_none() {
                    session.record.outcome = Some(session.client.on_disconnect());
                }
                let outputs = self.sessions[id].mta.handle(MtaInput::Disconnected);
                self.handle_mta_outputs(id, outputs);
            }
        }
    }

    fn handle_mta_outputs(&mut self, id: usize, outputs: Vec<MtaOutput>) {
        for output in outputs {
            match output {
                MtaOutput::Smtp(text) => {
                    // Any stall the MTA declared in this batch delays the
                    // reply segment that follows it.
                    let stall = std::mem::take(&mut self.sessions[id].stall_credit_ms);
                    let delay = self.one_way_client(id) + stall;
                    match self.conn_fault(id) {
                        ConnFault::Reset => {
                            self.faults.conn_resets += 1;
                            self.sim.schedule(delay, Ev::ConnReset(id));
                        }
                        ConnFault::Stall { extra_ms } => {
                            self.faults.conn_stalls += 1;
                            self.sim.schedule(delay + extra_ms, Ev::ToClient(id, text));
                        }
                        ConnFault::Deliver => {
                            self.sim.schedule(delay, Ev::ToClient(id, text));
                        }
                    }
                }
                MtaOutput::Stall { delay_ms } => {
                    self.faults.mta_stalls += 1;
                    self.sessions[id].stall_credit_ms += delay_ms;
                }
                MtaOutput::Resolve { qid, name, rtype } => {
                    let now = self.sim.now_ms();
                    let event = self.sessions[id].resolver.resolve(qid, name, rtype, now);
                    self.handle_resolver_event(id, event);
                }
                MtaOutput::SetTimer { token, delay_ms } => {
                    self.sim.schedule(delay_ms, Ev::MtaTimer(id, token));
                }
                MtaOutput::Close => {
                    // Propagate the server-initiated disconnect to the
                    // client after the wire delay (it travels with, and
                    // sorts after, any final reply emitted in the same
                    // output batch).
                    let delay = self.one_way_client(id);
                    self.sim.schedule(delay, Ev::ServerClosed(id));
                }
                MtaOutput::Event(MtaEvent::MessageAccepted) => {
                    self.sessions[id].record.delivery_time_ms = Some(self.sim.now_ms());
                }
                MtaOutput::Event(MtaEvent::TempFailed) => {
                    self.faults.tempfails += 1;
                }
                MtaOutput::Event(_) => {}
            }
        }
    }

    fn handle_resolver_event(&mut self, id: usize, event: ResolverEvent) {
        match event {
            ResolverEvent::Finished { qid, outcome } => {
                if matches!(outcome, ResolveOutcome::Timeout) {
                    self.faults.dns_timeouts += 1;
                }
                self.sim
                    .schedule(self.config.local_hop_ms, Ev::MtaDns(id, qid, outcome));
            }
            ResolverEvent::Send(UpstreamSend {
                core_id,
                bytes,
                transport,
                via_ipv6,
                timeout_ms,
            }) => {
                let rtt = self.one_way_auth(id);
                // The attempt timeout is ALWAYS armed, whatever happens
                // to the datagram: a dropped query must trip
                // `ResolverCore::on_timeout`'s retry machinery.
                self.sim
                    .schedule(timeout_ms, Ev::DnsTimeout(id, core_id, via_ipv6));
                // Query-side faults (UDP only; queries can't truncate).
                let fate = if transport == Transport::Udp {
                    self.datagram_fate(id, false)
                } else {
                    DatagramFate::Deliver
                };
                match fate {
                    DatagramFate::Drop => {
                        self.faults.dns_dropped += 1;
                    }
                    DatagramFate::Duplicate { gap_ms } => {
                        self.faults.dns_duplicated += 1;
                        self.sim.schedule(
                            rtt,
                            Ev::DnsArrive(id, core_id, bytes.clone(), transport, via_ipv6),
                        );
                        self.sim.schedule(
                            rtt + gap_ms,
                            Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6),
                        );
                    }
                    DatagramFate::Delay { extra_ms } => {
                        self.faults.dns_delayed += 1;
                        self.sim.schedule(
                            rtt + extra_ms,
                            Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6),
                        );
                    }
                    DatagramFate::Deliver | DatagramFate::Truncate => {
                        self.sim
                            .schedule(rtt, Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6));
                    }
                }
            }
            ResolverEvent::Idle => {}
        }
    }

    fn handle_client_action(&mut self, id: usize, action: ClientAction) {
        match action {
            ClientAction::Send(bytes) => {
                let delay = self.one_way_client(id);
                let text = String::from_utf8_lossy(&bytes).into_owned();
                match self.conn_fault(id) {
                    ConnFault::Reset => {
                        self.faults.conn_resets += 1;
                        self.sim.schedule(delay, Ev::ConnReset(id));
                    }
                    ConnFault::Stall { extra_ms } => {
                        self.faults.conn_stalls += 1;
                        self.sim.schedule(delay + extra_ms, Ev::ToMta(id, text));
                    }
                    ConnFault::Deliver => {
                        self.sim.schedule(delay, Ev::ToMta(id, text));
                    }
                }
            }
            ClientAction::Pause(0) => {}
            ClientAction::Pause(ms) => {
                self.sim.schedule(ms, Ev::ClientPauseDone(id));
            }
            ClientAction::Close(outcome) => {
                self.sessions[id].record.outcome = Some(*outcome);
                let outputs = self.sessions[id].mta.handle(MtaInput::Disconnected);
                self.handle_mta_outputs(id, outputs);
            }
        }
    }
}
