//! The session-engine layer: a per-shard virtual-time driver.
//!
//! Extracted from the former monolithic `experiment.rs` so the event
//! loop is reusable and testable in isolation:
//!
//! * [`Ev`] — the event vocabulary carried by the simulator;
//! * [`LiveSession`] / [`SessionRecord`] — one probe↔MTA connection and
//!   its durable output;
//! * [`SessionEngine`] — the driver: owns one clock and any number of
//!   *independent* sessions, borrows the shared authoritative server,
//!   and produces a canonically-ordered [`crate::apparatus::QueryLog`].
//!
//! Sessions never exchange events, so a campaign can partition them
//! into shards (`crate::shard`) and run one engine per shard on its own
//! thread; the per-shard outputs merge deterministically.

mod driver;
mod event;
mod session;

pub use driver::{
    EngineConfig, EngineOutput, EngineStats, MemoryBudget, SessionBudget, SessionEngine,
};
pub use event::Ev;
pub use session::{LiveSession, SessionOutcome, SessionRecord};
