//! The engine's event vocabulary.

use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::server::Transport;
use std::sync::Arc;

/// One scheduled occurrence inside a [`crate::engine::SessionEngine`].
///
/// The `usize` in every variant is the session's **local index** within
/// its engine (not the campaign-global id); an engine only ever
/// dispatches events to sessions it owns, so shards need no coordination.
///
/// Wire payloads ride as `Arc<[u8]>` / `Arc<str>`: an event that fans
/// out (a duplicated datagram) clones a pointer, not the payload, and
/// the bytes a shard encodes are the bytes every hop observes.
pub enum Ev {
    /// TCP established: the MTA emits its greeting.
    Start(usize),
    /// Client bytes arriving at the MTA.
    ToMta(usize, Arc<str>),
    /// MTA reply text arriving at the probe client.
    ToClient(usize, Arc<str>),
    /// The probe client's inter-command pause elapsed.
    ClientPauseDone(usize),
    /// An MTA-armed timer fired.
    MtaTimer(usize, u64),
    /// Resolver datagram arriving at the authoritative server.
    DnsArrive(usize, u16, Arc<[u8]>, Transport, bool),
    /// Server response arriving back at the resolver.
    DnsReturn(usize, u16, Arc<[u8]>, bool),
    /// Resolver attempt timeout.
    DnsTimeout(usize, u16, bool),
    /// Resolver finished a lookup for the MTA.
    MtaDns(usize, u64, ResolveOutcome),
    /// The MTA-side close reached the client (server-initiated
    /// disconnect, e.g. an SMTP `ReplyAndClose`).
    ServerClosed(usize),
    /// An injected connection reset reached both ends: the in-flight
    /// segment is lost and the session is torn down.
    ConnReset(usize),
}

impl Ev {
    /// Bytes of shared payload (`Arc<[u8]>` / `Arc<str>`) this event
    /// keeps alive while queued — the unit the engine's
    /// [`crate::engine::MemoryBudget`] accounts in.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Ev::ToMta(_, s) | Ev::ToClient(_, s) => s.len() as u64,
            Ev::DnsArrive(_, _, b, _, _) | Ev::DnsReturn(_, _, b, _) => b.len() as u64,
            _ => 0,
        }
    }

    /// The local session index this event belongs to.
    pub fn session(&self) -> usize {
        match *self {
            Ev::Start(id)
            | Ev::ToMta(id, _)
            | Ev::ToClient(id, _)
            | Ev::ClientPauseDone(id)
            | Ev::MtaTimer(id, _)
            | Ev::DnsArrive(id, _, _, _, _)
            | Ev::DnsReturn(id, _, _, _)
            | Ev::DnsTimeout(id, _, _)
            | Ev::MtaDns(id, _, _)
            | Ev::ServerClosed(id)
            | Ev::ConnReset(id) => id,
        }
    }
}
