//! Virtual-time campaign drivers (§4.6 of the paper).
//!
//! Three campaigns share one event loop:
//!
//! * **NotifyEmail** — one legitimate, DKIM-signed delivery per domain to
//!   its first MX host; SPF/DKIM/DMARC designed to *pass*.
//! * **NotifyMX** — every MX host of the (re-resolved) NotifyEmail
//!   domains probed with every configured test policy; the client is by
//!   now blacklisted (§6.2); sessions abort before any message data.
//! * **TwoWeekMX** — same probing against the high-demand dataset, with
//!   guessed recipients (§6.3).
//!
//! The loop carries real DNS datagrams and real SMTP lines between the
//! probe client, the receiving MTAs, their resolvers and the apparatus's
//! synthesizing authoritative server, with per-pair latencies and
//! server-side response delays, and logs every query that arrives — the
//! raw material for every table in `analysis`.

use crate::apparatus::{QueryLog, QueryRecord, SynthesizingAuthority};
use crate::names::NameScheme;
use crate::policies::SynthAddrs;
use mailval_crypto::bigint::SplitMix64;
use mailval_crypto::rsa::RsaKeyPair;
use mailval_datasets::Population;
use mailval_dkim::key::DkimKeyRecord;
use mailval_dkim::sign::{sign_message, SignConfig};
use mailval_dmarc::record::DmarcRecord;
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::server::{ServerCore, Transport};
use mailval_dns::Name;
use mailval_mta::actor::{ConnContext, MtaActor, MtaEvent, MtaInput, MtaOutput};
use mailval_mta::profile::MtaProfile;
use mailval_mta::resolver::{ResolverActor, ResolverEvent, UpstreamSend};
use mailval_simnet::{LatencyModel, SimRng, Simulator};
use mailval_smtp::client::{
    probe_usernames, ClientAction, ClientConfig, ClientOutcome, ClientSession,
};
use mailval_smtp::mail::MailMessage;
use mailval_smtp::reply::ReplyParser;
use mailval_smtp::EmailAddress;
use std::collections::HashMap;
use std::net::IpAddr;

/// Which campaign to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Legitimate notification deliveries (Oct 2020 in the paper).
    NotifyEmail,
    /// Probing of all NotifyEmail MTAs (Jun 2021).
    NotifyMx,
    /// Probing of the TwoWeekMX MTAs (Apr 2021).
    TwoWeekMx,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Which campaign.
    pub kind: CampaignKind,
    /// Test ids to run (probe campaigns only; NotifyEmail ignores this).
    pub tests: Vec<&'static str>,
    /// RNG seed (probing order, DKIM key).
    pub seed: u64,
    /// The probe's inter-command sleep (§4.6; 15 000 ms in the paper —
    /// reduce for quick runs; timing analyses assume the paper value).
    pub probe_pause_ms: u64,
    /// Network latency model.
    pub latency: LatencyModel,
}

impl CampaignConfig {
    /// Paper-faithful settings for a campaign kind.
    pub fn paper(kind: CampaignKind, seed: u64) -> CampaignConfig {
        CampaignConfig {
            kind,
            tests: crate::policies::ALL_TESTS.iter().map(|t| t.id).collect(),
            seed,
            probe_pause_ms: 15_000,
            latency: LatencyModel::default(),
        }
    }
}

/// Per-session record.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Index of the target MTA host in the population.
    pub host_index: usize,
    /// The recipient domain's index.
    pub domain_index: usize,
    /// Test id (`None` for NotifyEmail deliveries).
    pub testid: Option<&'static str>,
    /// Virtual start time.
    pub start_ms: u64,
    /// The SMTP outcome.
    pub outcome: Option<ClientOutcome>,
    /// When the message was accepted for delivery (NotifyEmail).
    pub delivery_time_ms: Option<u64>,
}

/// Everything a campaign produced.
pub struct CampaignResult {
    /// The apparatus query log.
    pub log: QueryLog,
    /// Per-session records.
    pub sessions: Vec<SessionRecord>,
    /// Total virtual events dispatched.
    pub events: u64,
}

/// Sample behavior profiles for a population's hosts, deterministically.
///
/// Profiles are sampled **per AS pool**, not per host: all of a mail
/// operator's MTAs run the same software with the same configuration
/// (every Google MTA behaves like every other Google MTA). This is what
/// makes the paper's per-domain and per-MTA validation rates nearly
/// equal (Table 5) even though domains list several MX hosts. Quality
/// shifts per the Table 7 gradient: shared providers and operators
/// serving Alexa-ranked domains validate more.
pub fn sample_host_profiles(pop: &Population, seed: u64) -> Vec<MtaProfile> {
    let mut root = SimRng::new(seed ^ 0x9d7f_00d5);
    // Best Alexa tier and provider status per AS (the operator unit).
    let mut as_alexa: HashMap<u32, u8> = HashMap::new();
    let mut as_provider: HashMap<u32, bool> = HashMap::new();
    for d in &pop.domains {
        let tier = match d.alexa {
            mailval_datasets::alexa::AlexaTier::Top1K => 2,
            mailval_datasets::alexa::AlexaTier::Top1M => 1,
            mailval_datasets::alexa::AlexaTier::Unlisted => 0,
        };
        for &h in &d.host_indices {
            let asn = pop.hosts[h].asn;
            let t = as_alexa.entry(asn).or_default();
            *t = (*t).max(tier);
            let p = as_provider.entry(asn).or_default();
            *p = *p || d.shared_provider;
        }
    }
    let mut per_as: HashMap<u32, MtaProfile> = HashMap::new();
    pop.hosts
        .iter()
        .map(|host| {
            per_as
                .entry(host.asn)
                .or_insert_with(|| {
                    let mut rng = root.fork(host.asn as u64);
                    let mut quality: f64 = match as_alexa.get(&host.asn).copied().unwrap_or(0)
                    {
                        2 => 1.2,
                        1 => 0.5,
                        _ => 0.0,
                    };
                    if as_provider.get(&host.asn).copied().unwrap_or(false) {
                        quality = quality.max(0.9);
                    }
                    MtaProfile::sample(&mut rng, quality)
                })
                .clone()
        })
        .collect()
}

/// Re-sample a fraction of operators' profiles, modeling configuration
/// drift between campaigns (NotifyEmail ran in Oct 2020, NotifyMX nine
/// months later — §6.2's inconsistency analysis found ~5% of status
/// changes in the *opposite* direction, i.e. operators that newly
/// deployed validation in between).
pub fn drift_profiles(
    pop: &Population,
    profiles: &[MtaProfile],
    fraction: f64,
    seed: u64,
) -> Vec<MtaProfile> {
    let mut root = SimRng::new(seed ^ 0xd21f7);
    // Decide drift per AS so operator uniformity is preserved.
    let mut drifted: HashMap<u32, MtaProfile> = HashMap::new();
    let mut decided: HashMap<u32, bool> = HashMap::new();
    pop.hosts
        .iter()
        .zip(profiles)
        .map(|(host, profile)| {
            let drifts = *decided
                .entry(host.asn)
                .or_insert_with(|| root.fork(host.asn as u64).chance(fraction));
            if drifts {
                drifted
                    .entry(host.asn)
                    .or_insert_with(|| {
                        let mut rng = root.fork(host.asn as u64 ^ 0xfeed);
                        MtaProfile::sample(&mut rng, 0.0)
                    })
                    .clone()
            } else {
                profile.clone()
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

enum Ev {
    Start(usize),
    ToMta(usize, String),
    ToClient(usize, String),
    ClientPauseDone(usize),
    MtaTimer(usize, u64),
    /// Resolver datagram arriving at the authoritative server.
    DnsArrive(usize, u16, Vec<u8>, Transport, bool),
    /// Server response arriving back at the resolver.
    DnsReturn(usize, u16, Vec<u8>, bool),
    /// Resolver attempt timeout.
    DnsTimeout(usize, u16, bool),
    /// Resolver finished a lookup for the MTA.
    MtaDns(usize, u64, ResolveOutcome),
}

struct LiveSession {
    record: SessionRecord,
    client: ClientSession,
    parser: ReplyParser,
    mta: MtaActor,
    resolver: ResolverActor,
    mta_ip: IpAddr,
}

struct Driver<'a> {
    sim: Simulator<Ev>,
    sessions: Vec<LiveSession>,
    server: &'a ServerCore<SynthesizingAuthority>,
    log: QueryLog,
    latency: LatencyModel,
    client_ip: IpAddr,
    auth_ip: IpAddr,
    /// Local validator↔resolver hop, ms.
    local_hop_ms: u64,
}

impl Driver<'_> {
    fn one_way_client(&self, id: usize) -> u64 {
        self.latency
            .one_way_ms(&self.client_ip, &self.sessions[id].mta_ip)
    }

    fn one_way_auth(&self, id: usize) -> u64 {
        self.latency
            .one_way_ms(&self.sessions[id].mta_ip, &self.auth_ip)
    }

    fn run(&mut self) {
        while let Some((_, ev)) = self.sim.next() {
            match ev {
                Ev::Start(id) => {
                    let outputs = self.sessions[id].mta.handle(MtaInput::Connected);
                    self.handle_mta_outputs(id, outputs);
                }
                Ev::ToMta(id, text) => {
                    let mut outputs = Vec::new();
                    for line in text.split_inclusive("\r\n") {
                        let line = line.trim_end_matches(['\r', '\n']);
                        outputs.extend(
                            self.sessions[id].mta.handle(MtaInput::Line(line.to_string())),
                        );
                    }
                    self.handle_mta_outputs(id, outputs);
                }
                Ev::ToClient(id, text) => {
                    let mut actions = Vec::new();
                    {
                        let session = &mut self.sessions[id];
                        for line in text.split_inclusive("\r\n") {
                            let line = line.trim_end_matches(['\r', '\n']);
                            if line.is_empty() {
                                continue;
                            }
                            if let Ok(Some(reply)) = session.parser.push_line(line) {
                                actions.push(session.client.on_reply(reply));
                            }
                        }
                    }
                    for action in actions {
                        self.handle_client_action(id, action);
                    }
                }
                Ev::ClientPauseDone(id) => {
                    let action = self.sessions[id].client.on_pause_elapsed();
                    self.handle_client_action(id, action);
                }
                Ev::MtaTimer(id, token) => {
                    let outputs = self.sessions[id].mta.handle(MtaInput::Timer { token });
                    self.handle_mta_outputs(id, outputs);
                }
                Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6) => {
                    // Log with attribution (§4.5).
                    if let Ok(msg) = mailval_dns::Message::from_bytes(&bytes) {
                        if let Some(q) = msg.question() {
                            self.log.push(QueryRecord {
                                time_ms: self.sim.now_ms(),
                                qname: q.name.clone(),
                                qtype: q.rtype,
                                transport,
                                via_ipv6,
                                attribution: self.server.authority().attribute(&q.name),
                            });
                        }
                    }
                    if let Some(reply) = self.server.handle(&bytes, transport, via_ipv6) {
                        let rtt = self.one_way_auth(id);
                        self.sim.schedule(
                            reply.delay_ms + rtt,
                            Ev::DnsReturn(id, core_id, reply.bytes, via_ipv6),
                        );
                    }
                }
                Ev::DnsReturn(id, core_id, bytes, via_ipv6) => {
                    let now = self.sim.now_ms();
                    let event = self.sessions[id]
                        .resolver
                        .on_upstream_response(core_id, &bytes, via_ipv6, now);
                    self.handle_resolver_event(id, event);
                }
                Ev::DnsTimeout(id, core_id, via_ipv6) => {
                    let now = self.sim.now_ms();
                    let event = self.sessions[id].resolver.on_timeout(core_id, via_ipv6, now);
                    self.handle_resolver_event(id, event);
                }
                Ev::MtaDns(id, qid, outcome) => {
                    let outputs = self.sessions[id]
                        .mta
                        .handle(MtaInput::DnsFinished { qid, outcome });
                    self.handle_mta_outputs(id, outputs);
                }
            }
        }
    }

    fn handle_mta_outputs(&mut self, id: usize, outputs: Vec<MtaOutput>) {
        for output in outputs {
            match output {
                MtaOutput::Smtp(text) => {
                    let delay = self.one_way_client(id);
                    self.sim.schedule(delay, Ev::ToClient(id, text));
                }
                MtaOutput::Resolve { qid, name, rtype } => {
                    let now = self.sim.now_ms();
                    let event = self.sessions[id].resolver.resolve(qid, name, rtype, now);
                    self.handle_resolver_event(id, event);
                }
                MtaOutput::SetTimer { token, delay_ms } => {
                    self.sim.schedule(delay_ms, Ev::MtaTimer(id, token));
                }
                MtaOutput::Close => {}
                MtaOutput::Event(MtaEvent::MessageAccepted) => {
                    self.sessions[id].record.delivery_time_ms = Some(self.sim.now_ms());
                }
                MtaOutput::Event(_) => {}
            }
        }
    }

    fn handle_resolver_event(&mut self, id: usize, event: ResolverEvent) {
        match event {
            ResolverEvent::Finished { qid, outcome } => {
                self.sim
                    .schedule(self.local_hop_ms, Ev::MtaDns(id, qid, outcome));
            }
            ResolverEvent::Send(UpstreamSend {
                core_id,
                bytes,
                transport,
                via_ipv6,
                timeout_ms,
            }) => {
                let rtt = self.one_way_auth(id);
                self.sim
                    .schedule(rtt, Ev::DnsArrive(id, core_id, bytes, transport, via_ipv6));
                self.sim
                    .schedule(timeout_ms, Ev::DnsTimeout(id, core_id, via_ipv6));
            }
            ResolverEvent::Idle => {}
        }
    }

    fn handle_client_action(&mut self, id: usize, action: ClientAction) {
        match action {
            ClientAction::Send(bytes) => {
                let delay = self.one_way_client(id);
                self.sim.schedule(
                    delay,
                    Ev::ToMta(id, String::from_utf8_lossy(&bytes).into_owned()),
                );
            }
            ClientAction::Pause(0) => {}
            ClientAction::Pause(ms) => {
                self.sim.schedule(ms, Ev::ClientPauseDone(id));
            }
            ClientAction::Close(outcome) => {
                self.sessions[id].record.outcome = Some(*outcome);
                let outputs = self.sessions[id].mta.handle(MtaInput::Disconnected);
                self.handle_mta_outputs(id, outputs);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Campaign assembly
// ---------------------------------------------------------------------------

/// Run a campaign against a population with pre-sampled host profiles
/// (use [`sample_host_profiles`]; the same profiles must be reused
/// across NotifyEmail and NotifyMX for the §6.2 consistency analysis).
pub fn run_campaign(
    config: &CampaignConfig,
    pop: &Population,
    profiles: &[MtaProfile],
) -> CampaignResult {
    assert_eq!(profiles.len(), pop.hosts.len(), "one profile per host");
    let scheme = NameScheme::default();
    let addrs = SynthAddrs::default();

    // The apparatus's DKIM key pair (one key for all From domains; the
    // synthesized key records all carry it).
    let mut keyrng = SplitMix64::new(config.seed ^ 0x444b_4559);
    let keypair = RsaKeyPair::generate(1024, &mut keyrng);
    let dkim_record = DkimKeyRecord::for_key(&keypair.public).to_record_text();
    let dmarc_record = DmarcRecord::strict_reject("dmarc-reports@dns-lab.org").to_record_text();

    let authority =
        SynthesizingAuthority::new(scheme.clone(), addrs.clone(), dkim_record, dmarc_record);
    let server = ServerCore::new(authority);

    let client_ip: IpAddr = IpAddr::V4(addrs.sender_v4);
    let auth_ip: IpAddr = "198.51.100.53".parse().expect("valid");

    let mut rng = SimRng::new(config.seed);
    let mut sessions: Vec<LiveSession> = Vec::new();

    let blacklisted = config.kind == CampaignKind::NotifyMx;
    let guessed = config.kind == CampaignKind::TwoWeekMx;

    match config.kind {
        CampaignKind::NotifyEmail => {
            for d in &pop.domains {
                let Some(&host_index) = d.host_indices.first() else {
                    continue;
                };
                let from = scheme.notify_from(d.index);
                let message =
                    build_notification(&from, &d.name, &keypair, &scheme.notify_domain(d.index));
                let client = ClientSession::new(ClientConfig {
                    helo_identity: "notify.dns-lab.org".into(),
                    mail_from: Some(from),
                    rcpt_candidates: vec![EmailAddress::new("operator", d.name.clone())],
                    message: Some(message),
                    pause_before_commands_ms: 0,
                });
                sessions.push(make_session(
                    SessionRecord {
                        host_index,
                        domain_index: d.index,
                        testid: None,
                        start_ms: 0,
                        outcome: None,
                        delivery_time_ms: None,
                    },
                    client,
                    pop,
                    profiles,
                    host_index,
                    client_ip,
                    blacklisted,
                    guessed,
                ));
            }
        }
        CampaignKind::NotifyMx | CampaignKind::TwoWeekMx => {
            // One probe per (unique used host, test). §5.2: each MTA is
            // analyzed once even when several domains designate it.
            let mut host_domain: HashMap<usize, usize> = HashMap::new();
            for d in &pop.domains {
                if config.kind == CampaignKind::NotifyMx && d.mx_reresolution_failed {
                    continue;
                }
                for &h in &d.host_indices {
                    host_domain.entry(h).or_insert(d.index);
                }
            }
            let mut hosts: Vec<(usize, usize)> = host_domain.into_iter().collect();
            hosts.sort_unstable();
            // §5.2: shuffle the probing order.
            rng.shuffle(&mut hosts);
            for (host_index, domain_index) in hosts {
                let domain_name = pop.domains[domain_index].name.clone();
                // TwoWeekMX must guess usernames (§4.4, §6.3); NotifyMX
                // reuses the known-valid notification recipients.
                let rcpt_candidates: Vec<EmailAddress> =
                    if config.kind == CampaignKind::TwoWeekMx {
                        probe_usernames()
                            .iter()
                            .map(|u| EmailAddress::new(u, domain_name.clone()))
                            .collect()
                    } else {
                        vec![EmailAddress::new("operator", domain_name.clone())]
                    };
                for testid in &config.tests {
                    let from = scheme.probe_from(testid, host_index);
                    let client = ClientSession::new(ClientConfig {
                        helo_identity: scheme.probe_helo(testid, host_index).to_string(),
                        mail_from: Some(from),
                        rcpt_candidates: rcpt_candidates.clone(),
                        message: None,
                        pause_before_commands_ms: config.probe_pause_ms,
                    });
                    sessions.push(make_session(
                        SessionRecord {
                            host_index,
                            domain_index,
                            testid: Some(testid),
                            start_ms: 0,
                            outcome: None,
                            delivery_time_ms: None,
                        },
                        client,
                        pop,
                        profiles,
                        host_index,
                        client_ip,
                        blacklisted,
                        guessed,
                    ));
                }
            }
        }
    }

    let mut driver = Driver {
        sim: Simulator::new(),
        sessions,
        server: &server,
        log: QueryLog::new(),
        latency: config.latency.clone(),
        client_ip,
        auth_ip,
        local_hop_ms: 1,
    };
    // Stagger session starts.
    for id in 0..driver.sessions.len() {
        let start = (id as u64) * 7;
        driver.sessions[id].record.start_ms = start;
        driver.sim.schedule_at(start, Ev::Start(id));
    }
    driver.run();

    let events = driver.sim.dispatched;
    CampaignResult {
        log: driver.log,
        sessions: driver.sessions.into_iter().map(|s| s.record).collect(),
        events,
    }
}

#[allow(clippy::too_many_arguments)]
fn make_session(
    record: SessionRecord,
    client: ClientSession,
    pop: &Population,
    profiles: &[MtaProfile],
    host_index: usize,
    client_ip: IpAddr,
    blacklisted: bool,
    guessed: bool,
) -> LiveSession {
    let host = &pop.hosts[host_index];
    let profile = profiles[host_index].clone();
    let resolver = ResolverActor::new(
        profile.resolver.clone(),
        profile.ipv6_capable,
        Some("v6only".to_string()),
    );
    let mta = MtaActor::new(
        &host.name.to_string(),
        profile,
        ConnContext {
            client_ip,
            client_blacklisted: blacklisted,
            recipients_guessed: guessed,
        },
    );
    LiveSession {
        record,
        client,
        parser: ReplyParser::new(),
        mta,
        resolver,
        mta_ip: IpAddr::V4(host.ipv4),
    }
}

/// Build the signed notification message (§4.3.1: "the content was in
/// fact an important notification", DKIM-signed, Reply-To set for
/// attribution §5.3).
fn build_notification(
    from: &EmailAddress,
    recipient_domain: &Name,
    keypair: &RsaKeyPair,
    signing_domain: &Name,
) -> Vec<u8> {
    let mut m = MailMessage::new();
    m.add_header("From", &format!("Network Notifier <{from}>"));
    m.add_header("To", &format!("operator@{recipient_domain}"));
    m.add_header(
        "Subject",
        "Action recommended: source-address-validation issue detected",
    );
    m.add_header("Date", "Mon, 12 Oct 2020 09:00:00 +0000");
    m.add_header(
        "Message-ID",
        &format!("<notify.{}@dns-lab.org>", from.domain),
    );
    m.add_header("Reply-To", "research@dns-lab.org");
    m.set_body_text(
        "Dear network operator,\n\
         \n\
         During a recent measurement study we detected that your network\n\
         does not enforce destination-side source address validation.\n\
         Details and remediation guidance: https://dns-lab.org/dsav\n\
         \n\
         To opt out of future notifications, reply to this message.\n",
    );
    let config = SignConfig::new(signing_domain.clone(), Name::parse("sel1").expect("valid"));
    let value = sign_message(&m, &config, &keypair.private).expect("signable");
    m.prepend_header("DKIM-Signature", &value);
    m.to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_datasets::{DatasetKind, PopulationConfig};

    fn tiny_pop(kind: DatasetKind, seed: u64) -> Population {
        Population::generate(&PopulationConfig {
            kind,
            scale: 0.004,
            seed,
        })
    }

    #[test]
    fn notify_email_campaign_delivers_and_logs() {
        let pop = tiny_pop(DatasetKind::NotifyEmail, 11);
        let profiles = sample_host_profiles(&pop, 11);
        let config = CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: vec![],
            seed: 11,
            probe_pause_ms: 0,
            latency: LatencyModel::default(),
        };
        let result = run_campaign(&config, &pop, &profiles);
        assert_eq!(result.sessions.len(), pop.domains.len());
        // Most deliveries succeed.
        let delivered = result
            .sessions
            .iter()
            .filter(|s| s.delivery_time_ms.is_some())
            .count();
        assert!(
            delivered as f64 > 0.9 * result.sessions.len() as f64,
            "delivered {delivered}/{}",
            result.sessions.len()
        );
        // SPF policy (base L0 TXT) queries observed for ≈85% of domains
        // (§6.1; the provider-quality bias pushes slightly above).
        let spf_validating: std::collections::HashSet<usize> = result
            .log
            .records
            .iter()
            .filter_map(|r| {
                let attr = r.attribution.as_ref()?;
                attr.path.is_empty().then_some(attr.domain_index?)
            })
            .collect();
        let rate = spf_validating.len() as f64 / pop.domains.len() as f64;
        assert!(
            (0.75..0.95).contains(&rate),
            "SPF-validating domain rate {rate} (expected near .85)"
        );
    }

    #[test]
    fn probe_campaign_aborts_before_data_and_attributes_queries() {
        let pop = tiny_pop(DatasetKind::TwoWeekMx, 13);
        let profiles = sample_host_profiles(&pop, 13);
        let config = CampaignConfig {
            kind: CampaignKind::TwoWeekMx,
            tests: vec!["t01", "t12"],
            seed: 13,
            probe_pause_ms: 15_000,
            latency: LatencyModel::default(),
        };
        let result = run_campaign(&config, &pop, &profiles);
        assert!(!result.sessions.is_empty());
        // No probe session ever delivers a message (§5.1).
        assert!(result.sessions.iter().all(|s| s.delivery_time_ms.is_none()));
        for s in &result.sessions {
            if let Some(outcome) = &s.outcome {
                assert!(!outcome.delivered);
            }
        }
        // Queries attribute to the configured tests only.
        for r in &result.log.records {
            if let Some(attr) = &r.attribution {
                let t = attr.testid.as_deref().unwrap();
                assert!(t == "t01" || t == "t12", "unexpected test {t}");
            }
        }
        // Some MTAs validated (the population validates at a floor rate).
        assert!(result.log.records.iter().any(|r| r.attribution.is_some()));
    }

    #[test]
    fn deterministic_given_seed() {
        let pop = tiny_pop(DatasetKind::TwoWeekMx, 17);
        let profiles = sample_host_profiles(&pop, 17);
        let config = CampaignConfig {
            kind: CampaignKind::TwoWeekMx,
            tests: vec!["t12"],
            seed: 17,
            probe_pause_ms: 1_000,
            latency: LatencyModel::default(),
        };
        let a = run_campaign(&config, &pop, &profiles);
        let b = run_campaign(&config, &pop, &profiles);
        assert_eq!(a.log.records.len(), b.log.records.len());
        assert_eq!(a.events, b.events);
        for (x, y) in a.log.records.iter().zip(&b.log.records) {
            assert_eq!(x.qname, y.qname);
            assert_eq!(x.time_ms, y.time_ms);
        }
    }
}

