//! Classification of raw campaign observations into the paper's tables
//! and figures (§6–§7).
//!
//! Everything here consumes only the [`QueryLog`] and the session
//! records — never the seeded profiles — so the full pipeline
//! (policy synthesis → SMTP dialogue → validator → resolver → wire →
//! attribution) is on the hook for every number.

use crate::apparatus::{QueryLog, QueryRecord};
use crate::campaign::{CampaignResult, SessionRecord};
use mailval_datasets::Population;
use mailval_dns::rr::RecordType;
use mailval_dns::server::Transport;
use std::collections::{HashMap, HashSet};

fn attr_of(record: &QueryRecord) -> Option<&crate::apparatus::Attribution> {
    record.attribution.as_ref()
}

// ---------------------------------------------------------------------------
// §6.1 — NotifyEmail: Table 4 / Table 7 flags
// ---------------------------------------------------------------------------

/// Per-domain validation flags derived from observed queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainFlags {
    /// Issued SPF-related queries (policy TXT or its follow-ups).
    pub spf: bool,
    /// Issued a DKIM key (`_domainkey`) query.
    pub dkim: bool,
    /// Issued a DMARC (`_dmarc`) query.
    pub dmarc: bool,
    /// SPF validation *finished*: the `a:sender` address lookup that is
    /// required to reach a verdict was observed (§6.1's 3% partial
    /// validators fail this).
    pub spf_finished: bool,
}

/// Classify every domain of a NotifyEmail run.
pub fn notify_email_flags(result: &CampaignResult, domain_count: usize) -> Vec<DomainFlags> {
    let mut flags = vec![DomainFlags::default(); domain_count];
    for record in &result.log.records {
        let Some(attr) = attr_of(record) else {
            continue;
        };
        let Some(d) = attr.domain_index else { continue };
        if d >= domain_count {
            continue;
        }
        let path: Vec<&str> = attr.path.iter().map(|s| s.as_str()).collect();
        match path.as_slice() {
            [_sel, "_domainkey"] => flags[d].dkim = true,
            ["_dmarc"] => flags[d].dmarc = true,
            ["sender"] => {
                flags[d].spf = true;
                if record.qtype == RecordType::A || record.qtype == RecordType::Aaaa {
                    flags[d].spf_finished = true;
                }
            }
            _ => flags[d].spf = true,
        }
    }
    flags
}

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComboRow {
    /// (SPF, DKIM, DMARC) combination.
    pub combo: (bool, bool, bool),
    /// Domains exhibiting it.
    pub count: usize,
}

/// Table 4: the SPF×DKIM×DMARC breakdown, ordered as in the paper.
pub fn table4(flags: &[DomainFlags]) -> Vec<ComboRow> {
    let order = [
        (true, true, true),
        (true, true, false),
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, false, true),
        (false, true, true),
    ];
    let mut counts: HashMap<(bool, bool, bool), usize> = HashMap::new();
    for f in flags {
        *counts.entry((f.spf, f.dkim, f.dmarc)).or_default() += 1;
    }
    order
        .into_iter()
        .map(|combo| ComboRow {
            combo,
            count: counts.get(&combo).copied().unwrap_or(0),
        })
        .collect()
}

/// §6.1 partial-validator stats: domains with SPF queries that never
/// finished, and how many of those rely on SPF exclusively.
#[derive(Debug, Clone, Copy)]
pub struct PartialSpfStats {
    /// SPF-validating domains.
    pub spf_validating: usize,
    /// Of those, domains that never performed the required address
    /// lookup.
    pub unfinished: usize,
    /// Unfinished domains with no DKIM validation either.
    pub unfinished_spf_only: usize,
    /// Of those, ones that at least look up DMARC ("possible
    /// enforcement").
    pub unfinished_spf_only_with_dmarc: usize,
}

/// Compute §6.1's partial-validation stats.
pub fn partial_spf_stats(flags: &[DomainFlags]) -> PartialSpfStats {
    let spf: Vec<&DomainFlags> = flags.iter().filter(|f| f.spf).collect();
    let unfinished: Vec<&&DomainFlags> = spf.iter().filter(|f| !f.spf_finished).collect();
    let spf_only: Vec<&&&DomainFlags> = unfinished.iter().filter(|f| !f.dkim).collect();
    PartialSpfStats {
        spf_validating: spf.len(),
        unfinished: unfinished.len(),
        unfinished_spf_only: spf_only.len(),
        unfinished_spf_only_with_dmarc: spf_only.iter().filter(|f| f.dmarc).count(),
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — SPF-vs-delivery timing
// ---------------------------------------------------------------------------

/// Fig. 2 reproduction: the distribution of `tSPF − tEmail`.
#[derive(Debug, Clone)]
pub struct TimingAnalysis {
    /// Domains contributing a (consistent) timestamp difference.
    pub domains: usize,
    /// Emails filtered for sub-second differences (the paper's 8.6%).
    pub filtered_subsecond: usize,
    /// Histogram bins over seconds: ≤-30, (-30,-15], (-15,-1],
    /// [1,15), [15,30), ≥30 — sub-second diffs were filtered.
    pub bins: [usize; 6],
    /// Fraction of domains with a negative difference (SPF before
    /// delivery; 83% in the paper).
    pub negative_fraction: f64,
    /// Fraction within ±30 s (91% in the paper).
    pub within_30s_fraction: f64,
}

/// Compute the Fig. 2 distribution from a NotifyEmail run.
///
/// Timestamps are floored to whole seconds first (the paper's Exim logs
/// had second granularity), and differences of zero seconds are
/// filtered as unmeasurable, exactly mirroring §6.2.
pub fn spf_timing(result: &CampaignResult) -> TimingAnalysis {
    // Earliest SPF policy query per domain.
    let mut first_spf: HashMap<usize, u64> = HashMap::new();
    for record in &result.log.records {
        let Some(attr) = attr_of(record) else {
            continue;
        };
        let Some(d) = attr.domain_index else { continue };
        let is_spf = !matches!(
            attr.path.first().map(|s| s.as_str()),
            Some("_dmarc") | Some("sel1")
        );
        if is_spf && record.qtype == RecordType::Txt && attr.path.is_empty() {
            first_spf
                .entry(d)
                .and_modify(|t| *t = (*t).min(record.time_ms))
                .or_insert(record.time_ms);
        }
    }
    let mut bins = [0usize; 6];
    let mut negative = 0usize;
    let mut within30 = 0usize;
    let mut domains = 0usize;
    let mut filtered = 0usize;
    for session in &result.sessions {
        let Some(delivery) = session.delivery_time_ms else {
            continue;
        };
        let Some(&spf) = first_spf.get(&session.domain_index) else {
            continue;
        };
        let diff = (spf / 1000) as i64 - (delivery / 1000) as i64;
        if diff == 0 {
            filtered += 1;
            continue;
        }
        domains += 1;
        if diff < 0 {
            negative += 1;
        }
        if diff.abs() <= 30 {
            within30 += 1;
        }
        let bin = match diff {
            d if d <= -30 => 0,
            d if d <= -15 => 1,
            d if d < 0 => 2,
            d if d < 15 => 3,
            d if d < 30 => 4,
            _ => 5,
        };
        bins[bin] += 1;
    }
    TimingAnalysis {
        domains,
        filtered_subsecond: filtered,
        bins,
        negative_fraction: negative as f64 / domains.max(1) as f64,
        within_30s_fraction: within30 as f64 / domains.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Table 5 — SPF-validating domains and MTAs
// ---------------------------------------------------------------------------

/// Table 5 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidatingCounts {
    /// Domains in scope.
    pub total_domains: usize,
    /// MTAs in scope.
    pub total_mtas: usize,
    /// SPF-validating domains.
    pub validating_domains: usize,
    /// SPF-validating MTAs.
    pub validating_mtas: usize,
}

impl ValidatingCounts {
    /// Domain validation rate.
    pub fn domain_rate(&self) -> f64 {
        self.validating_domains as f64 / self.total_domains.max(1) as f64
    }

    /// MTA validation rate.
    pub fn mta_rate(&self) -> f64 {
        self.validating_mtas as f64 / self.total_mtas.max(1) as f64
    }
}

/// SPF-validating hosts observed in a probe campaign's log.
pub fn validating_hosts(log: &QueryLog) -> HashSet<usize> {
    log.records
        .iter()
        .filter_map(|r| attr_of(r)?.host_index)
        .collect()
}

/// Table 5 counts for a probe campaign (NotifyMX / TwoWeekMX).
pub fn probe_validating_counts(result: &CampaignResult, pop: &Population) -> ValidatingCounts {
    let probed_hosts: HashSet<usize> = result.sessions.iter().map(|s| s.host_index).collect();
    let probed_domains: HashSet<usize> = pop
        .domains
        .iter()
        .filter(|d| d.host_indices.iter().any(|h| probed_hosts.contains(h)))
        .map(|d| d.index)
        .collect();
    let hosts = validating_hosts(&result.log);
    let domains: HashSet<usize> = pop
        .domains
        .iter()
        .filter(|d| d.host_indices.iter().any(|h| hosts.contains(h)))
        .map(|d| d.index)
        .collect();
    ValidatingCounts {
        total_domains: probed_domains.len(),
        total_mtas: probed_hosts.len(),
        validating_domains: domains.intersection(&probed_domains).count(),
        validating_mtas: hosts.intersection(&probed_hosts).count(),
    }
}

/// Table 5 counts for a NotifyEmail run.
pub fn notify_validating_counts(result: &CampaignResult, pop: &Population) -> ValidatingCounts {
    let flags = notify_email_flags(result, pop.domains.len());
    let mut validating_hosts: HashSet<usize> = HashSet::new();
    let mut contacted_hosts: HashSet<usize> = HashSet::new();
    for session in &result.sessions {
        contacted_hosts.insert(session.host_index);
        if flags.get(session.domain_index).is_some_and(|f| f.spf) {
            validating_hosts.insert(session.host_index);
        }
    }
    ValidatingCounts {
        total_domains: pop.domains.len(),
        total_mtas: contacted_hosts.len(),
        validating_domains: flags.iter().filter(|f| f.spf).count(),
        validating_mtas: validating_hosts.len(),
    }
}

/// TwoWeekMX decile rows of Table 5.
pub fn decile_counts(result: &CampaignResult, pop: &Population) -> Vec<ValidatingCounts> {
    let hosts = validating_hosts(&result.log);
    let probed_hosts: HashSet<usize> = result.sessions.iter().map(|s| s.host_index).collect();
    pop.demand_deciles()
        .into_iter()
        .map(|domain_indices| {
            let mut decile_hosts: HashSet<usize> = HashSet::new();
            let mut validating_domains = 0usize;
            for &d in &domain_indices {
                let spec = &pop.domains[d];
                let mut any = false;
                for &h in &spec.host_indices {
                    if probed_hosts.contains(&h) {
                        decile_hosts.insert(h);
                    }
                    if hosts.contains(&h) {
                        any = true;
                    }
                }
                if any {
                    validating_domains += 1;
                }
            }
            ValidatingCounts {
                total_domains: domain_indices.len(),
                total_mtas: decile_hosts.len(),
                validating_domains,
                validating_mtas: decile_hosts.intersection(&hosts).count(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §6.2 — NotifyEmail vs NotifyMX consistency
// ---------------------------------------------------------------------------

/// §6.2 comparison of the two perspectives on the same domains.
#[derive(Debug, Clone, Copy)]
pub struct ConsistencyStats {
    /// Domains classified in both runs.
    pub common_domains: usize,
    /// Domains whose status differs.
    pub inconsistent: usize,
    /// Of those, validated in NotifyEmail but not NotifyMX (95% in the
    /// paper).
    pub email_only: usize,
    /// MTAs that rejected the probe with "spam" in the reply (27%).
    pub spam_rejections: usize,
    /// MTAs that rejected citing a blacklist (3%).
    pub blacklist_rejections: usize,
    /// MTAs probed.
    pub probed_mtas: usize,
}

/// Compare a NotifyEmail run with a NotifyMX run over the same
/// population.
pub fn consistency(
    notify_email: &CampaignResult,
    notify_mx: &CampaignResult,
    pop: &Population,
) -> ConsistencyStats {
    let flags = notify_email_flags(notify_email, pop.domains.len());
    let mx_hosts = validating_hosts(&notify_mx.log);
    let mx_domains: HashSet<usize> = pop
        .domains
        .iter()
        .filter(|d| d.host_indices.iter().any(|h| mx_hosts.contains(h)))
        .map(|d| d.index)
        .collect();
    let probed_domains: HashSet<usize> =
        notify_mx.sessions.iter().map(|s| s.domain_index).collect();
    let _ = probed_domains;

    let mut common = 0usize;
    let mut inconsistent = 0usize;
    let mut email_only = 0usize;
    for d in &pop.domains {
        if d.mx_reresolution_failed {
            continue;
        }
        common += 1;
        let email_side = flags[d.index].spf;
        let mx_side = mx_domains.contains(&d.index);
        if email_side != mx_side {
            inconsistent += 1;
            if email_side {
                email_only += 1;
            }
        }
    }

    // Rejection text analysis over one test's sessions per MTA.
    let mut spam: HashSet<usize> = HashSet::new();
    let mut blacklist: HashSet<usize> = HashSet::new();
    let mut probed: HashSet<usize> = HashSet::new();
    for s in &notify_mx.sessions {
        probed.insert(s.host_index);
        if let Some(outcome) = &s.outcome {
            if let Some((_, reply)) = &outcome.rejection {
                let text = reply.text().to_ascii_lowercase();
                if text.contains("blacklist") {
                    blacklist.insert(s.host_index);
                } else if text.contains("spam") {
                    spam.insert(s.host_index);
                }
            }
        }
    }
    ConsistencyStats {
        common_domains: common,
        inconsistent,
        email_only,
        spam_rejections: spam.len(),
        blacklist_rejections: blacklist.len(),
        probed_mtas: probed.len(),
    }
}

// ---------------------------------------------------------------------------
// §7.1 — serial vs parallel
// ---------------------------------------------------------------------------

/// §7.1 result.
#[derive(Debug, Clone, Copy)]
pub struct SerialParallel {
    /// MTAs that completed enough of test t01 to classify.
    pub classified: usize,
    /// Of those, MTAs issuing lookups serially (97% in the paper).
    pub serial: usize,
}

/// Infer lookup scheduling from the t01 query order: a serial validator
/// cannot ask for `foo` (the `a` hint) before the L3 policy arrives.
pub fn serial_vs_parallel(log: &QueryLog) -> SerialParallel {
    #[derive(Default)]
    struct Seen {
        foo_at: Option<u64>,
        l3_at: Option<u64>,
    }
    let mut per_host: HashMap<usize, Seen> = HashMap::new();
    for r in log.for_test("t01") {
        let Some(attr) = attr_of(r) else { continue };
        let Some(h) = attr.host_index else { continue };
        let entry = per_host.entry(h).or_default();
        match attr.path.first().map(|s| s.as_str()) {
            Some("foo") => {
                entry.foo_at.get_or_insert(r.time_ms);
            }
            Some("l3") => {
                entry.l3_at.get_or_insert(r.time_ms);
            }
            _ => {}
        }
    }
    let mut classified = 0usize;
    let mut serial = 0usize;
    for seen in per_host.values() {
        if let (Some(foo_ms), Some(l3)) = (seen.foo_at, seen.l3_at) {
            classified += 1;
            if foo_ms > l3 {
                serial += 1;
            }
        }
    }
    SerialParallel { classified, serial }
}

// ---------------------------------------------------------------------------
// Fig. 5 — lookup limits
// ---------------------------------------------------------------------------

/// Per-MTA datapoint for the Fig. 5 CDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LimitPoint {
    /// DNS queries issued beyond the base policy fetch.
    pub queries: u32,
    /// Lower bound on elapsed validation time, ms (800 ms per answered
    /// delayed query before the last observed one).
    pub elapsed_lb_ms: u64,
}

/// Fig. 5 data.
#[derive(Debug, Clone)]
pub struct LimitAnalysis {
    /// One point per MTA that evaluated test t02, sorted ascending.
    pub points: Vec<LimitPoint>,
    /// MTAs stopping before 10 queries (61% in the paper).
    pub under_10: usize,
    /// MTAs issuing all 46 queries (28% in the paper).
    pub all_46: usize,
}

/// Compute the Fig. 5 CDF inputs from test t02 observations.
pub fn lookup_limits(log: &QueryLog) -> LimitAnalysis {
    let mut per_host: HashMap<usize, u32> = HashMap::new();
    for r in log.for_test("t02") {
        let Some(attr) = attr_of(r) else { continue };
        let Some(h) = attr.host_index else { continue };
        if attr.path.len() == 1 && attr.path[0] == "h" {
            // The HELO-identity lookup is not part of the stress tree
            // (deeper paths ending in "h" ARE tree nodes).
            continue;
        }
        if attr.path.is_empty() {
            per_host.entry(h).or_insert(0);
        } else {
            *per_host.entry(h).or_insert(0) += 1;
        }
    }
    let mut points: Vec<LimitPoint> = per_host
        .values()
        .map(|&queries| LimitPoint {
            queries,
            elapsed_lb_ms: 800 * queries.saturating_sub(1) as u64,
        })
        .collect();
    points.sort();
    // A limit-compliant validator issues exactly 10 queries before the
    // 11th term trips the permerror; the paper's "halted before 10 DNS
    // queries" band therefore includes them.
    let under_10 = points.iter().filter(|p| p.queries <= 10).count();
    let all_46 = points.iter().filter(|p| p.queries >= 46).count();
    LimitAnalysis {
        points,
        under_10,
        all_46,
    }
}

// ---------------------------------------------------------------------------
// §7.3 — behavior battery
// ---------------------------------------------------------------------------

/// One §7.3 behavior statistic: how many MTAs of those evaluating the
/// test exhibited the behavior.
#[derive(Debug, Clone)]
pub struct BehaviorStat {
    /// Test id.
    pub testid: &'static str,
    /// What is being measured.
    pub behavior: &'static str,
    /// MTAs evaluating the test (the denominator).
    pub evaluated: usize,
    /// MTAs exhibiting the behavior.
    pub exhibited: usize,
    /// The paper's reported fraction, for the report column.
    pub paper_fraction: f64,
}

impl BehaviorStat {
    /// Measured fraction.
    pub fn fraction(&self) -> f64 {
        self.exhibited as f64 / self.evaluated.max(1) as f64
    }
}

fn hosts_with(
    log: &QueryLog,
    testid: &'static str,
    pred: impl Fn(&QueryRecord) -> bool,
) -> HashSet<usize> {
    log.for_test(testid)
        .filter(|r| pred(r))
        .filter_map(|r| attr_of(r)?.host_index)
        .collect()
}

fn path0_is(r: &QueryRecord, label: &str) -> bool {
    attr_of(r)
        .map(|a| a.path.first().map(|s| s.as_str()) == Some(label))
        .unwrap_or(false)
}

fn base_query(r: &QueryRecord) -> bool {
    attr_of(r).map(|a| a.path.is_empty()).unwrap_or(false) && r.qtype == RecordType::Txt
}

/// The full §7.3 battery.
pub fn behavior_battery(log: &QueryLog) -> Vec<BehaviorStat> {
    let mut stats = Vec::new();

    // HELO policy check (t03).
    let t03_eval = hosts_with(log, "t03", base_query);
    let t03_helo = hosts_with(log, "t03", |r| path0_is(r, "h"));
    stats.push(BehaviorStat {
        testid: "t03",
        behavior: "checked the HELO identity's policy",
        evaluated: t03_eval.len(),
        exhibited: t03_helo.intersection(&t03_eval).count(),
        paper_fraction: 0.050,
    });
    // ... and all of those proceeded to the MAIL policy anyway.
    let helo_then_mail = t03_helo.intersection(&t03_eval).count();
    stats.push(BehaviorStat {
        testid: "t03",
        behavior: "HELO checkers that evaluated MAIL anyway",
        evaluated: t03_helo.len(),
        exhibited: helo_then_mail,
        paper_fraction: 1.0,
    });

    // Syntax error in the main policy (t04).
    let t04_eval = hosts_with(log, "t04", base_query);
    let t04_cont = hosts_with(log, "t04", |r| path0_is(r, "after"));
    stats.push(BehaviorStat {
        testid: "t04",
        behavior: "kept evaluating past a main-policy syntax error",
        evaluated: t04_eval.len(),
        exhibited: t04_cont.intersection(&t04_eval).count(),
        paper_fraction: 0.055,
    });

    // Syntax error in a child policy (t05).
    let t05_eval = hosts_with(log, "t05", |r| path0_is(r, "child"));
    let t05_cont = hosts_with(log, "t05", |r| path0_is(r, "after"));
    stats.push(BehaviorStat {
        testid: "t05",
        behavior: "kept evaluating the parent past a child permerror",
        evaluated: t05_eval.len(),
        exhibited: t05_cont.intersection(&t05_eval).count(),
        paper_fraction: 0.123,
    });

    // Void lookups (t06).
    let mut t06_voids: HashMap<usize, u32> = HashMap::new();
    let t06_eval = hosts_with(log, "t06", base_query);
    for r in log.for_test("t06") {
        let Some(attr) = attr_of(r) else { continue };
        let (Some(h), Some(first)) = (attr.host_index, attr.path.first()) else {
            continue;
        };
        if first.starts_with('v') && r.qtype != RecordType::Txt {
            *t06_voids.entry(h).or_default() += 1;
        }
    }
    stats.push(BehaviorStat {
        testid: "t06",
        behavior: "exceeded two void lookups",
        evaluated: t06_eval.len(),
        exhibited: t06_voids.values().filter(|&&c| c > 2).count(),
        paper_fraction: 0.97,
    });
    stats.push(BehaviorStat {
        testid: "t06",
        behavior: "resolved all five void names",
        evaluated: t06_eval.len(),
        exhibited: t06_voids.values().filter(|&&c| c >= 5).count(),
        paper_fraction: 0.64,
    });

    // mx A/AAAA fallback (t07).
    let t07_eval = hosts_with(log, "t07", base_query);
    let t07_fallback = hosts_with(log, "t07", |r| {
        path0_is(r, "gone") && r.qtype != RecordType::Mx
    });
    stats.push(BehaviorStat {
        testid: "t07",
        behavior: "issued the forbidden A/AAAA fallback after failed mx",
        evaluated: t07_eval.len(),
        exhibited: t07_fallback.intersection(&t07_eval).count(),
        paper_fraction: 0.14,
    });

    // Multiple SPF records (t08).
    let t08_eval = hosts_with(log, "t08", base_query);
    let t08_one = hosts_with(log, "t08", |r| path0_is(r, "one"));
    let t08_two = hosts_with(log, "t08", |r| path0_is(r, "two"));
    let followed_any: HashSet<usize> = t08_one.union(&t08_two).copied().collect();
    let followed_both = t08_one.intersection(&t08_two).count();
    stats.push(BehaviorStat {
        testid: "t08",
        behavior: "followed one of two duplicate records",
        evaluated: t08_eval.len(),
        exhibited: followed_any.intersection(&t08_eval).count(),
        paper_fraction: 0.23,
    });
    stats.push(BehaviorStat {
        testid: "t08",
        behavior: "followed BOTH duplicate records",
        evaluated: t08_eval.len(),
        exhibited: followed_both,
        paper_fraction: 0.0,
    });

    // TCP fallback (t09).
    let t09_udp = hosts_with(log, "t09", |r| {
        base_query(r) && r.transport == Transport::Udp
    });
    let t09_tcp = hosts_with(log, "t09", |r| {
        base_query(r) && r.transport == Transport::Tcp
    });
    stats.push(BehaviorStat {
        testid: "t09",
        behavior: "retried over TCP after truncation",
        evaluated: t09_udp.len(),
        exhibited: t09_tcp.intersection(&t09_udp).count(),
        paper_fraction: 1334.0 / 1336.0,
    });

    // IPv6-only retrieval (t10).
    let t10_eval = hosts_with(log, "t10", base_query);
    let t10_v6 = hosts_with(log, "t10", |r| path0_is(r, "p") && r.via_ipv6);
    stats.push(BehaviorStat {
        testid: "t10",
        behavior: "retrieved the IPv6-only policy",
        evaluated: t10_eval.len(),
        exhibited: t10_v6.intersection(&t10_eval).count(),
        paper_fraction: 0.49,
    });

    // Per-mx address-lookup limit (t11).
    let t11_eval = hosts_with(log, "t11", |r| {
        path0_is(r, "many") && r.qtype == RecordType::Mx
    });
    let mut t11_addrs: HashMap<usize, u32> = HashMap::new();
    for r in log.for_test("t11") {
        let Some(attr) = attr_of(r) else { continue };
        let Some(h) = attr.host_index else { continue };
        if attr.path.len() == 2 && attr.path[1] == "many" && r.qtype != RecordType::Mx {
            *t11_addrs.entry(h).or_default() += 1;
        }
    }
    stats.push(BehaviorStat {
        testid: "t11",
        behavior: "stopped at ≤10 per-mx address lookups",
        evaluated: t11_eval.len(),
        exhibited: t11_eval
            .iter()
            .filter(|h| t11_addrs.get(h).copied().unwrap_or(0) <= 10)
            .count(),
        paper_fraction: 0.077,
    });
    stats.push(BehaviorStat {
        testid: "t11",
        behavior: "queried all 20 exchanges",
        evaluated: t11_eval.len(),
        exhibited: t11_addrs.values().filter(|&&c| c >= 20).count(),
        paper_fraction: 0.64,
    });

    stats
}

// ---------------------------------------------------------------------------
// Table 7 — Alexa tiers
// ---------------------------------------------------------------------------

/// One Table 7 column.
#[derive(Debug, Clone, Copy)]
pub struct AlexaColumn {
    /// Domains in the tier.
    pub total: usize,
    /// SPF-validating.
    pub spf: usize,
    /// DKIM-validating.
    pub dkim: usize,
    /// DMARC-validating.
    pub dmarc: usize,
}

/// Table 7: validation by Alexa membership (All / Top 1M / Top 1K).
pub fn alexa_breakdown(
    flags: &[DomainFlags],
    pop: &Population,
) -> (AlexaColumn, AlexaColumn, AlexaColumn) {
    use mailval_datasets::alexa::AlexaTier;
    let mut all = AlexaColumn {
        total: 0,
        spf: 0,
        dkim: 0,
        dmarc: 0,
    };
    let mut top1m = all;
    let mut top1k = all;
    for d in &pop.domains {
        let f = flags[d.index];
        let add = |col: &mut AlexaColumn| {
            col.total += 1;
            if f.spf {
                col.spf += 1;
            }
            if f.dkim {
                col.dkim += 1;
            }
            if f.dmarc {
                col.dmarc += 1;
            }
        };
        add(&mut all);
        match d.alexa {
            AlexaTier::Top1K => {
                add(&mut top1m);
                add(&mut top1k);
            }
            AlexaTier::Top1M => add(&mut top1m),
            AlexaTier::Unlisted => {}
        }
    }
    (all, top1m, top1k)
}

// ---------------------------------------------------------------------------
// Helpers shared by report binaries
// ---------------------------------------------------------------------------

/// Unique hosts probed in a result's sessions.
pub fn probed_hosts(sessions: &[SessionRecord]) -> HashSet<usize> {
    sessions.iter().map(|s| s.host_index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, sample_host_profiles, CampaignConfig, CampaignKind};
    use mailval_datasets::{DatasetKind, PopulationConfig};
    use mailval_simnet::LatencyModel;

    fn small_pop(kind: DatasetKind, seed: u64, scale: f64) -> Population {
        Population::generate(&PopulationConfig { kind, scale, seed })
    }

    fn run(
        kind: CampaignKind,
        pop: &Population,
        tests: Vec<&'static str>,
        seed: u64,
    ) -> CampaignResult {
        let profiles = sample_host_profiles(pop, seed);
        run_campaign(
            &CampaignConfig {
                kind,
                tests,
                seed,
                probe_pause_ms: 15_000,
                latency: LatencyModel::default(),
                shards: 1,
                faults: mailval_simnet::FaultConfig::default(),
                ..CampaignConfig::default()
            },
            pop,
            &profiles,
        )
    }

    #[test]
    fn table4_marginals_and_fig2_shape() {
        let pop = small_pop(DatasetKind::NotifyEmail, 21, 0.01);
        let result = run(CampaignKind::NotifyEmail, &pop, vec![], 21);
        let flags = notify_email_flags(&result, pop.domains.len());
        let rows = table4(&flags);
        let total: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, pop.domains.len());
        // The all-three row dominates, as in Table 4.
        assert_eq!(rows[0].combo, (true, true, true));
        assert!(rows[0].count > total / 3, "{rows:?}");
        // SPF marginal ≈ 85%.
        let spf: usize = rows.iter().filter(|r| r.combo.0).map(|r| r.count).sum();
        let rate = spf as f64 / total as f64;
        assert!((0.75..0.95).contains(&rate), "spf {rate}");

        // Fig. 2: mostly negative diffs, mostly within ±30 s.
        let timing = spf_timing(&result);
        assert!(timing.domains > 0);
        assert!(
            timing.negative_fraction > 0.6,
            "negative {}",
            timing.negative_fraction
        );
        assert!(
            timing.within_30s_fraction > 0.5,
            "within30 {}",
            timing.within_30s_fraction
        );
    }

    #[test]
    fn partial_validators_detected() {
        let pop = small_pop(DatasetKind::NotifyEmail, 22, 0.01);
        let result = run(CampaignKind::NotifyEmail, &pop, vec![], 22);
        let flags = notify_email_flags(&result, pop.domains.len());
        let stats = partial_spf_stats(&flags);
        assert!(stats.spf_validating > 0);
        // ~3% of validating domains never finish.
        let rate = stats.unfinished as f64 / stats.spf_validating as f64;
        assert!(rate < 0.10, "unfinished {rate}");
    }

    #[test]
    fn serial_parallel_inference() {
        let pop = small_pop(DatasetKind::TwoWeekMx, 23, 0.01);
        let result = run(CampaignKind::TwoWeekMx, &pop, vec!["t01"], 23);
        let sp = serial_vs_parallel(&result.log);
        assert!(sp.classified > 0, "no MTAs classified");
        let rate = sp.serial as f64 / sp.classified as f64;
        assert!(rate > 0.85, "serial {rate} of {}", sp.classified);
    }

    #[test]
    fn lookup_limit_cdf() {
        let pop = small_pop(DatasetKind::TwoWeekMx, 24, 0.01);
        let result = run(CampaignKind::TwoWeekMx, &pop, vec!["t02"], 24);
        let limits = lookup_limits(&result.log);
        assert!(!limits.points.is_empty());
        // Max possible is 46.
        assert!(limits.points.iter().all(|p| p.queries <= 46));
        // Both enforcers and violators appear.
        assert!(limits.under_10 > 0, "{:?}", limits.points);
        assert!(limits.all_46 > 0, "{:?}", limits.points);
    }

    #[test]
    fn behavior_battery_produces_sane_fractions() {
        let pop = small_pop(DatasetKind::TwoWeekMx, 25, 0.02);
        let tests = vec![
            "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10", "t11",
        ];
        let result = run(CampaignKind::TwoWeekMx, &pop, tests, 25);
        let stats = behavior_battery(&result.log);
        assert_eq!(stats.len(), 13);
        for s in &stats {
            assert!(
                s.exhibited <= s.evaluated.max(1),
                "{}: {}/{}",
                s.behavior,
                s.exhibited,
                s.evaluated
            );
        }
        // No MTA followed both duplicate records.
        let both = stats.iter().find(|s| s.behavior.contains("BOTH")).unwrap();
        assert_eq!(both.exhibited, 0);
        // TCP fallback is nearly universal.
        let tcp = stats.iter().find(|s| s.testid == "t09").unwrap();
        assert!(tcp.fraction() > 0.9, "tcp {}", tcp.fraction());
    }

    #[test]
    fn probe_counts_and_deciles() {
        let pop = small_pop(DatasetKind::TwoWeekMx, 26, 0.02);
        let result = run(CampaignKind::TwoWeekMx, &pop, vec!["t12", "t14"], 26);
        let counts = probe_validating_counts(&result, &pop);
        assert!(counts.total_mtas > 0);
        assert!(counts.validating_mtas <= counts.total_mtas);
        // TwoWeekMX MTA rate is a low-teens lower bound (Table 5).
        let rate = counts.mta_rate();
        assert!((0.05..0.35).contains(&rate), "mta rate {rate}");
        let deciles = decile_counts(&result, &pop);
        assert_eq!(deciles.len(), 10);
        let total: usize = deciles.iter().map(|d| d.total_domains).sum();
        assert_eq!(total, pop.domains.len());
    }

    #[test]
    fn consistency_analysis() {
        let pop = small_pop(DatasetKind::NotifyEmail, 27, 0.008);
        let profiles = sample_host_profiles(&pop, 27);
        let email = run_campaign(
            &CampaignConfig {
                kind: CampaignKind::NotifyEmail,
                tests: vec![],
                seed: 27,
                probe_pause_ms: 0,
                latency: LatencyModel::default(),
                shards: 1,
                faults: mailval_simnet::FaultConfig::default(),
                ..CampaignConfig::default()
            },
            &pop,
            &profiles,
        );
        let mx = run_campaign(
            &CampaignConfig {
                kind: CampaignKind::NotifyMx,
                tests: vec!["t12"],
                seed: 27,
                probe_pause_ms: 15_000,
                latency: LatencyModel::default(),
                shards: 1,
                faults: mailval_simnet::FaultConfig::default(),
                ..CampaignConfig::default()
            },
            &pop,
            &profiles,
        );
        let stats = consistency(&email, &mx, &pop);
        assert!(stats.common_domains > 0);
        assert!(stats.inconsistent > 0, "some inconsistency expected");
        // Overwhelmingly email-validating-but-not-mx (95% in the paper).
        let dir = stats.email_only as f64 / stats.inconsistent.max(1) as f64;
        assert!(dir > 0.7, "direction {dir}");
        // Spam rejections ≈ 27% of MTAs.
        let spam_rate = stats.spam_rejections as f64 / stats.probed_mtas.max(1) as f64;
        assert!((0.15..0.40).contains(&spam_rate), "spam {spam_rate}");
    }

    #[test]
    fn alexa_gradient() {
        let pop = small_pop(DatasetKind::NotifyEmail, 28, 0.05);
        let result = run(CampaignKind::NotifyEmail, &pop, vec![], 28);
        let flags = notify_email_flags(&result, pop.domains.len());
        let (all, top1m, _top1k) = alexa_breakdown(&flags, &pop);
        assert_eq!(all.total, pop.domains.len());
        if top1m.total >= 20 {
            let all_rate = all.spf as f64 / all.total as f64;
            let top_rate = top1m.spf as f64 / top1m.total as f64;
            assert!(
                top_rate >= all_rate - 0.05,
                "top1m {top_rate} vs all {all_rate}"
            );
        }
    }
}
