//! The storage seam: a minimal virtual filesystem ([`Vfs`]) with a
//! passthrough implementation ([`OsFs`]) and a deterministic
//! fault-injecting one ([`SimFs`]).
//!
//! Every byte [`crate::journal`] and [`crate::store`] persist or load
//! flows through this trait, so the environment itself can be made an
//! adversary: a full disk (ENOSPC after N bytes), short writes, failed
//! fsyncs, failed renames and read-side bit rot, all decided by an
//! [`IoPlan`] as pure functions of `(seed, stable file id, op stream,
//! per-file op cursor)` — never wall-clock or thread scheduling. The
//! file id hashes only the file *name* (journals are `shard-NNNN.jrnl`,
//! store entries are named by their content key), so a given file sees
//! the same fault sequence no matter which temp directory it lives in,
//! and the ENOSPC capacity cursor is re-derived from the on-disk length
//! on open, making disk-full behavior kill-and-resume invariant.
//!
//! The invariant the whole layer rests on: **storage faults never
//! change campaign results, only durability and counters**. Consumers
//! degrade (demote to non-durable, report a store miss) instead of
//! panicking, and the merged output stays byte-identical.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use mailval_simnet::{IoPlan, WriteFault};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One open writable file behind the seam.
pub trait VfsFile: Send {
    /// Write the whole buffer (or fail, possibly after persisting a
    /// prefix — exactly like a real `write` loop hitting ENOSPC).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate or extend the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Seek to an absolute offset.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

/// The filesystem operations the measurement stack performs.
pub trait Vfs: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create a directory and all its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Open `path` for writing, creating it if needed; `truncate`
    /// empties an existing file.
    fn open_write(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>>;
    /// List the entries of a directory (files and subdirectories).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

// ---------------------------------------------------------------------------
// OsFs: the passthrough
// ---------------------------------------------------------------------------

/// Passthrough [`Vfs`]: plain `std::fs`, no fault injection. This is
/// what every campaign uses unless an [`IoPlan`] is active.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsFs;

struct OsFile(File);

impl VfsFile for OsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl Vfs for OsFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn open_write(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(truncate)
            .open(path)?;
        Ok(Box::new(OsFile(file)))
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// SimFs: deterministic fault injection
// ---------------------------------------------------------------------------

/// Counters for faults the [`SimFs`] actually fired (observability —
/// these are wall-effect tallies, never hashed or stored).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Writes that persisted only a prefix before erroring.
    pub short_writes: AtomicU64,
    /// Writes refused (fully or partially) by the simulated full disk.
    pub enospc: AtomicU64,
    /// fsyncs that reported failure.
    pub fsync_failures: AtomicU64,
    /// Renames that reported failure.
    pub rename_failures: AtomicU64,
    /// Whole-file reads returned with one corrupted byte.
    pub reads_corrupted: AtomicU64,
}

impl IoStats {
    /// Total faults fired across all kinds.
    pub fn total(&self) -> u64 {
        self.short_writes.load(Ordering::Relaxed)
            + self.enospc.load(Ordering::Relaxed)
            + self.fsync_failures.load(Ordering::Relaxed)
            + self.rename_failures.load(Ordering::Relaxed)
            + self.reads_corrupted.load(Ordering::Relaxed)
    }
}

/// Per-file fault-stream cursors: how many writes / fsyncs / renames /
/// reads of this file have been adjudicated, plus the simulated byte
/// count for the ENOSPC capacity check.
#[derive(Debug, Default, Clone, Copy)]
struct FileCursors {
    writes: u64,
    fsyncs: u64,
    renames: u64,
    reads: u64,
    written: u64,
}

/// Stable 64-bit id of a file: FNV-1a over its final path component.
/// Only the *name* is hashed — journals (`shard-NNNN.jrnl`) and store
/// entries (named by content key) carry their identity in the name, so
/// the id survives temp-directory relocation and process restarts.
pub fn stable_file_id(path: &Path) -> u64 {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fault-injecting [`Vfs`]: real `std::fs` underneath, with every
/// operation first adjudicated by the sealed [`IoPlan`].
pub struct SimFs {
    plan: IoPlan,
    stats: Arc<IoStats>,
    state: Arc<Mutex<HashMap<u64, FileCursors>>>,
}

impl std::fmt::Debug for SimFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFs").field("plan", &self.plan).finish()
    }
}

impl SimFs {
    /// Build a fault-injecting filesystem from a sealed plan.
    pub fn new(plan: IoPlan) -> SimFs {
        SimFs {
            plan,
            stats: Arc::new(IoStats::default()),
            state: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The fault counters, shared with every file handle.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn cursors<R>(&self, file_id: u64, f: impl FnOnce(&mut FileCursors) -> R) -> R {
        let mut map = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(map.entry(file_id).or_default())
    }
}

struct SimFile {
    inner: OsFile,
    file_id: u64,
    plan: IoPlan,
    stats: Arc<IoStats>,
    state: Arc<Mutex<HashMap<u64, FileCursors>>>,
}

impl SimFile {
    fn cursors<R>(&self, f: impl FnOnce(&mut FileCursors) -> R) -> R {
        let mut map = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(map.entry(self.file_id).or_default())
    }
}

impl VfsFile for SimFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let (index, written) = self.cursors(|c| {
            let out = (c.writes, c.written);
            c.writes += 1;
            out
        });
        match self
            .plan
            .write_fault(self.file_id, index, written, buf.len())
        {
            WriteFault::Full => {
                self.inner.write_all(buf)?;
                self.cursors(|c| c.written += buf.len() as u64);
                Ok(())
            }
            WriteFault::Short { keep } => {
                self.inner.write_all(&buf[..keep])?;
                self.cursors(|c| c.written += keep as u64);
                self.stats.short_writes.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "injected short write: {keep} of {} bytes persisted",
                    buf.len()
                )))
            }
            WriteFault::Enospc { keep } => {
                self.inner.write_all(&buf[..keep])?;
                self.cursors(|c| c.written += keep as u64);
                self.stats.enospc.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other(format!(
                    "injected ENOSPC: {keep} of {} bytes persisted, device full",
                    buf.len()
                )))
            }
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let index = self.cursors(|c| {
            let out = c.fsyncs;
            c.fsyncs += 1;
            out
        });
        if self.plan.fsync_fails(self.file_id, index) {
            self.stats.fsync_failures.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)?;
        self.cursors(|c| c.written = len);
        Ok(())
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.inner.seek_to(pos)
    }
}

impl Vfs for SimFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = std::fs::read(path)?;
        let file_id = stable_file_id(path);
        let index = self.cursors(file_id, |c| {
            let out = c.reads;
            c.reads += 1;
            out
        });
        if let Some((pos, mask)) = self.plan.read_corruption(file_id, index, data.len()) {
            data[pos] ^= mask;
            self.stats.reads_corrupted.fetch_add(1, Ordering::Relaxed);
        }
        Ok(data)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // The *destination* name is the stable identity (store tmp
        // files are `<key>.camp.tmp` renamed onto `<key>.camp`).
        let file_id = stable_file_id(to);
        let index = self.cursors(file_id, |c| {
            let out = c.renames;
            c.renames += 1;
            out
        });
        if self.plan.rename_fails(file_id, index) {
            self.stats.rename_failures.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected rename failure"));
        }
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn open_write(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(truncate)
            .open(path)?;
        let file_id = stable_file_id(path);
        // Re-derive the ENOSPC capacity cursor from on-disk state so a
        // resumed process sees the same remaining capacity as the one
        // it replaced (kill-and-resume invariance of disk-full runs).
        let on_disk = if truncate {
            0
        } else {
            file.metadata().map(|m| m.len()).unwrap_or(0)
        };
        self.cursors(file_id, |c| c.written = on_disk);
        Ok(Box::new(SimFile {
            inner: OsFile(file),
            file_id,
            plan: self.plan.clone(),
            stats: Arc::clone(&self.stats),
            state: Arc::clone(&self.state),
        }))
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        OsFs.list_dir(path)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mailval_simnet::IoConfig;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mailval-vfs-tests-{}", std::process::id()));
        let dir = dir.join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn osfs_roundtrips_and_lists() {
        let dir = temp_dir("osfs");
        let path = dir.join("a.bin");
        let mut f = OsFs.open_write(&path, true).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(OsFs.read(&path).unwrap(), b"hello");
        let listed = OsFs.list_dir(&dir).unwrap();
        assert!(listed.contains(&path));
        OsFs.rename(&path, &dir.join("b.bin")).unwrap();
        OsFs.remove_file(&dir.join("b.bin")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stable_file_id_depends_only_on_the_name() {
        assert_eq!(
            stable_file_id(Path::new("/tmp/x/shard-0001.jrnl")),
            stable_file_id(Path::new("/var/other/shard-0001.jrnl")),
        );
        assert_ne!(
            stable_file_id(Path::new("shard-0001.jrnl")),
            stable_file_id(Path::new("shard-0002.jrnl")),
        );
    }

    #[test]
    fn inert_simfs_behaves_like_osfs() {
        let fs = SimFs::new(IoPlan::new(IoConfig::default()));
        let dir = temp_dir("inert");
        let path = dir.join("a.bin");
        let mut f = fs.open_write(&path, true).unwrap();
        f.write_all(b"payload").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"payload");
        assert_eq!(fs.stats().total(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_persists_the_exact_prefix_then_fails() {
        let fs = SimFs::new(IoPlan::new(IoConfig {
            enospc_after_bytes: 10,
            seed: 1,
            ..Default::default()
        }));
        let dir = temp_dir("enospc");
        let path = dir.join("full.bin");
        let mut f = fs.open_write(&path, true).unwrap();
        f.write_all(b"123456").unwrap(); // 6 bytes, fits
        let err = f.write_all(b"789abc").unwrap_err(); // 4 of 6 fit
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"123456789a");
        assert_eq!(fs.stats().enospc.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_capacity_rederived_on_reopen() {
        // A resumed process opening the same (named) file must see the
        // same remaining capacity, not a fresh disk.
        let fs = SimFs::new(IoPlan::new(IoConfig {
            enospc_after_bytes: 8,
            seed: 2,
            ..Default::default()
        }));
        let dir = temp_dir("enospc-reopen");
        let path = dir.join("cap.bin");
        let mut f = fs.open_write(&path, true).unwrap();
        f.write_all(b"12345678").unwrap();
        drop(f);
        // Fresh SimFs simulates a fresh process: cursors start empty.
        let fs2 = SimFs::new(IoPlan::new(IoConfig {
            enospc_after_bytes: 8,
            seed: 2,
            ..Default::default()
        }));
        let mut f = fs2.open_write(&path, false).unwrap();
        let err = f.write_all(b"x").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_corruption_changes_exactly_one_byte() {
        let fs = SimFs::new(IoPlan::new(IoConfig {
            read_corrupt_probability: 1.0,
            seed: 3,
            ..Default::default()
        }));
        let dir = temp_dir("corrupt-read");
        let path = dir.join("data.bin");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let got = fs.read(&path).unwrap();
        let flipped: Vec<usize> = (0..64).filter(|&i| got[i] != 0).collect();
        assert_eq!(flipped.len(), 1, "exactly one byte must differ");
        assert_eq!(fs.stats().reads_corrupted.load(Ordering::Relaxed), 1);
        // The on-disk bytes are untouched: it's read-side rot.
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8; 64]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_and_rename_failures_fire_and_count() {
        let fs = SimFs::new(IoPlan::new(IoConfig {
            fsync_fail_probability: 1.0,
            rename_fail_probability: 1.0,
            seed: 4,
            ..Default::default()
        }));
        let dir = temp_dir("fail-ops");
        let path = dir.join("f.bin");
        let mut f = fs.open_write(&path, true).unwrap();
        f.write_all(b"x").unwrap();
        assert!(f.sync_data().is_err());
        drop(f);
        assert!(fs.rename(&path, &dir.join("g.bin")).is_err());
        assert_eq!(fs.stats().fsync_failures.load(Ordering::Relaxed), 1);
        assert_eq!(fs.stats().rename_failures.load(Ordering::Relaxed), 1);
        // The failed rename left the source in place.
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
