//! RSA key generation and RSASSA-PKCS1-v1_5 signatures (RFC 8017), plus the
//! minimal ASN.1 DER codec needed for `SubjectPublicKeyInfo` — the encoding
//! DKIM key records carry in their `p=` tag (RFC 6376 §3.6.1).

use crate::bigint::{BigUint, Rng64};
use crate::HashAlg;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message representative out of range or key too small for the
    /// requested encoding.
    MessageTooLong,
    /// Signature length does not match the modulus length.
    BadSignatureLength,
    /// The signature failed to verify.
    VerifyFailed,
    /// A DER structure could not be parsed.
    Der(&'static str),
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong => write!(f, "message too long for RSA modulus"),
            RsaError::BadSignatureLength => write!(f, "signature length mismatch"),
            RsaError::VerifyFailed => write!(f, "signature verification failed"),
            RsaError::Der(what) => write!(f, "DER parse error: {what}"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
}

/// An RSA private key.
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
    /// Private exponent.
    pub d: BigUint,
    /// CRT acceleration parameters, present when the factorization is
    /// known (generated keys). Signatures are bit-identical with or
    /// without them; `None` only costs speed.
    pub crt: Option<RsaCrtParams>,
}

/// The Chinese-remainder private-key form (RFC 8017 §3.2, second
/// representation): signing computes two half-width exponentiations
/// `m^dP mod p` / `m^dQ mod q` and recombines with Garner's formula
/// instead of one full-width `m^d mod n` — ~4× fewer limb operations,
/// same signature bytes (`s = m^d mod n` is unique in `[0, n)`).
#[derive(Debug, Clone)]
pub struct RsaCrtParams {
    /// First prime factor.
    pub p: BigUint,
    /// Second prime factor.
    pub q: BigUint,
    /// `d mod (p − 1)`.
    pub dp: BigUint,
    /// `d mod (q − 1)`.
    pub dq: BigUint,
    /// `q⁻¹ mod p`.
    pub qinv: BigUint,
}

impl RsaCrtParams {
    /// `m^d mod n` via the two prime-power residues.
    fn modpow_d(&self, m: &BigUint) -> BigUint {
        let m1 = m.modpow(&self.dp, &self.p);
        let m2 = m.modpow(&self.dq, &self.q);
        // h = qinv·(m1 − m2) mod p, with the subtraction lifted into
        // [0, p) first (m2 can be ≥ p when q > p).
        let m2p = m2.rem(&self.p);
        let diff = if m1 >= m2p {
            m1.sub(&m2p)
        } else {
            m1.add(&self.p).sub(&m2p)
        };
        let h = diff.mulmod(&self.qinv, &self.p);
        m2.add(&self.q.mul(&h))
    }
}

/// A generated key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half.
    pub public: RsaPublicKey,
    /// The private half.
    pub private: RsaPrivateKey,
}

/// The fixed public exponent used for generated keys (F4).
pub const PUBLIC_EXPONENT: u64 = 65537;

impl RsaKeyPair {
    /// Generate a key pair with a modulus of `bits` bits.
    ///
    /// 1024 bits is the traditional DKIM key size; 2048 the current
    /// recommendation. Test code uses smaller keys for speed.
    pub fn generate(bits: usize, rng: &mut dyn Rng64) -> RsaKeyPair {
        assert!(bits >= 128, "modulus too small to be meaningful");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = BigUint::gen_prime(bits / 2, rng);
            let q = BigUint::gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.mod_inverse(&phi) else {
                continue;
            };
            let Some(qinv) = q.mod_inverse(&p) else {
                continue; // unreachable for distinct primes
            };
            let crt = RsaCrtParams {
                dp: d.rem(&p.sub(&BigUint::one())),
                dq: d.rem(&q.sub(&BigUint::one())),
                qinv,
                p,
                q,
            };
            return RsaKeyPair {
                public: RsaPublicKey {
                    n: n.clone(),
                    e: e.clone(),
                },
                private: RsaPrivateKey {
                    n,
                    e,
                    d,
                    crt: Some(crt),
                },
            };
        }
    }
}

/// `DigestInfo` DER prefixes (RFC 8017 §9.2 note 1).
fn digest_info_prefix(alg: HashAlg) -> &'static [u8] {
    match alg {
        HashAlg::Sha256 => &[
            0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x01, 0x05, 0x00, 0x04, 0x20,
        ],
        HashAlg::Sha1 => &[
            0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
            0x14,
        ],
    }
}

/// EMSA-PKCS1-v1_5 encoding of a message hash into `k` bytes.
fn emsa_encode(alg: HashAlg, hash: &[u8], k: usize) -> Result<Vec<u8>, RsaError> {
    let prefix = digest_info_prefix(alg);
    let t_len = prefix.len() + hash.len();
    if k < t_len + 11 {
        return Err(RsaError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(hash);
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

impl RsaPrivateKey {
    /// Modulus length in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Sign `message` with RSASSA-PKCS1-v1_5 using the given hash.
    pub fn sign(&self, alg: HashAlg, message: &[u8]) -> Result<Vec<u8>, RsaError> {
        self.sign_digest(alg, &alg.digest(message))
    }

    /// Sign a precomputed digest (the DKIM data-hash path).
    pub fn sign_digest(&self, alg: HashAlg, digest: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_len();
        let em = emsa_encode(alg, digest, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = match &self.crt {
            Some(crt) => crt.modpow_d(&m),
            None => m.modpow(&self.d, &self.n),
        };
        s.to_bytes_be_padded(k).ok_or(RsaError::MessageTooLong)
    }
}

impl RsaPublicKey {
    /// Modulus length in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verify an RSASSA-PKCS1-v1_5 signature over `message`.
    pub fn verify(&self, alg: HashAlg, message: &[u8], signature: &[u8]) -> Result<(), RsaError> {
        self.verify_digest(alg, &alg.digest(message), signature)
    }

    /// Verify against a precomputed digest (the DKIM data-hash path).
    pub fn verify_digest(
        &self,
        alg: HashAlg,
        digest: &[u8],
        signature: &[u8],
    ) -> Result<(), RsaError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(RsaError::BadSignatureLength);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_big(&self.n) != std::cmp::Ordering::Less {
            return Err(RsaError::VerifyFailed);
        }
        let m = s.modpow(&self.e, &self.n);
        let em = m.to_bytes_be_padded(k).ok_or(RsaError::VerifyFailed)?;
        let expected = emsa_encode(alg, digest, k)?;
        if em == expected {
            Ok(())
        } else {
            Err(RsaError::VerifyFailed)
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal DER for SubjectPublicKeyInfo (rsaEncryption)
// ---------------------------------------------------------------------------

/// OID 1.2.840.113549.1.1.1 (rsaEncryption), DER-encoded value bytes.
const OID_RSA_ENCRYPTION: &[u8] = &[0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x01, 0x01, 0x01];

fn der_len(len: usize, out: &mut Vec<u8>) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let bytes = (usize::BITS / 8 - len.leading_zeros() / 8) as usize;
        out.push(0x80 | bytes as u8);
        for i in (0..bytes).rev() {
            out.push((len >> (i * 8)) as u8);
        }
    }
}

fn der_tlv(tag: u8, value: &[u8], out: &mut Vec<u8>) {
    out.push(tag);
    der_len(value.len(), out);
    out.extend_from_slice(value);
}

fn der_integer(v: &BigUint, out: &mut Vec<u8>) {
    let mut bytes = v.to_bytes_be();
    if bytes.is_empty() {
        bytes.push(0);
    }
    // INTEGER is signed: prepend 0x00 if the high bit is set.
    if bytes[0] & 0x80 != 0 {
        bytes.insert(0, 0);
    }
    der_tlv(0x02, &bytes, out);
}

/// Encode an [`RsaPublicKey`] as a DER `SubjectPublicKeyInfo`
/// (the format carried in a DKIM key record's `p=` tag).
pub fn encode_spki(key: &RsaPublicKey) -> Vec<u8> {
    // RSAPublicKey ::= SEQUENCE { modulus INTEGER, publicExponent INTEGER }
    let mut rsa_pub = Vec::new();
    der_integer(&key.n, &mut rsa_pub);
    der_integer(&key.e, &mut rsa_pub);
    let mut rsa_pub_seq = Vec::new();
    der_tlv(0x30, &rsa_pub, &mut rsa_pub_seq);

    // AlgorithmIdentifier ::= SEQUENCE { OID rsaEncryption, NULL }
    let mut alg = Vec::new();
    der_tlv(0x06, OID_RSA_ENCRYPTION, &mut alg);
    der_tlv(0x05, &[], &mut alg);
    let mut alg_seq = Vec::new();
    der_tlv(0x30, &alg, &mut alg_seq);

    // BIT STRING with zero unused bits wrapping RSAPublicKey.
    let mut bit_string = vec![0u8];
    bit_string.extend_from_slice(&rsa_pub_seq);

    let mut spki_body = alg_seq;
    der_tlv(0x03, &bit_string, &mut spki_body);

    let mut out = Vec::new();
    der_tlv(0x30, &spki_body, &mut out);
    out
}

struct DerReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> DerReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        DerReader { data, pos: 0 }
    }

    fn read_tlv(&mut self, expect_tag: u8) -> Result<&'a [u8], RsaError> {
        let tag = *self
            .data
            .get(self.pos)
            .ok_or(RsaError::Der("truncated tag"))?;
        if tag != expect_tag {
            return Err(RsaError::Der("unexpected tag"));
        }
        self.pos += 1;
        let first = *self
            .data
            .get(self.pos)
            .ok_or(RsaError::Der("truncated length"))?;
        self.pos += 1;
        let len = if first < 0x80 {
            first as usize
        } else {
            let n = (first & 0x7f) as usize;
            if n == 0 || n > 8 {
                return Err(RsaError::Der("bad long-form length"));
            }
            let mut len = 0usize;
            for _ in 0..n {
                let b = *self
                    .data
                    .get(self.pos)
                    .ok_or(RsaError::Der("truncated length"))?;
                self.pos += 1;
                len = (len << 8) | b as usize;
            }
            len
        };
        let end = self
            .pos
            .checked_add(len)
            .ok_or(RsaError::Der("length overflow"))?;
        if end > self.data.len() {
            return Err(RsaError::Der("value past end"));
        }
        let value = &self.data[self.pos..end];
        self.pos = end;
        Ok(value)
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Decode a DER `SubjectPublicKeyInfo` carrying an rsaEncryption key.
pub fn decode_spki(der: &[u8]) -> Result<RsaPublicKey, RsaError> {
    let mut outer = DerReader::new(der);
    let spki_body = outer.read_tlv(0x30)?;
    if !outer.done() {
        return Err(RsaError::Der("trailing bytes after SPKI"));
    }
    let mut spki = DerReader::new(spki_body);
    let alg_body = spki.read_tlv(0x30)?;
    let mut alg = DerReader::new(alg_body);
    let oid = alg.read_tlv(0x06)?;
    if oid != OID_RSA_ENCRYPTION {
        return Err(RsaError::Der("not an rsaEncryption key"));
    }
    // Parameters must be NULL (or absent; we require NULL as RFC 3279 does).
    if !alg.done() {
        let null = alg.read_tlv(0x05)?;
        if !null.is_empty() || !alg.done() {
            return Err(RsaError::Der("bad algorithm parameters"));
        }
    }
    let bit_string = spki.read_tlv(0x03)?;
    if !spki.done() {
        return Err(RsaError::Der("trailing bytes in SPKI body"));
    }
    let Some((&unused, key_der)) = bit_string.split_first() else {
        return Err(RsaError::Der("empty bit string"));
    };
    if unused != 0 {
        return Err(RsaError::Der("unused bits in key bit string"));
    }
    let mut keyr = DerReader::new(key_der);
    let rsa_body = keyr.read_tlv(0x30)?;
    if !keyr.done() {
        return Err(RsaError::Der("trailing bytes after RSAPublicKey"));
    }
    let mut rsar = DerReader::new(rsa_body);
    let n_bytes = rsar.read_tlv(0x02)?;
    let e_bytes = rsar.read_tlv(0x02)?;
    if !rsar.done() {
        return Err(RsaError::Der("trailing bytes in RSAPublicKey"));
    }
    Ok(RsaPublicKey {
        n: BigUint::from_bytes_be(n_bytes),
        e: BigUint::from_bytes_be(e_bytes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::SplitMix64;

    fn test_key() -> RsaKeyPair {
        let mut rng = SplitMix64::new(0xd155_ec10);
        RsaKeyPair::generate(512, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = test_key();
        let msg = b"From: a@example.com\r\nSubject: hi\r\n\r\nbody";
        let sig = kp.private.sign(HashAlg::Sha256, msg).unwrap();
        assert_eq!(sig.len(), kp.public.modulus_len());
        kp.public.verify(HashAlg::Sha256, msg, &sig).unwrap();
    }

    #[test]
    fn crt_signature_is_bit_identical_to_plain() {
        let kp = test_key();
        assert!(kp.private.crt.is_some(), "generated keys carry CRT params");
        let mut plain = kp.private.clone();
        plain.crt = None;
        for msg in [&b"abc"[..], b"", b"a longer message body\r\nwith lines"] {
            let fast = kp.private.sign(HashAlg::Sha256, msg).unwrap();
            let slow = plain.sign(HashAlg::Sha256, msg).unwrap();
            assert_eq!(fast, slow, "CRT path diverged from m^d mod n");
            kp.public.verify(HashAlg::Sha256, msg, &fast).unwrap();
        }
    }

    #[test]
    fn sign_verify_sha1() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha1, b"legacy").unwrap();
        kp.public.verify(HashAlg::Sha1, b"legacy", &sig).unwrap();
    }

    #[test]
    fn tampered_message_fails() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"original").unwrap();
        assert_eq!(
            kp.public.verify(HashAlg::Sha256, b"tampered", &sig),
            Err(RsaError::VerifyFailed)
        );
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = test_key();
        let mut sig = kp.private.sign(HashAlg::Sha256, b"msg").unwrap();
        sig[0] ^= 1;
        assert!(kp.public.verify(HashAlg::Sha256, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_hash_alg_fails() {
        let kp = test_key();
        let sig = kp.private.sign(HashAlg::Sha256, b"msg").unwrap();
        assert!(kp.public.verify(HashAlg::Sha1, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let kp = test_key();
        assert_eq!(
            kp.public.verify(HashAlg::Sha256, b"msg", &[0u8; 3]),
            Err(RsaError::BadSignatureLength)
        );
    }

    #[test]
    fn spki_roundtrip() {
        let kp = test_key();
        let der = encode_spki(&kp.public);
        let decoded = decode_spki(&der).unwrap();
        assert_eq!(decoded, kp.public);
    }

    #[test]
    fn spki_rejects_truncation() {
        let kp = test_key();
        let der = encode_spki(&kp.public);
        for cut in [0, 1, der.len() / 2, der.len() - 1] {
            assert!(decode_spki(&der[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn spki_rejects_trailing_garbage() {
        let kp = test_key();
        let mut der = encode_spki(&kp.public);
        der.push(0x00);
        assert!(decode_spki(&der).is_err());
    }

    #[test]
    fn key_too_small_for_digest() {
        // A 128-bit key cannot hold a SHA-256 DigestInfo.
        let mut rng = SplitMix64::new(3);
        let kp = RsaKeyPair::generate(128, &mut rng);
        assert_eq!(
            kp.private.sign(HashAlg::Sha256, b"x"),
            Err(RsaError::MessageTooLong)
        );
    }

    #[test]
    fn keypair_is_consistent() {
        let kp = test_key();
        // e*d == 1 mod lcm is implied by sign/verify, but check basic shape.
        assert_eq!(kp.public.n, kp.private.n);
        assert_eq!(kp.public.e.to_u64(), Some(PUBLIC_EXPONENT));
        assert_eq!(kp.public.n.bit_len(), 512);
    }
}
