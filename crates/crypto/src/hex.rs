//! Lowercase hexadecimal encoding/decoding (test vectors and diagnostics).

/// Encode bytes as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn known() {
        assert_eq!(encode(b"\x00\xff\x10"), "00ff10");
        assert_eq!(decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(decode("abc"), None);
        assert_eq!(decode("zz"), None);
    }
}
