//! HMAC (RFC 2104) over SHA-1 or SHA-256.
//!
//! The measurement apparatus derives compact, stable `mtaid`/`domainid`
//! labels from target identities with HMAC-SHA-256 so that From-domain
//! labels are unlinkable without the campaign key (mirroring how the paper's
//! per-target From addresses were uniquely identifiable only to the
//! experimenters).

use crate::HashAlg;

const BLOCK_LEN: usize = 64; // both SHA-1 and SHA-256 use a 64-byte block

/// Compute `HMAC(key, message)` with the given hash algorithm.
pub fn hmac(alg: HashAlg, key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let kh = alg.digest(key);
        key_block[..kh.len()].copy_from_slice(&kh);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Vec::with_capacity(BLOCK_LEN + message.len());
    inner.extend_from_slice(&ipad);
    inner.extend_from_slice(message);
    let inner_hash = alg.digest(&inner);
    let mut outer = Vec::with_capacity(BLOCK_LEN + inner_hash.len());
    outer.extend_from_slice(&opad);
    outer.extend_from_slice(&inner_hash);
    alg.digest(&outer)
}

/// Convenience: HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let v = hmac(HashAlg::Sha256, key, message);
    let mut out = [0u8; 32];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let out = hmac(HashAlg::Sha256, &key, b"Hi There");
        assert_eq!(
            hex::encode(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let out = hmac(HashAlg::Sha256, b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_key() {
        // 131-byte key forces the key-hash path.
        let key = [0xaa; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        let out = hmac(HashAlg::Sha256, &key, msg);
        assert_eq!(
            hex::encode(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0b; 20];
        let out = hmac(HashAlg::Sha1, &key, b"Hi There");
        assert_eq!(
            hex::encode(&out),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }
}
