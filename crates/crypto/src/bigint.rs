//! Arbitrary-precision unsigned (and minimally signed) integer arithmetic.
//!
//! Just enough number theory for RSA: schoolbook multiplication, Knuth
//! Algorithm D division, square-and-multiply modular exponentiation,
//! Miller–Rabin primality testing and modular inverses via the extended
//! Euclidean algorithm.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (the canonical form of zero is an empty limb vector).

use std::cmp::Ordering;

/// Source of randomness for prime generation and Miller–Rabin bases.
///
/// Defined here (rather than depending on an RNG crate) so the simulator's
/// deterministic PRNG can drive key generation reproducibly.
pub trait Rng64 {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A small, fast, deterministic PRNG (SplitMix64) adequate for generating
/// *test* RSA keys reproducibly. Not a CSPRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros.
    limbs: Vec<u64>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.limbs.is_empty() {
            write!(f, "0")?;
        } else {
            for (i, l) in self.limbs.iter().rev().enumerate() {
                if i == 0 {
                    write!(f, "{l:x}")?;
                } else {
                    write!(f, "{l:016x}")?;
                }
            }
        }
        write!(f, ")")
    }
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From big-endian bytes (leading zeros permitted).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// To big-endian bytes with no leading zeros (zero encodes as empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.limbs.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        let mut iter = self.limbs.iter().rev();
        let top = iter.next().unwrap();
        let top_bytes = top.to_be_bytes();
        let skip = top.leading_zeros() as usize / 8;
        out.extend_from_slice(&top_bytes[skip..]);
        for limb in iter {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// To exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit (used by RSA I2OSP).
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Test bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Value as `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let a = limb as u128;
            let b = *short.get(i).unwrap_or(&0) as u128;
            let sum = a + b + carry as u128;
            out.push(sum as u64);
            carry = (sum >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, o1) = a.overflowing_sub(b);
            let (d2, o2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (o1 | o2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Compare.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift left by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Shift right by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder: `(self / divisor, self % divisor)`.
    ///
    /// Knuth TAOCP vol. 2 Algorithm 4.3.1 D with 64-bit limbs.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Single-limb divisor: simple long division.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u128;
            let mut q = vec![0u64; self.limbs.len()];
            let mut rem = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        let n = v.len();
        // Ensure u has at least n+1 limbs and one extra headroom limb.
        u.push(0);
        let m = u.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;

        for j in (0..=m).rev() {
            let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = num / v[n - 1] as u128;
            let mut rhat = num % v[n - 1] as u128;
            // Refine the 2-limb estimate against the next limb (D3).
            while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }
            // D4: multiply and subtract u[j..=j+n] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (p as u64) as i128;
                let cur = u[j + i] as i128 - sub + borrow;
                if cur < 0 {
                    u[j + i] = (cur + (1i128 << 64)) as u64;
                    borrow = -1;
                } else {
                    u[j + i] = cur as u64;
                    borrow = 0;
                }
            }
            let cur = u[j + n] as i128 - carry as i128 + borrow;
            if cur < 0 {
                // D6: estimate was one too large; add back.
                u[j + n] = (cur + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let sum = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = sum as u64;
                    carry2 = sum >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u64);
            } else {
                u[j + n] = cur as u64;
            }
            q[j] = qhat as u64;
        }

        let mut qn = BigUint { limbs: q };
        qn.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        (qn, rem.shr(shift))
    }

    /// `self % m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self * other) % m`.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m`.
    ///
    /// Odd multi-limb moduli — the RSA sign/verify and Miller–Rabin
    /// case — go through a Montgomery-form 4-bit-window ladder
    /// ([`Montgomery`]), which replaces every schoolbook
    /// multiply-then-divide step with one CIOS pass. Even or
    /// single-limb moduli keep the plain square-and-multiply path.
    /// Both paths return identical values for identical inputs.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.limbs == [1] {
            return BigUint::zero();
        }
        if m.is_odd() && m.limbs.len() > 1 {
            return Montgomery::new(m).modpow(self, exp);
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m);
        let bits = exp.bit_len();
        for i in 0..bits {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            if i + 1 < bits {
                base = base.mulmod(&base, m);
            }
        }
        result
    }

    /// Greatest common divisor (binary-free, Euclid via div_rem).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` mod `m`, if it exists.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() {
            return None;
        }
        // Extended Euclid tracking only the coefficient of `self`.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = SignedBig::zero();
        let mut t1 = SignedBig::from_biguint(BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            let t2 = t0.sub(&t1.mul_biguint(&q));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != BigUint::one() {
            return None;
        }
        Some(t0.rem_euclid(m))
    }

    /// Uniform random value with exactly `bits` significant bits
    /// (top bit forced to 1).
    pub fn random_bits(bits: usize, rng: &mut dyn Rng64) -> BigUint {
        assert!(bits > 0);
        let limbs_needed = bits.div_ceil(64);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.next_u64());
        }
        // Mask off excess bits, set the top bit.
        let top_bits = bits - (limbs_needed - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        let last = limbs.last_mut().unwrap();
        *last &= mask;
        *last |= 1u64 << (top_bits - 1);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Uniform random value in `[0, bound)` by rejection sampling.
    pub fn random_below(bound: &BigUint, rng: &mut dyn Rng64) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        let limbs_needed = bits.div_ceil(64);
        let top_bits = bits - (limbs_needed - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut limbs = Vec::with_capacity(limbs_needed);
            for _ in 0..limbs_needed {
                limbs.push(rng.next_u64());
            }
            *limbs.last_mut().unwrap() &= mask;
            let mut n = BigUint { limbs };
            n.normalize();
            if n.cmp_big(bound) == Ordering::Less {
                return n;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime(&self, rounds: usize, rng: &mut dyn Rng64) -> bool {
        if self.is_zero() {
            return false;
        }
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if v == 2 || v == 3 {
                return true;
            }
        }
        if !self.is_odd() {
            return false;
        }
        // Trial division by small primes.
        for &p in SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            if self.cmp_big(&pb) == Ordering::Equal {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self-1 = d * 2^s.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut s = 0usize;
        let mut d = n_minus_1.clone();
        while !d.is_odd() {
            d = d.shr(1);
            s += 1;
        }
        let two = BigUint::from_u64(2);
        let n_minus_3 = self.sub(&BigUint::from_u64(3));
        'witness: for _ in 0..rounds {
            // a in [2, n-2]
            let a = BigUint::random_below(&n_minus_3, rng).add(&two);
            let mut x = a.modpow(&d, self);
            if x == BigUint::one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generate a random probable prime with exactly `bits` bits.
    pub fn gen_prime(bits: usize, rng: &mut dyn Rng64) -> BigUint {
        assert!(bits >= 4, "prime too small");
        loop {
            let mut candidate = BigUint::random_bits(bits, rng);
            // Force odd.
            if !candidate.is_odd() {
                candidate = candidate.add(&BigUint::one());
                if candidate.bit_len() != bits {
                    continue;
                }
            }
            if candidate.is_probable_prime(24, rng) {
                return candidate;
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

/// Montgomery-reduction context for one odd multi-limb modulus.
///
/// Residues are held as exactly-`k`-limb little-endian vectors scaled
/// by `R = 2^(64k)`; one CIOS interleaved multiply-and-reduce
/// ([`Montgomery::mont_mul`]) replaces the schoolbook multiply plus
/// Knuth division of [`BigUint::mulmod`]. This is the engine behind
/// [`BigUint::modpow`] for RSA signing/verification and Miller–Rabin
/// witnesses; every value it produces is identical to the schoolbook
/// path's — Montgomery form only changes the representation between
/// the entry and exit conversions.
struct Montgomery {
    /// Modulus limbs, little-endian, length `k ≥ 2`, top limb nonzero.
    m: Vec<u64>,
    /// `-m^{-1} mod 2^64`.
    n0inv: u64,
    /// `R² mod m`: multiplying by it (in Montgomery form) converts a
    /// plain residue into Montgomery form.
    rr: Vec<u64>,
}

impl Montgomery {
    fn new(m: &BigUint) -> Montgomery {
        debug_assert!(m.is_odd() && m.limbs.len() > 1);
        let k = m.limbs.len();
        // Newton–Hensel iteration: each step doubles the number of
        // correct low bits of m₀⁻¹ mod 2^64 (seeding with m₀ gives 3).
        let m0 = m.limbs[0];
        let mut inv = m0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let mut rr = BigUint::one().shl(128 * k).rem(m).limbs;
        rr.resize(k, 0);
        Montgomery {
            m: m.limbs.clone(),
            n0inv: inv.wrapping_neg(),
            rr,
        }
    }

    /// CIOS Montgomery product: `a·b·R⁻¹ mod m`, operands and result
    /// exactly `k` limbs.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.m.len();
        let mut t = vec![0u64; k + 2];
        for &ai in a {
            let mut carry = 0u64;
            for j in 0..k {
                let acc = t[j] as u128 + ai as u128 * b[j] as u128 + carry as u128;
                t[j] = acc as u64;
                carry = (acc >> 64) as u64;
            }
            let acc = t[k] as u128 + carry as u128;
            t[k] = acc as u64;
            t[k + 1] = (acc >> 64) as u64;

            // One reduction step: add u·m so the low limb cancels, then
            // shift the whole accumulator down one limb.
            let u = t[0].wrapping_mul(self.n0inv);
            let acc = t[0] as u128 + u as u128 * self.m[0] as u128;
            let mut carry = (acc >> 64) as u64;
            for j in 1..k {
                let acc = t[j] as u128 + u as u128 * self.m[j] as u128 + carry as u128;
                t[j - 1] = acc as u64;
                carry = (acc >> 64) as u64;
            }
            let acc = t[k] as u128 + carry as u128;
            t[k - 1] = acc as u64;
            t[k] = t[k + 1] + ((acc >> 64) as u64);
            t[k + 1] = 0;
        }
        // CIOS keeps t < 2m, so one conditional subtract normalizes.
        let over = t[k] != 0
            || self
                .m
                .iter()
                .zip(&t[..k])
                .rev()
                .find(|(mi, ti)| mi != ti)
                .is_none_or(|(mi, ti)| ti > mi);
        t.truncate(k);
        if over {
            let mut borrow = 0u64;
            for (ti, &mi) in t.iter_mut().zip(&self.m) {
                let (d1, b1) = ti.overflowing_sub(mi);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *ti = d2;
                borrow = u64::from(b1 | b2);
            }
        }
        t
    }

    /// `base^exp mod m` by a 4-bit-window ladder over Montgomery
    /// squarings (left-to-right: 4 squarings + at most one table
    /// multiply per exponent nibble).
    fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one();
        }
        let k = self.m.len();
        let modulus = BigUint {
            limbs: self.m.clone(),
        };
        let mut plain_one = vec![0u64; k];
        plain_one[0] = 1;
        let one_mont = self.mont_mul(&plain_one, &self.rr);

        let mut b = base.rem(&modulus).limbs;
        b.resize(k, 0);
        let b_mont = self.mont_mul(&b, &self.rr);

        // table[i] = base^i in Montgomery form, i ∈ 0..16.
        let mut table = Vec::with_capacity(16);
        table.push(one_mont.clone());
        table.push(b_mont);
        for i in 2..16 {
            let next = self.mont_mul(&table[i - 1], &table[1]);
            table.push(next);
        }

        let windows = exp.bit_len().div_ceil(4);
        let mut acc = one_mont;
        for w in (0..windows).rev() {
            if w + 1 < windows {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut idx = 0usize;
            for bit in 0..4 {
                if exp.bit(w * 4 + bit) {
                    idx |= 1 << bit;
                }
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        let mut out = BigUint {
            limbs: self.mont_mul(&acc, &plain_one),
        };
        out.normalize();
        out
    }
}

/// Primes below 1000 for trial division.
const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// A sign-magnitude integer used only by the extended Euclidean algorithm.
#[derive(Debug, Clone)]
struct SignedBig {
    negative: bool,
    mag: BigUint,
}

impl SignedBig {
    fn zero() -> Self {
        SignedBig {
            negative: false,
            mag: BigUint::zero(),
        }
    }

    fn from_biguint(mag: BigUint) -> Self {
        SignedBig {
            negative: false,
            mag,
        }
    }

    fn mul_biguint(&self, other: &BigUint) -> SignedBig {
        let mag = self.mag.mul(other);
        SignedBig {
            negative: self.negative && !mag.is_zero(),
            mag,
        }
    }

    fn sub(&self, other: &SignedBig) -> SignedBig {
        match (self.negative, other.negative) {
            (false, false) => {
                if self.mag.cmp_big(&other.mag) != Ordering::Less {
                    SignedBig {
                        negative: false,
                        mag: self.mag.sub(&other.mag),
                    }
                } else {
                    SignedBig {
                        negative: true,
                        mag: other.mag.sub(&self.mag),
                    }
                }
            }
            (false, true) => SignedBig {
                negative: false,
                mag: self.mag.add(&other.mag),
            },
            (true, false) => {
                let mag = self.mag.add(&other.mag);
                SignedBig {
                    negative: !mag.is_zero(),
                    mag,
                }
            }
            (true, true) => {
                // (-a) - (-b) = b - a
                if other.mag.cmp_big(&self.mag) != Ordering::Less {
                    SignedBig {
                        negative: false,
                        mag: other.mag.sub(&self.mag),
                    }
                } else {
                    SignedBig {
                        negative: true,
                        mag: self.mag.sub(&other.mag),
                    }
                }
            }
        }
    }

    /// Value reduced into `[0, m)`.
    fn rem_euclid(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        if self.negative && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_bytes_be(&v.to_be_bytes())
    }

    #[test]
    fn bytes_roundtrip() {
        for v in [0u128, 1, 255, 256, u64::MAX as u128, u128::MAX, 1 << 64] {
            let n = big(v);
            let bytes = n.to_bytes_be();
            assert_eq!(BigUint::from_bytes_be(&bytes), n, "v={v}");
        }
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0]), BigUint::zero());
    }

    #[test]
    fn padded_bytes() {
        assert_eq!(big(1).to_bytes_be_padded(4).unwrap(), vec![0, 0, 0, 1]);
        assert_eq!(big(0x1_0000).to_bytes_be_padded(2), None);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(big(5).add(&big(7)), big(12));
        assert_eq!(big(12).sub(&big(7)), big(5));
        assert_eq!(
            big(u64::MAX as u128).add(&big(1)),
            big(u64::MAX as u128 + 1)
        );
        assert_eq!(
            big(u128::MAX).add(&big(1)).to_bytes_be(),
            vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = big(1).sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (12345, 6789),
            (u64::MAX as u128, u64::MAX as u128),
            ((1 << 63) + 12345, (1 << 60) + 999),
        ];
        for (a, b) in cases {
            assert_eq!(big(a).mul(&big(b)), big(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let cases = [
            (100u128, 7u128),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            ((1 << 100) + 12345, (1 << 40) + 17),
            (1, 2),
            (0, 5),
            (81985529216486895, 81985529216486895),
        ];
        for (a, b) in cases {
            let (q, r) = big(a).div_rem(&big(b));
            assert_eq!(q, big(a / b), "{a}/{b} quotient");
            assert_eq!(r, big(a % b), "{a}%{b} remainder");
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..200 {
            let a = BigUint::random_bits(1 + (rng.next_u64() % 512) as usize, &mut rng);
            let b = BigUint::random_bits(1 + (rng.next_u64() % 256) as usize, &mut rng);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b);
            assert!(r.cmp_big(&b) == Ordering::Less);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(64), big(1 << 64));
        assert_eq!(big(1 << 64).shr(64), big(1));
        assert_eq!(big(0b1011).shl(3), big(0b1011000));
        assert_eq!(big(0b1011000).shr(3), big(0b1011));
        assert_eq!(big(7).shr(10), BigUint::zero());
    }

    #[test]
    fn modpow_known() {
        // 4^13 mod 497 = 445
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        // Fermat: a^(p-1) = 1 mod p
        let p = big(1_000_000_007);
        let a = big(123_456_789);
        assert_eq!(a.modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
        // mod 1 is 0
        assert_eq!(big(5).modpow(&big(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn montgomery_modpow_matches_schoolbook() {
        // Odd multi-limb moduli dispatch to the Montgomery window
        // ladder; check it against a plain mulmod square-and-multiply
        // chain on random inputs, including base ≥ m and base ≡ 0.
        fn schoolbook(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
            let mut result = BigUint::one();
            let mut b = base.rem(m);
            let bits = exp.bit_len();
            for i in 0..bits {
                if exp.bit(i) {
                    result = result.mulmod(&b, m);
                }
                if i + 1 < bits {
                    b = b.mulmod(&b, m);
                }
            }
            result
        }
        let mut rng = SplitMix64::new(0x5eed_40d5);
        for _ in 0..16 {
            let m = BigUint::random_bits(192, &mut rng)
                .shl(1)
                .add(&BigUint::one());
            let base = BigUint::random_bits(256, &mut rng);
            let exp = BigUint::random_bits(96, &mut rng);
            assert_eq!(base.modpow(&exp, &m), schoolbook(&base, &exp, &m));
            // Degenerate bases and exponents.
            assert_eq!(BigUint::zero().modpow(&exp, &m), BigUint::zero());
            assert_eq!(m.modpow(&exp, &m), BigUint::zero());
            assert_eq!(base.modpow(&BigUint::zero(), &m), BigUint::one());
        }
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(big(48).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        let inv = big(3).mod_inverse(&big(11)).unwrap();
        assert_eq!(inv, big(4)); // 3*4 = 12 = 1 mod 11
        assert!(big(6).mod_inverse(&big(9)).is_none()); // gcd 3
                                                        // Large: e=65537 mod a big odd modulus
        let mut rng = SplitMix64::new(7);
        let m = BigUint::gen_prime(128, &mut rng);
        let e = big(65537);
        let d = e.mod_inverse(&m).unwrap();
        assert_eq!(e.mulmod(&d, &m), BigUint::one());
    }

    #[test]
    fn primality_small() {
        let mut rng = SplitMix64::new(1);
        let primes = [2u64, 3, 5, 17, 97, 257, 65537, 1_000_000_007];
        let composites = [
            1u64,
            4,
            15,
            91,
            561, /* Carmichael */
            65536,
            1_000_000_008,
        ];
        for p in primes {
            assert!(
                BigUint::from_u64(p).is_probable_prime(16, &mut rng),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !BigUint::from_u64(c).is_probable_prime(16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut rng = SplitMix64::new(99);
        let p = BigUint::gen_prime(96, &mut rng);
        assert_eq!(p.bit_len(), 96);
        assert!(p.is_odd());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = SplitMix64::new(5);
        let bound = big(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&bound, &mut rng);
            assert!(v.cmp_big(&bound) == Ordering::Less);
        }
    }
}
