//! # mailval-crypto
//!
//! Self-contained cryptographic and encoding primitives used by the DKIM
//! implementation and the measurement apparatus.
//!
//! Everything here is implemented from scratch so the workspace has no
//! external cryptography dependency:
//!
//! * [`base64`] — RFC 4648 standard-alphabet Base64 (DKIM signatures and key
//!   records are Base64-encoded).
//! * [`hex`] — lowercase hex encoding (diagnostics, test vectors).
//! * [`sha1`] / [`sha256`] — the two hash algorithms named by RFC 6376
//!   (`rsa-sha1` is historic; `rsa-sha256` is required).
//! * [`hmac`] — HMAC over either hash (used for deterministic identifier
//!   derivation in the measurement name encoding).
//! * [`bigint`] — arbitrary-precision unsigned integers with schoolbook
//!   multiplication, Knuth Algorithm D division and square-and-multiply
//!   modular exponentiation.
//! * [`rsa`] — RSA key generation (Miller–Rabin), PKCS#1 v1.5 signing and
//!   verification with SHA-1/SHA-256 `DigestInfo` encodings.
//!
//! The implementations favor clarity and determinism over speed; they are
//! more than fast enough for signing and verifying the simulated mail volume
//! used in the reproduction (see `EXPERIMENTS.md`).
//!
//! ## Security note
//!
//! This crate exists to make a *measurement reproduction* self-contained.
//! It is not hardened (no constant-time guarantees, no blinding) and must not
//! be used to protect real traffic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod base64;
pub mod bigint;
pub mod hex;
pub mod hmac;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use bigint::BigUint;
pub use rsa::{RsaCrtParams, RsaKeyPair, RsaPrivateKey, RsaPublicKey};

/// Hash algorithms supported by the workspace (the two named in RFC 6376).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// SHA-1 (historic; `rsa-sha1` DKIM signatures).
    Sha1,
    /// SHA-256 (the required DKIM algorithm).
    Sha256,
}

impl HashAlg {
    /// Digest output length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlg::Sha1 => 20,
            HashAlg::Sha256 => 32,
        }
    }

    /// Hash `data` with this algorithm.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Sha1 => sha1::sha1(data).to_vec(),
            HashAlg::Sha256 => sha256::sha256(data).to_vec(),
        }
    }
}
