//! RFC 4648 §4 standard-alphabet Base64 encoding and decoding.
//!
//! DKIM uses Base64 in two places: the `b=` signature tag and the `p=` public
//! key tag of the key record. Decoding here is whitespace-tolerant because
//! DKIM folds Base64 across header continuation lines (RFC 6376 §3.5 allows
//! FWS inside `b=`).

/// The standard Base64 alphabet (RFC 4648 Table 1).
const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte outside the alphabet (and not ignorable whitespace or padding)
    /// was encountered at the given offset into the *filtered* input.
    InvalidByte(u8),
    /// The (whitespace-stripped) input length is not a valid Base64 length,
    /// or padding appears in an illegal position.
    InvalidLength,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidByte(b) => write!(f, "invalid base64 byte 0x{b:02x}"),
            Base64Error::InvalidLength => write!(f, "invalid base64 length or padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

/// Encode `data` as standard Base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[n as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn decode_byte(b: u8) -> Option<u8> {
    match b {
        b'A'..=b'Z' => Some(b - b'A'),
        b'a'..=b'z' => Some(b - b'a' + 26),
        b'0'..=b'9' => Some(b - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode standard Base64, ignoring ASCII whitespace (space, tab, CR, LF),
/// tolerating both padded and unpadded input.
pub fn decode(input: &str) -> Result<Vec<u8>, Base64Error> {
    let mut vals: Vec<u8> = Vec::with_capacity(input.len());
    let mut padding = 0usize;
    for &b in input.as_bytes() {
        if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
            continue;
        }
        if b == b'=' {
            padding += 1;
            continue;
        }
        if padding > 0 {
            // Data after padding is malformed.
            return Err(Base64Error::InvalidLength);
        }
        match decode_byte(b) {
            Some(v) => vals.push(v),
            None => return Err(Base64Error::InvalidByte(b)),
        }
    }
    if padding > 2 {
        return Err(Base64Error::InvalidLength);
    }
    let rem = vals.len() % 4;
    if rem == 1 {
        return Err(Base64Error::InvalidLength);
    }
    if padding > 0 {
        // If padding is present it must complete the final quantum.
        if !(vals.len() + padding).is_multiple_of(4) {
            return Err(Base64Error::InvalidLength);
        }
    }
    let mut out = Vec::with_capacity(vals.len() * 3 / 4);
    let mut iter = vals.chunks_exact(4);
    for q in &mut iter {
        let n = ((q[0] as u32) << 18) | ((q[1] as u32) << 12) | ((q[2] as u32) << 6) | q[3] as u32;
        out.push((n >> 16) as u8);
        out.push((n >> 8) as u8);
        out.push(n as u8);
    }
    match iter.remainder() {
        [] => {}
        [a, b] => {
            let n = ((*a as u32) << 18) | ((*b as u32) << 12);
            out.push((n >> 16) as u8);
        }
        [a, b, c] => {
            let n = ((*a as u32) << 18) | ((*b as u32) << 12) | ((*c as u32) << 6);
            out.push((n >> 16) as u8);
            out.push((n >> 8) as u8);
        }
        _ => unreachable!("chunks_exact(4) remainder is < 4 and rem==1 was rejected"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        // RFC 4648 §10 test vectors.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert_eq!(decode("Zm9v").unwrap(), b"foo");
        assert_eq!(decode("Zm9vYg==").unwrap(), b"foob");
        assert_eq!(decode("Zm9vYmE=").unwrap(), b"fooba");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_unpadded() {
        assert_eq!(decode("Zg").unwrap(), b"f");
        assert_eq!(decode("Zm8").unwrap(), b"fo");
    }

    #[test]
    fn decode_with_folding_whitespace() {
        // DKIM b= values are folded across lines.
        assert_eq!(decode("Zm9v\r\n\t YmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode("Zm9v!"), Err(Base64Error::InvalidByte(b'!')));
        assert_eq!(decode("Z"), Err(Base64Error::InvalidLength));
        assert_eq!(decode("Zg==Zg=="), Err(Base64Error::InvalidLength));
        assert_eq!(decode("Zg==="), Err(Base64Error::InvalidLength));
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
