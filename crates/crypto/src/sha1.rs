//! SHA-1 (FIPS 180-4), implemented from the specification.
//!
//! Kept only because RFC 6376 defines the historic `rsa-sha1` algorithm and
//! deployed DKIM verifiers must still recognize it (even if only to reject
//! it per RFC 8301). Do not use for anything security-relevant.

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// Streaming SHA-1 context.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh context.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything fit in the partial buffer; don't fall through,
                // the tail below would clobber buf_len.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut ctx = Sha1::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn nist_vectors() {
        assert_eq!(
            hex::encode(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex::encode(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex::encode(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..131u8).cycle().take(500).collect();
        let want = sha1(&data);
        for split in [0, 1, 63, 64, 65, 200, 499, 500] {
            let mut ctx = Sha1::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), want, "split {split}");
        }
    }
}
