//! Ablation benchmarks for design choices DESIGN.md calls out:
//!
//! * serial vs parallel-prefetch SPF evaluation (virtual validation
//!   latency and wall-clock evaluator cost);
//! * resolver caching on vs off (upstream query volume under repeated
//!   evaluation);
//! * campaign throughput at small scale, single-shard vs sharded
//!   (events/second of the full pipeline).
//!
//! Built on the in-tree [`mailval_bench::timing`] harness (no external
//! dependencies; `harness = false`).

use mailval_bench::timing::bench_fn;
use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_dns::resolver::{Begin, ResolveOutcome, ResolverConfig, ResolverCore, Step};
use mailval_dns::rr::{RData, RecordType};
use mailval_dns::{Name, Record};
use mailval_measure::campaign::{run_campaign, sample_host_profiles, CampaignConfig, CampaignKind};
use mailval_simnet::LatencyModel;
use mailval_spf::{DnsQuestion, EvalParams, EvalStep, SpfBehavior, SpfEvaluator};
use std::hint::black_box;

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// Drive the t01-shaped policy in-memory, with either serial or
/// parallel behavior, and count resume round-trips (each corresponds to
/// ≥1 RTT in deployment — the latency ablation of §7.1).
fn eval_rounds(parallel: bool) -> usize {
    let base = "t01.m1.spf.test";
    let answer_for = |q: &DnsQuestion| -> ResolveOutcome {
        let name = q.name.to_string();
        let policy = if name == base {
            format!("v=spf1 include:l1.{base} a:foo.{base} -all")
        } else if name.starts_with("l1.") {
            format!("v=spf1 include:l2.{base} ?all")
        } else if name.starts_with("l2.") {
            format!("v=spf1 include:l3.{base} ?all")
        } else if name.starts_with("l3.") {
            "v=spf1 ?all".to_string()
        } else {
            return ResolveOutcome::Records(vec![Record::new(
                q.name.clone(),
                60,
                RData::A("192.0.2.1".parse().unwrap()),
            )]);
        };
        ResolveOutcome::Records(vec![Record::new(
            q.name.clone(),
            60,
            RData::txt_from_str(&policy),
        )])
    };
    let params = EvalParams {
        ip: "198.51.100.1".parse().unwrap(),
        domain: n(base),
        sender_local: "spf-test".into(),
        sender_domain: n(base),
        helo: "probe.test".into(),
    };
    let behavior = SpfBehavior {
        parallel_prefetch: parallel,
        ..Default::default()
    };
    let mut ev = SpfEvaluator::new(params, behavior);
    let mut rounds = 0;
    let mut step = ev.start();
    loop {
        match step {
            EvalStep::Done(_) => return rounds,
            EvalStep::NeedLookups(questions) => {
                rounds += 1;
                let answers = questions
                    .into_iter()
                    .map(|q| {
                        let a = answer_for(&q);
                        (q, a)
                    })
                    .collect();
                step = ev.resume(answers);
            }
        }
    }
}

fn ablation_serial_parallel() {
    // Report round counts once (the latency story), then bench cost.
    let serial_rounds = eval_rounds(false);
    let parallel_rounds = eval_rounds(true);
    eprintln!(
        "[ablation] t01 evaluation resume-rounds: serial={serial_rounds}, parallel={parallel_rounds}"
    );
    assert!(parallel_rounds < serial_rounds);
    bench_fn("ablation_eval_serial", || black_box(eval_rounds(false)));
    bench_fn("ablation_eval_parallel", || black_box(eval_rounds(true)));
}

/// Resolver cache ablation: resolve the same 32 names twice.
fn cache_queries(cache_enabled: bool) -> u64 {
    let mut core = ResolverCore::new(ResolverConfig {
        cache_enabled,
        ..Default::default()
    });
    for round in 0..2 {
        for i in 0..32 {
            let name = n(&format!("host{i}.cache.test"));
            match core.begin(name.clone(), RecordType::A, round * 1000) {
                Begin::Cached(_) => {}
                Begin::Send(out) => {
                    let q = mailval_dns::Message::from_bytes(&out.bytes).unwrap();
                    let mut resp =
                        mailval_dns::Message::response_to(&q, mailval_dns::Rcode::NoError);
                    resp.answers = vec![Record::new(
                        name,
                        300,
                        RData::A("192.0.2.7".parse().unwrap()),
                    )];
                    match core.on_response(out.id, &resp.to_bytes(), round * 1000) {
                        Step::Done(_) => {}
                        other => panic!("{other:?}"),
                    }
                }
            }
        }
    }
    core.upstream_queries
}

fn ablation_cache() {
    let with = cache_queries(true);
    let without = cache_queries(false);
    eprintln!("[ablation] resolver upstream queries (2 rounds × 32 names): cache={with}, no-cache={without}");
    assert!(with < without);
    bench_fn("ablation_resolver_cached", || {
        black_box(cache_queries(true))
    });
    bench_fn("ablation_resolver_uncached", || {
        black_box(cache_queries(false))
    });
}

fn ablation_campaign_throughput() {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::TwoWeekMx,
        scale: 0.002,
        seed: 5,
    });
    let profiles = sample_host_profiles(&pop, 5);
    let run = |shards: usize| {
        let result = run_campaign(
            &CampaignConfig {
                kind: CampaignKind::TwoWeekMx,
                tests: vec!["t01", "t12"],
                seed: 5,
                probe_pause_ms: 15_000,
                latency: LatencyModel::default(),
                shards,
                faults: mailval_simnet::FaultConfig::default(),
                ..CampaignConfig::default()
            },
            &pop,
            &profiles,
        );
        black_box(result.events)
    };
    bench_fn("campaign_tiny_twoweek_1shard", || run(1));
    bench_fn("campaign_tiny_twoweek_4shard", || run(4));
}

fn main() {
    ablation_serial_parallel();
    ablation_cache();
    ablation_campaign_throughput();
}
