//! Micro-benchmarks over the protocol cores: DNS wire codec, SPF
//! parsing and evaluation, DKIM sign/verify, policy synthesis, the
//! simulator event loop and RSA. Built on the in-tree
//! [`mailval_bench::timing`] harness (no external dependencies;
//! `harness = false`).
//!
//! Run with `cargo bench -p mailval-bench --bench microbench`; set
//! `MAILVAL_BENCH_MS` to shrink or grow the per-benchmark budget.

use mailval_bench::timing::bench_fn;
use mailval_crypto::bigint::SplitMix64;
use mailval_crypto::rsa::RsaKeyPair;
use mailval_crypto::HashAlg;
use mailval_dns::message::Message;
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::rr::{RData, RecordType};
use mailval_dns::{Name, Record};
use mailval_measure::names::NameScheme;
use mailval_measure::policies::{synthesize_probe, SynthAddrs};
use mailval_simnet::Simulator;
use mailval_spf::{DnsQuestion, EvalParams, EvalStep, SpfBehavior, SpfEvaluator, SpfRecord};
use std::hint::black_box;

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn bench_dns_wire() {
    let mut msg = Message::query(1, n("l2.t01.m00042.spf-test.dns-lab.org"), RecordType::Txt);
    msg.answers = vec![
        Record::new(
            n("l2.t01.m00042.spf-test.dns-lab.org"),
            60,
            RData::txt_from_str("v=spf1 include:l3.t01.m00042.spf-test.dns-lab.org ?all"),
        ),
        Record::new(
            n("a.l2.t01.m00042.spf-test.dns-lab.org"),
            60,
            RData::A("192.0.2.1".parse().unwrap()),
        ),
    ];
    let bytes = msg.to_bytes();
    bench_fn("dns_encode", || black_box(&msg).to_bytes());
    bench_fn("dns_decode", || {
        Message::from_bytes(black_box(&bytes)).unwrap()
    });
}

fn bench_spf() {
    let policy = "v=spf1 ip4:192.0.2.0/24 a:mail.example.com include:other.example.net ~all";
    bench_fn("spf_parse", || SpfRecord::parse(black_box(policy)).unwrap());

    // Full evaluation against an in-memory answer set.
    bench_fn("spf_evaluate", || {
        let params = EvalParams {
            ip: "192.0.2.9".parse().unwrap(),
            domain: n("example.com"),
            sender_local: "user".into(),
            sender_domain: n("example.com"),
            helo: "probe.test".into(),
        };
        let mut ev = SpfEvaluator::new(params, SpfBehavior::default());
        let mut step = ev.start();
        loop {
            match step {
                EvalStep::Done(done) => break black_box(done.result),
                EvalStep::NeedLookups(questions) => {
                    let answers: Vec<(DnsQuestion, ResolveOutcome)> = questions
                        .into_iter()
                        .map(|q| {
                            let outcome = if q.rtype == RecordType::Txt {
                                ResolveOutcome::Records(vec![Record::new(
                                    q.name.clone(),
                                    60,
                                    RData::txt_from_str(policy),
                                )])
                            } else {
                                ResolveOutcome::NxDomain
                            };
                            (q, outcome)
                        })
                        .collect();
                    step = ev.resume(answers);
                }
            }
        }
    });
}

fn bench_dkim() {
    use mailval_dkim::sign::{sign_message, SignConfig};
    use mailval_smtp::mail::MailMessage;
    let mut rng = SplitMix64::new(42);
    let kp = RsaKeyPair::generate(1024, &mut rng);
    let mut msg = MailMessage::new();
    msg.add_header("From", "a@example.com");
    msg.add_header("To", "b@target.test");
    msg.add_header("Subject", "benchmark");
    msg.set_body_text(&"benchmark body line\n".repeat(40));
    let config = SignConfig::new(n("example.com"), n("sel1"));
    bench_fn("dkim_sign", || {
        sign_message(black_box(&msg), &config, &kp.private).unwrap()
    });

    let value = sign_message(&msg, &config, &kp.private).unwrap();
    let mut signed = msg.clone();
    signed.prepend_header("DKIM-Signature", &value);
    let key_record = mailval_dkim::key::DkimKeyRecord::for_key(&kp.public).to_record_text();
    bench_fn("dkim_verify", || {
        let mut v = mailval_dkim::DkimVerifier::new(black_box(&signed), 0);
        let mailval_dkim::VerifyStep::NeedKey { name, .. } = v.start() else {
            panic!()
        };
        let answer = ResolveOutcome::Records(vec![Record::new(
            name,
            60,
            RData::txt_from_str(&key_record),
        )]);
        match v.on_key(answer) {
            mailval_dkim::VerifyStep::Done(r) => black_box(r),
            _ => panic!(),
        }
    });
}

fn bench_synthesis() {
    let scheme = NameScheme::default();
    let addrs = SynthAddrs::default();
    let base = scheme.probe_domain("t02", 42);
    let qname = n("c.a.s3.t02.m00042.spf-test.dns-lab.org");
    let path: Vec<String> = vec!["c".into(), "a".into(), "s3".into()];
    bench_fn("policy_synthesis", || {
        synthesize_probe(
            black_box("t02"),
            black_box(&path),
            &qname,
            &base,
            RecordType::Txt,
            &addrs,
        )
    });
    bench_fn("name_attribution", || {
        scheme.parse(black_box(&qname)).unwrap()
    });
}

fn bench_simulator() {
    bench_fn("simulator_100k_events", || {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..100_000u32 {
            sim.schedule((i % 977) as u64, i);
        }
        let mut acc = 0u64;
        while let Some((t, _)) = sim.next() {
            acc = acc.wrapping_add(t);
        }
        black_box(acc)
    });
}

fn bench_rsa() {
    let mut rng = SplitMix64::new(7);
    let kp = RsaKeyPair::generate(1024, &mut rng);
    let digest = HashAlg::Sha256.digest(b"benchmark payload");
    let sig = kp.private.sign_digest(HashAlg::Sha256, &digest).unwrap();
    bench_fn("rsa1024_sign", || {
        kp.private.sign_digest(HashAlg::Sha256, black_box(&digest))
    });
    bench_fn("rsa1024_verify", || {
        kp.public
            .verify_digest(HashAlg::Sha256, &digest, black_box(&sig))
    });
}

fn main() {
    bench_dns_wire();
    bench_spf();
    bench_dkim();
    bench_synthesis();
    bench_simulator();
    bench_rsa();
}
