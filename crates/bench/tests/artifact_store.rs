//! End-to-end "run once, analyze many" guarantees of the artifact
//! pipeline: a batch of artifacts sharing a campaign simulates it
//! exactly once, a warm store serves the whole suite with zero
//! simulations, and re-rendering from a warm store is byte-identical.

use mailval_bench::artifacts::{by_name, ALL};
use mailval_bench::{CampaignRequest, Env, Runner};
use mailval_measure::store::{CampaignStore, StoreStatus};
use std::path::PathBuf;

/// A tiny but non-trivial environment: two shards so the merge path is
/// exercised, ~100 domains so campaigns finish in test time.
fn tiny_env() -> Env {
    Env {
        scale: 0.004,
        seed: 2021,
        shards: 2,
    }
}

fn temp_store(tag: &str) -> (PathBuf, CampaignStore) {
    let dir = std::env::temp_dir().join(format!(
        "mailval-artifact-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), CampaignStore::new(dir))
}

fn render_names(runner: &mut Runner, names: &[&str]) -> String {
    let mut out = String::new();
    // Phase 1, as the CLI does it: resolve the union of needs first.
    let mut needed: Vec<CampaignRequest> = Vec::new();
    for name in names {
        let artifact = by_name(name).expect("known artifact");
        for req in (artifact.needs)() {
            if !needed.contains(&req) {
                needed.push(req);
            }
        }
    }
    for req in &needed {
        runner.campaign(req);
    }
    for name in names {
        let artifact = by_name(name).expect("known artifact");
        out.push_str(&(artifact.render)(runner));
    }
    out
}

#[test]
fn shared_campaign_is_simulated_exactly_once() {
    let (dir, store) = temp_store("shared");
    let mut runner = Runner::new(tiny_env(), Some(store));

    // fig2, table4 and table5 all need the NotifyEmail campaign; the
    // batch must resolve it once.
    let text = render_names(&mut runner, &["fig2", "table4", "table5"]);
    assert!(!text.is_empty());

    let notify_resolutions: Vec<&StoreStatus> = runner
        .history
        .iter()
        .filter(|(req, _)| *req == CampaignRequest::NotifyEmail)
        .map(|(_, status)| status)
        .collect();
    assert_eq!(
        notify_resolutions.len(),
        1,
        "NotifyEmail resolved more than once: {:?}",
        runner.history
    );
    assert!(
        matches!(notify_resolutions[0], StoreStatus::Miss(_)),
        "cold store should be a miss, got {:?}",
        notify_resolutions[0]
    );
    // Three campaigns total: NotifyEmail, NotifyMxDrifted, TwoWeek.
    assert_eq!(runner.history.len(), 3);
    assert_eq!(runner.simulated(), 3);
    assert_eq!(runner.store_hits(), 0);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn warm_store_renders_full_suite_with_zero_simulations() {
    let (dir, store) = temp_store("warm");
    let all_names: Vec<&str> = ALL.iter().map(|a| a.name).collect();

    // Cold run: everything simulates and persists.
    let mut cold = Runner::new(tiny_env(), Some(store));
    let cold_text = render_names(&mut cold, &all_names);
    assert!(cold.simulated() > 0);
    assert_eq!(cold.store_hits(), 0);

    // Warm run in a fresh process-equivalent (new runner, same store):
    // zero simulations, byte-identical text.
    let mut warm = Runner::new(tiny_env(), Some(CampaignStore::new(dir.clone())));
    let warm_text = render_names(&mut warm, &all_names);
    assert_eq!(
        warm.simulated(),
        0,
        "warm store should serve every campaign: {:?}",
        warm.history
    );
    assert_eq!(warm.store_hits(), cold.simulated());
    assert_eq!(cold_text, warm_text, "warm re-render diverged");

    // And once more, to rule out the warm pass itself mutating state.
    let mut warm2 = Runner::new(tiny_env(), Some(CampaignStore::new(dir.clone())));
    let warm2_text = render_names(&mut warm2, &all_names);
    assert_eq!(warm2.simulated(), 0);
    assert_eq!(cold_text, warm2_text);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn store_off_always_simulates() {
    let mut runner = Runner::new(tiny_env(), None);
    runner.campaign(&CampaignRequest::Providers);
    assert_eq!(runner.history.len(), 1);
    assert!(matches!(runner.history[0].1, StoreStatus::Off));
    assert_eq!(runner.simulated(), 1);
    // Memoized re-request resolves nothing new.
    runner.campaign(&CampaignRequest::Providers);
    assert_eq!(runner.history.len(), 1);
}

#[test]
fn changing_any_knob_misses_the_warm_store() {
    let (dir, store) = temp_store("knobs");
    let mut base = Runner::new(tiny_env(), Some(store));
    base.campaign(&CampaignRequest::Providers);
    assert_eq!(base.simulated(), 1);

    // Same env, fresh runner: hit.
    let mut same = Runner::new(tiny_env(), Some(CampaignStore::new(dir.clone())));
    same.campaign(&CampaignRequest::Providers);
    assert_eq!(same.store_hits(), 1);

    // Different seed and different scale: both must re-run.
    for env in [
        Env {
            seed: 2022,
            ..tiny_env()
        },
        Env {
            scale: 0.005,
            ..tiny_env()
        },
    ] {
        let mut changed = Runner::new(env, Some(CampaignStore::new(dir.clone())));
        changed.campaign(&CampaignRequest::Providers);
        assert_eq!(
            changed.simulated(),
            1,
            "changed knob must invalidate: {env:?}"
        );
    }

    let _ = std::fs::remove_dir_all(dir);
}
