//! A tiny dependency-free timing harness for the `benches/` targets.
//!
//! The container builds offline, so the benches cannot pull Criterion
//! from the registry. This module provides the minimum that the
//! micro-benchmarks need: warm up, run a fixed wall-clock budget of
//! iterations, report min/mean/median. Results are printed
//! human-readable; nothing is persisted.

use std::time::{Duration, Instant};

/// Summary statistics for one benchmarked closure.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Iterations measured (after warm-up).
    pub iters: u64,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Mean over all measured iterations.
    pub mean: Duration,
    /// Median over all measured iterations.
    pub median: Duration,
}

impl Timing {
    /// Render one aligned result line, e.g. for `bench_fn` callers.
    pub fn report(&self, name: &str) -> String {
        format!(
            "{name:<44} {:>12} min {:>12} mean {:>12} median ({} iters)",
            fmt_duration(self.min),
            fmt_duration(self.mean),
            fmt_duration(self.median),
            self.iters
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Benchmark `f`, printing a result line to stdout and returning the
/// stats. Warm-up runs for ~1/10 of the measurement budget; measurement
/// runs for ~1 s or at least 10 iterations, whichever is longer. The
/// closure's return value is passed through `std::hint::black_box` so
/// the optimizer cannot delete the work.
pub fn bench_fn<T>(name: &str, mut f: impl FnMut() -> T) -> Timing {
    let budget = Duration::from_millis(
        std::env::var("MAILVAL_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1000),
    );

    let warm_until = Instant::now() + budget / 10;
    while Instant::now() < warm_until {
        std::hint::black_box(f());
    }

    let mut samples: Vec<Duration> = Vec::new();
    let measure_until = Instant::now() + budget;
    while samples.len() < 10 || Instant::now() < measure_until {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
        if samples.len() >= 1_000_000 {
            break;
        }
    }

    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    let timing = Timing {
        iters: samples.len() as u64,
        min: samples[0],
        mean: total / samples.len() as u32,
        median: samples[samples.len() / 2],
    };
    println!("{}", timing.report(name));
    timing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_fn_measures_something() {
        std::env::set_var("MAILVAL_BENCH_MS", "20");
        let t = bench_fn("noop", || 1 + 1);
        assert!(t.iters >= 10);
        assert!(t.min <= t.median && t.median <= t.mean * 10);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
