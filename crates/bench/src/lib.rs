//! # mailval-bench
//!
//! The reproduction harness: one binary per table and figure of the
//! paper (`src/bin/`), printing paper-reported values next to measured
//! ones, plus dependency-free micro-benchmarks (`benches/`, built on
//! [`timing`]).
//!
//! Every binary accepts the environment variables:
//!
//! * `MAILVAL_SCALE` — population scale relative to the paper
//!   (default 1.0 = 26,695 / 22,548 domains). Use e.g. `0.05` for a
//!   quick run.
//! * `MAILVAL_SEED` — RNG seed (default 2021).
//! * `MAILVAL_SHARDS` — campaign worker threads (default: available
//!   parallelism, capped at 8). Output is identical for any value.
//!
//! Run them all via `cargo run --release -p mailval-bench --bin <name>`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod timing;

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, CampaignResult,
};
use mailval_mta::profile::MtaProfile;
use mailval_simnet::{FaultConfig, LatencyModel};

/// Read the population scale from `MAILVAL_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MAILVAL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Read the seed from `MAILVAL_SEED` (default 2021, the study year).
pub fn seed() -> u64 {
    std::env::var("MAILVAL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021)
}

/// Read the shard count from `MAILVAL_SHARDS` (default: available
/// parallelism, capped at 8 — the result is identical either way, only
/// the wall-clock time changes).
pub fn shards() -> usize {
    std::env::var("MAILVAL_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        })
}

/// Generate a population at the configured scale.
pub fn population(kind: DatasetKind) -> Population {
    Population::generate(&PopulationConfig {
        kind,
        scale: scale(),
        seed: seed(),
    })
}

/// A population together with its host profiles.
pub struct Prepared {
    /// The population.
    pub pop: Population,
    /// Host behavior profiles.
    pub profiles: Vec<MtaProfile>,
}

/// Prepare a population + profiles.
pub fn prepare(kind: DatasetKind) -> Prepared {
    let pop = population(kind);
    let profiles = sample_host_profiles(&pop, seed());
    Prepared { pop, profiles }
}

/// Run a campaign with given tests over a prepared population.
pub fn campaign(
    prepared: &Prepared,
    kind: CampaignKind,
    tests: Vec<&'static str>,
) -> CampaignResult {
    let config = CampaignConfig {
        kind,
        tests,
        seed: seed(),
        probe_pause_ms: 15_000,
        latency: LatencyModel::default(),
        shards: shards(),
        faults: FaultConfig::default(),
        ..CampaignConfig::default()
    };
    eprintln!(
        "[mailval] running {kind:?} over {} domains / {} hosts on {} shard(s) ...",
        prepared.pop.domains.len(),
        prepared.pop.hosts.len(),
        config.shards
    );
    let start = std::time::Instant::now();
    let result = run_campaign(&config, &prepared.pop, &prepared.profiles);
    eprintln!(
        "[mailval] {kind:?} done: {} sessions, {} queries logged, {} events, {:.1}s wall",
        result.sessions.len(),
        result.log.records.len(),
        result.events,
        start.elapsed().as_secs_f64()
    );
    result
}

/// The Table 6 provider mini-population: 19 provider domains with one
/// dedicated MTA each and profiles pinned to the paper's observations.
pub fn provider_population() -> (Population, Vec<MtaProfile>) {
    use mailval_datasets::alexa::AlexaTier;
    use mailval_datasets::population::{DomainSpec, MtaHost};
    use mailval_datasets::providers::PROVIDERS;
    use mailval_dns::Name;
    use mailval_simnet::SimRng;

    let mut domains = Vec::new();
    let mut hosts = Vec::new();
    let mut profiles = Vec::new();
    let mut rng = SimRng::new(seed() ^ 0x7ab1e6);
    for (i, p) in PROVIDERS.iter().enumerate() {
        let host_index = hosts.len();
        hosts.push(MtaHost {
            name: Name::parse(&format!("mx1.{}", p.domain)).expect("valid"),
            ipv4: std::net::Ipv4Addr::new(10, 99, (i / 256) as u8, (i % 256) as u8),
            ipv6: Some(std::net::Ipv6Addr::new(
                0x2001, 0xdb8, 0x99, 0, 0, 0, 0, i as u16,
            )),
            asn: 65_000 + i as u32,
        });
        profiles.push(MtaProfile::for_provider(&mut rng, p.spf, p.dkim, p.dmarc));
        domains.push(DomainSpec {
            index: i,
            name: Name::parse(p.domain).expect("valid"),
            tld: p.domain.rsplit('.').next().unwrap_or("com").to_string(),
            asn: 65_000 + i as u32,
            as_name: p.domain.to_string(),
            shared_provider: true,
            alexa: AlexaTier::Top1K,
            host_indices: vec![host_index],
            demand_queries: 0,
            mx_reresolution_failed: false,
        });
    }
    (
        Population {
            kind: DatasetKind::NotifyEmail,
            domains,
            hosts,
        },
        profiles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_population_matches_table6() {
        let (pop, profiles) = provider_population();
        assert_eq!(pop.domains.len(), 19);
        assert_eq!(profiles.len(), 19);
        let spf = profiles.iter().filter(|p| p.combo.spf).count();
        assert_eq!(spf, 16); // §6.1: 16 of 19
        let full = profiles
            .iter()
            .filter(|p| p.combo.spf && p.combo.dkim && p.combo.dmarc)
            .count();
        assert_eq!(full, 13); // §6.1: 13 of 19
    }

    #[test]
    fn env_defaults() {
        // Can't portably set env in parallel tests; just exercise the
        // default paths.
        assert!(scale() > 0.0);
        let _ = seed();
    }
}
