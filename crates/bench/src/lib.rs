//! # mailval-bench
//!
//! The reproduction harness. One CLI — `mailval-artifacts` — renders
//! every table and figure of the paper: each artifact is an analysis
//! module under [`artifacts`] that *declares* which campaigns it needs,
//! and the [`Runner`] resolves the union, simulates each missing
//! campaign exactly once through the sharded/supervised engine,
//! persists it in the content-addressed
//! [`mailval_measure::store::CampaignStore`], and renders everything
//! else from disk. A warm store renders the full suite with zero
//! simulations. The [`suites`] module carries the three performance
//! suites (campaign throughput, chaos sweep, journal overhead) behind
//! CLI subcommands.
//!
//! The CLI reads the environment variables:
//!
//! * `MAILVAL_SCALE` — population scale relative to the paper
//!   (default 1.0 = 26,695 / 22,548 domains). Use e.g. `0.05` for a
//!   quick run.
//! * `MAILVAL_SEED` — RNG seed (default 2021).
//! * `MAILVAL_SHARDS` — campaign worker threads (default: available
//!   parallelism, capped at 8). Output is identical for any value.
//! * `MAILVAL_STORE` — campaign store directory (default
//!   `results/store`; `--no-store` disables persistence).
//!
//! Run it via `cargo run --release -p mailval-bench --bin
//! mailval-artifacts -- --list`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifacts;
pub mod suites;
pub mod timing;

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{
    drift_profiles, run_campaign_stored, sample_host_profiles, CampaignConfig, CampaignKind,
    CampaignResult,
};
use mailval_measure::store::{CampaignStore, KeySpec, StoreStatus};
use mailval_mta::profile::MtaProfile;
use std::collections::HashMap;
use std::rc::Rc;

/// Read the population scale from `MAILVAL_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MAILVAL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Read the seed from `MAILVAL_SEED` (default 2021, the study year).
pub fn seed() -> u64 {
    std::env::var("MAILVAL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021)
}

/// Read the shard count from `MAILVAL_SHARDS` (default: available
/// parallelism, capped at 8 — the result is identical either way, only
/// the wall-clock time changes).
pub fn shards() -> usize {
    std::env::var("MAILVAL_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        })
}

/// The knobs every campaign and artifact derives from: population
/// scale, RNG seed and shard fan-out. The CLI reads them from the
/// environment ([`Env::from_env`]); tests construct them directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Env {
    /// Population scale relative to the paper (`MAILVAL_SCALE`).
    pub scale: f64,
    /// RNG seed (`MAILVAL_SEED`).
    pub seed: u64,
    /// Campaign worker threads (`MAILVAL_SHARDS`); output-invariant.
    pub shards: usize,
}

impl Env {
    /// Read scale, seed and shard count from the environment.
    pub fn from_env() -> Env {
        Env {
            scale: scale(),
            seed: seed(),
            shards: shards(),
        }
    }
}

/// Generate a population at the environment's configured scale.
pub fn population(kind: DatasetKind) -> Population {
    population_with(&Env::from_env(), kind)
}

/// Generate a population for an explicit [`Env`].
pub fn population_with(env: &Env, kind: DatasetKind) -> Population {
    Population::generate(&PopulationConfig {
        kind,
        scale: env.scale,
        seed: env.seed,
    })
}

/// A population together with its host profiles.
pub struct Prepared {
    /// The population.
    pub pop: Population,
    /// Host behavior profiles.
    pub profiles: Vec<MtaProfile>,
}

/// Prepare a population + profiles for an explicit [`Env`].
pub fn prepare_with(env: &Env, kind: DatasetKind) -> Prepared {
    let pop = population_with(env, kind);
    let profiles = sample_host_profiles(&pop, env.seed);
    Prepared { pop, profiles }
}

/// The Table 6 provider mini-population: 19 provider domains with one
/// dedicated MTA each and profiles pinned to the paper's observations.
pub fn provider_population(seed: u64) -> (Population, Vec<MtaProfile>) {
    use mailval_datasets::alexa::AlexaTier;
    use mailval_datasets::population::{DomainSpec, MtaHost};
    use mailval_datasets::providers::PROVIDERS;
    use mailval_dns::Name;
    use mailval_simnet::SimRng;

    let mut domains = Vec::new();
    let mut hosts = Vec::new();
    let mut profiles = Vec::new();
    let mut rng = SimRng::new(seed ^ 0x7ab1e6);
    for (i, p) in PROVIDERS.iter().enumerate() {
        let host_index = hosts.len();
        hosts.push(MtaHost {
            name: Name::parse(&format!("mx1.{}", p.domain)).expect("valid"),
            ipv4: std::net::Ipv4Addr::new(10, 99, (i / 256) as u8, (i % 256) as u8),
            ipv6: Some(std::net::Ipv6Addr::new(
                0x2001, 0xdb8, 0x99, 0, 0, 0, 0, i as u16,
            )),
            asn: 65_000 + i as u32,
        });
        profiles.push(MtaProfile::for_provider(&mut rng, p.spf, p.dkim, p.dmarc));
        domains.push(DomainSpec {
            index: i,
            name: Name::parse(p.domain).expect("valid"),
            tld: p.domain.rsplit('.').next().unwrap_or("com").to_string(),
            asn: 65_000 + i as u32,
            as_name: p.domain.to_string(),
            shared_provider: true,
            alexa: AlexaTier::Top1K,
            host_indices: vec![host_index],
            demand_queries: 0,
            mx_reresolution_failed: false,
        });
    }
    (
        Population {
            kind: DatasetKind::NotifyEmail,
            domains,
            hosts,
        },
        profiles,
    )
}

// ---------------------------------------------------------------------------
// Campaign requests and the runner
// ---------------------------------------------------------------------------

/// The probe set Table 5 classifies with (compact but representative:
/// "issued at least one SPF query" needs no more).
pub const TABLE5_PROBES: &[&str] = &["t01", "t06", "t12"];

/// Operator configuration drift between NotifyEmail (Oct 2020) and
/// NotifyMX (Jun 2021) — §6.2's inconsistency analysis found ~5% of
/// operators changed configuration in the nine months between.
pub const NOTIFY_MX_DRIFT: f64 = 0.05;

/// One campaign an artifact depends on, in canonical form. Two
/// artifacts naming the same request share one simulation (and one
/// store entry); distinct probe sets are distinct campaigns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CampaignRequest {
    /// The NotifyEmail delivery campaign over the NotifyEmail dataset.
    NotifyEmail,
    /// The NotifyMX probe campaign ([`TABLE5_PROBES`]) over the
    /// NotifyEmail dataset with [`NOTIFY_MX_DRIFT`]-drifted profiles.
    NotifyMxDrifted,
    /// A TwoWeekMX probe campaign with the given test policy set.
    TwoWeek(&'static [&'static str]),
    /// The NotifyEmail pipeline over the Table 6 provider
    /// mini-population.
    Providers,
}

impl CampaignRequest {
    /// Short label for progress and diagnostics.
    pub fn label(&self) -> String {
        match self {
            CampaignRequest::NotifyEmail => "NotifyEmail".to_string(),
            CampaignRequest::NotifyMxDrifted => "NotifyMX(drifted)".to_string(),
            CampaignRequest::TwoWeek(tests) => format!("TwoWeekMX[{}]", tests.join("+")),
            CampaignRequest::Providers => "providers".to_string(),
        }
    }
}

/// Resolves [`CampaignRequest`]s: populations and campaign results are
/// memoized per process, campaigns are served from the content-
/// addressed store when possible and simulated (then persisted) when
/// not. All artifact rendering goes through one runner, which is what
/// makes "run each campaign exactly once, analyze many times" hold.
pub struct Runner {
    env: Env,
    store: Option<CampaignStore>,
    prepared: HashMap<DatasetKind, Rc<Prepared>>,
    providers: Option<Rc<(Population, Vec<MtaProfile>)>>,
    results: HashMap<CampaignRequest, Rc<CampaignResult>>,
    /// Every non-memoized resolution, in order: what was requested and
    /// whether the store served it or the engine simulated it.
    pub history: Vec<(CampaignRequest, StoreStatus)>,
}

impl Runner {
    /// A runner over `env`, persisting through `store` when given.
    pub fn new(env: Env, store: Option<CampaignStore>) -> Runner {
        Runner {
            env,
            store,
            prepared: HashMap::new(),
            providers: None,
            results: HashMap::new(),
            history: Vec::new(),
        }
    }

    /// The runner's environment.
    pub fn env(&self) -> Env {
        self.env
    }

    /// The population + base profiles for a dataset (memoized).
    pub fn prepared(&mut self, kind: DatasetKind) -> Rc<Prepared> {
        let env = self.env;
        self.prepared
            .entry(kind)
            .or_insert_with(|| Rc::new(prepare_with(&env, kind)))
            .clone()
    }

    /// The Table 6 provider mini-population (memoized).
    pub fn providers(&mut self) -> Rc<(Population, Vec<MtaProfile>)> {
        let seed = self.env.seed;
        self.providers
            .get_or_insert_with(|| Rc::new(provider_population(seed)))
            .clone()
    }

    /// Campaigns simulated by this runner (store misses + store-off
    /// runs; memoized re-requests count nothing).
    pub fn simulated(&self) -> u64 {
        self.history.iter().filter(|(_, s)| s.simulated()).count() as u64
    }

    /// Campaigns served from the store by this runner.
    pub fn store_hits(&self) -> u64 {
        self.history
            .iter()
            .filter(|(_, s)| matches!(s, StoreStatus::Hit))
            .count() as u64
    }

    /// One-line accounting summary, emitted by the CLI after a run.
    pub fn summary(&self) -> String {
        format!(
            "campaigns: {} resolved, hits={} simulated={}",
            self.history.len(),
            self.store_hits(),
            self.simulated()
        )
    }

    /// Resolve one campaign request: memo, then store, then simulation
    /// (which persists for the next caller).
    pub fn campaign(&mut self, request: &CampaignRequest) -> Rc<CampaignResult> {
        if let Some(result) = self.results.get(request) {
            return result.clone();
        }
        let env = self.env;
        let (config, dataset, profiles_label) = self.config_for(request);
        // Holders keep the memoized data alive while the borrows below
        // feed the campaign; nothing is deep-copied per request.
        let prepared: Rc<Prepared>;
        let providers: Rc<(Population, Vec<MtaProfile>)>;
        let drifted: Vec<MtaProfile>;
        let (pop, profiles): (&Population, &[MtaProfile]) = match request {
            CampaignRequest::NotifyEmail => {
                prepared = self.prepared(DatasetKind::NotifyEmail);
                (&prepared.pop, &prepared.profiles)
            }
            CampaignRequest::NotifyMxDrifted => {
                prepared = self.prepared(DatasetKind::NotifyEmail);
                drifted =
                    drift_profiles(&prepared.pop, &prepared.profiles, NOTIFY_MX_DRIFT, env.seed);
                (&prepared.pop, &drifted)
            }
            CampaignRequest::TwoWeek(_) => {
                prepared = self.prepared(DatasetKind::TwoWeekMx);
                (&prepared.pop, &prepared.profiles)
            }
            CampaignRequest::Providers => {
                providers = self.providers();
                (&providers.0, &providers.1)
            }
        };
        let spec = KeySpec {
            config: &config,
            dataset,
            scale: env.scale,
            population_seed: env.seed,
            profiles: profiles_label,
        };
        let (result, status) = run_campaign_stored(&spec, pop, profiles, self.store.as_ref());
        self.history.push((request.clone(), status));
        let result = Rc::new(result);
        self.results.insert(request.clone(), result.clone());
        result
    }

    /// The canonical campaign configuration for a request, plus the
    /// dataset and profile-derivation labels that complete its store
    /// key.
    fn config_for(
        &self,
        request: &CampaignRequest,
    ) -> (CampaignConfig, &'static str, &'static str) {
        let env = self.env;
        let base = CampaignConfig {
            seed: env.seed,
            probe_pause_ms: 15_000,
            shards: env.shards,
            ..CampaignConfig::default()
        };
        match request {
            CampaignRequest::NotifyEmail => (
                CampaignConfig {
                    kind: CampaignKind::NotifyEmail,
                    tests: vec![],
                    ..base
                },
                "NotifyEmail",
                "base",
            ),
            CampaignRequest::NotifyMxDrifted => (
                CampaignConfig {
                    kind: CampaignKind::NotifyMx,
                    tests: TABLE5_PROBES.to_vec(),
                    ..base
                },
                "NotifyEmail",
                "drift:0.05",
            ),
            CampaignRequest::TwoWeek(tests) => (
                CampaignConfig {
                    kind: CampaignKind::TwoWeekMx,
                    tests: tests.to_vec(),
                    ..base
                },
                "TwoWeekMx",
                "base",
            ),
            CampaignRequest::Providers => (
                CampaignConfig {
                    kind: CampaignKind::NotifyEmail,
                    tests: vec![],
                    probe_pause_ms: 0,
                    ..base
                },
                "providers",
                "providers",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_population_matches_table6() {
        let (pop, profiles) = provider_population(2021);
        assert_eq!(pop.domains.len(), 19);
        assert_eq!(profiles.len(), 19);
        let spf = profiles.iter().filter(|p| p.combo.spf).count();
        assert_eq!(spf, 16); // §6.1: 16 of 19
        let full = profiles
            .iter()
            .filter(|p| p.combo.spf && p.combo.dkim && p.combo.dmarc)
            .count();
        assert_eq!(full, 13); // §6.1: 13 of 19
    }

    #[test]
    fn env_defaults() {
        // Can't portably set env in parallel tests; just exercise the
        // default paths.
        let env = Env::from_env();
        assert!(env.scale > 0.0);
        assert!(env.shards >= 1);
    }

    #[test]
    fn distinct_requests_get_distinct_store_keys() {
        let runner = Runner::new(
            Env {
                scale: 0.01,
                seed: 2021,
                shards: 2,
            },
            None,
        );
        let reqs = [
            CampaignRequest::NotifyEmail,
            CampaignRequest::NotifyMxDrifted,
            CampaignRequest::TwoWeek(TABLE5_PROBES),
            CampaignRequest::TwoWeek(&["t01"]),
            CampaignRequest::Providers,
        ];
        let mut hashes = std::collections::HashSet::new();
        for req in &reqs {
            let (config, dataset, profiles) = runner.config_for(req);
            let key = KeySpec {
                config: &config,
                dataset,
                scale: runner.env.scale,
                population_seed: runner.env.seed,
                profiles,
            }
            .key();
            assert!(hashes.insert(key.hash), "duplicate key for {req:?}");
        }
    }
}
