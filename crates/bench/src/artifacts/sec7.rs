//! §7.3 behavior battery: HELO checking, syntax-error tolerance,
//! void-lookup limits, the forbidden mx fallback, multiple-record
//! handling, TCP fallback, IPv6-only retrieval and the per-mx
//! address-lookup limit.

use crate::{CampaignRequest, Runner};
use mailval_measure::analysis::behavior_battery;
use mailval_measure::report::{pct, render_table};
use std::fmt::Write;

/// The §7.3 behavior test policies.
const TESTS: &[&str] = &[
    "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10", "t11",
];

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::TwoWeek(TESTS)]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::TwoWeek(TESTS));
    let stats = behavior_battery(&result.log);

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.testid.to_string(),
                s.behavior.to_string(),
                pct(s.paper_fraction),
                format!("{} ({}/{})", pct(s.fraction()), s.exhibited, s.evaluated),
            ]
        })
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            "§7.3 — SPF validation behaviors",
            &["test", "behavior", "paper", "measured"],
            &rows
        )
    )
    .unwrap();
    out
}
