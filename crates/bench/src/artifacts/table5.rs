//! Table 5: SPF-validating domains and MTAs in all three experiments,
//! the TwoWeekMX deciles, and the §6.2 NotifyEmail-vs-NotifyMX
//! consistency statistics.

use crate::{CampaignRequest, Runner, TABLE5_PROBES};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::{
    consistency, decile_counts, notify_validating_counts, probe_validating_counts,
};
use mailval_measure::report::{count_pct, pct, render_table};
use std::fmt::Write;

/// Campaigns this artifact is derived from: the NotifyEmail delivery
/// campaign, the drifted NotifyMX probe (§4.2: nine months pass between
/// the two, so a small fraction of operators change configuration), and
/// a TwoWeekMX probe over [`TABLE5_PROBES`].
pub fn needs() -> Vec<CampaignRequest> {
    vec![
        CampaignRequest::NotifyEmail,
        CampaignRequest::NotifyMxDrifted,
        CampaignRequest::TwoWeek(TABLE5_PROBES),
    ]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    // NotifyEmail + NotifyMX share one population and one base profile
    // set (the §6.2 comparison depends on it).
    let email_run = runner.campaign(&CampaignRequest::NotifyEmail);
    let mx_run = runner.campaign(&CampaignRequest::NotifyMxDrifted);
    let tw_run = runner.campaign(&CampaignRequest::TwoWeek(TABLE5_PROBES));
    let notify = runner.prepared(DatasetKind::NotifyEmail);
    let twoweek = runner.prepared(DatasetKind::TwoWeekMx);

    let ne = notify_validating_counts(&email_run, &notify.pop);
    let nm = probe_validating_counts(&mx_run, &notify.pop);
    let tw = probe_validating_counts(&tw_run, &twoweek.pop);

    let mut rows = vec![
        vec![
            "NotifyEmail".into(),
            "22,703/26,695 (85%) dom; 15,323/18,851 (81%) MTA".into(),
            format!(
                "{} dom; {} MTA",
                count_pct(ne.validating_domains, ne.total_domains),
                count_pct(ne.validating_mtas, ne.total_mtas)
            ),
        ],
        vec![
            "NotifyMX".into(),
            "13,538/26,390 (51%) dom; 14,560/28,896 (50%) MTA".into(),
            format!(
                "{} dom; {} MTA",
                count_pct(nm.validating_domains, nm.total_domains),
                count_pct(nm.validating_mtas, nm.total_mtas)
            ),
        ],
        vec![
            "TwoWeekMX (all)".into(),
            "2,949/22,548 (13%) dom; 1,574/11,137 (14%) MTA".into(),
            format!(
                "{} dom; {} MTA",
                count_pct(tw.validating_domains, tw.total_domains),
                count_pct(tw.validating_mtas, tw.total_mtas)
            ),
        ],
    ];

    // Deciles (paper: 13% ± 1.7% domains, 17% ± 1.8% MTAs).
    let deciles = decile_counts(&tw_run, &twoweek.pop);
    for (i, d) in deciles.iter().enumerate() {
        rows.push(vec![
            format!("TwoWeekMX decile {}", i + 1),
            "≈13% dom; ≈17% MTA".into(),
            format!("{} dom; {} MTA", pct(d.domain_rate()), pct(d.mta_rate())),
        ]);
    }
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            "Table 5 — SPF-validating domains and MTAs",
            &["experiment", "paper", "measured"],
            &rows
        )
    )
    .unwrap();

    // Decile variability.
    let dom_rates: Vec<f64> = deciles.iter().map(|d| d.domain_rate()).collect();
    let mta_rates: Vec<f64> = deciles.iter().map(|d| d.mta_rate()).collect();
    let stddev = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    writeln!(
        out,
        "decile stddev: paper 1.7% (domains) / 1.8% (MTAs); measured {} / {}\n",
        pct(stddev(&dom_rates)),
        pct(stddev(&mta_rates)),
    )
    .unwrap();

    // §6.2 consistency.
    let stats = consistency(&email_run, &mx_run, &notify.pop);
    writeln!(
        out,
        "{}",
        render_table(
            "§6.2 — NotifyEmail vs NotifyMX consistency",
            &["statistic", "paper", "measured"],
            &[
                vec![
                    "domains with inconsistent status".into(),
                    "15,316 (58% of common)".into(),
                    count_pct(stats.inconsistent, stats.common_domains),
                ],
                vec![
                    "of those, Email-validating only".into(),
                    "14,584 (95%)".into(),
                    count_pct(stats.email_only, stats.inconsistent.max(1)),
                ],
                vec![
                    "MTAs rejecting with 'spam'".into(),
                    "7,803 (27%)".into(),
                    count_pct(stats.spam_rejections, stats.probed_mtas),
                ],
                vec![
                    "MTAs rejecting citing a blacklist".into(),
                    "872 (3.0%)".into(),
                    count_pct(stats.blacklist_rejections, stats.probed_mtas),
                ],
            ]
        )
    )
    .unwrap();
    out
}
