//! Table 7: validation rates of NotifyEmail domains by Alexa membership
//! (all / top 1M / top 1K).

use crate::{CampaignRequest, Runner};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::{alexa_breakdown, notify_email_flags};
use mailval_measure::report::{count_pct, render_table};
use std::fmt::Write;

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::NotifyEmail]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::NotifyEmail);
    let prepared = runner.prepared(DatasetKind::NotifyEmail);
    let flags = notify_email_flags(&result, prepared.pop.domains.len());
    let (all, top1m, top1k) = alexa_breakdown(&flags, &prepared.pop);

    let rows = vec![
        vec![
            "All domains".into(),
            format!("26,695 / {}", all.total),
            format!("82% / {}", count_pct(all.spf, all.total)),
            format!("82% / {}", count_pct(all.dkim, all.total)),
            format!("54% / {}", count_pct(all.dmarc, all.total)),
        ],
        vec![
            "In Alexa top 1M".into(),
            format!("2,953 / {}", top1m.total),
            format!("88% / {}", count_pct(top1m.spf, top1m.total)),
            format!("84% / {}", count_pct(top1m.dkim, top1m.total)),
            format!("67% / {}", count_pct(top1m.dmarc, top1m.total)),
        ],
        vec![
            "In Alexa top 1K".into(),
            format!("87 / {}", top1k.total),
            format!("93% / {}", count_pct(top1k.spf, top1k.total)),
            format!("90% / {}", count_pct(top1k.dkim, top1k.total)),
            format!("79% / {}", count_pct(top1k.dmarc, top1k.total)),
        ],
    ];
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            "Table 7 — validation by Alexa membership (each cell: paper / measured)",
            &["subset", "domains", "SPF", "DKIM", "DMARC"],
            &rows
        )
    )
    .unwrap();
    out
}
