//! Table 4: SPF × DKIM × DMARC validation combinations over the
//! NotifyEmail domains, plus the §6.1 marginals and partial-SPF stats.

use crate::{CampaignRequest, Runner};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::{notify_email_flags, partial_spf_stats, table4};
use mailval_measure::report::{count_pct, render_table};
use std::fmt::Write;

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::NotifyEmail]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::NotifyEmail);
    let prepared = runner.prepared(DatasetKind::NotifyEmail);
    let flags = notify_email_flags(&result, prepared.pop.domains.len());
    let rows_measured = table4(&flags);
    let total = prepared.pop.domains.len();

    // Paper counts (out of 26,695); the paper's rows over-sum the
    // dataset, see EXPERIMENTS.md.
    let paper = [
        ("v v v", 14_056, "53%"),
        ("v v x", 6_322, "24%"),
        ("x x x", 4_456, "17%"),
        ("v x x", 2_156, "8.1%"),
        ("x v x", 1_436, "5.4%"),
        ("x x v", 211, "0.79%"),
        ("v x v", 169, "0.63%"),
        ("x v v", 0, "0.0%"),
    ];
    let fmt = |b: bool| if b { "v" } else { "x" };
    let rows: Vec<Vec<String>> = rows_measured
        .iter()
        .zip(paper)
        .map(|(m, (_p_combo, p_count, p_pct))| {
            vec![
                format!("{} {} {}", fmt(m.combo.0), fmt(m.combo.1), fmt(m.combo.2)),
                format!("{p_count} ({p_pct})"),
                count_pct(m.count, total),
            ]
        })
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            &format!("Table 4 — validation combinations over {total} NotifyEmail domains"),
            &["SPF DKIM DMARC", "paper", "measured"],
            &rows
        )
    )
    .unwrap();

    let spf: usize = rows_measured
        .iter()
        .filter(|r| r.combo.0)
        .map(|r| r.count)
        .sum();
    let dkim: usize = rows_measured
        .iter()
        .filter(|r| r.combo.1)
        .map(|r| r.count)
        .sum();
    let dmarc: usize = rows_measured
        .iter()
        .filter(|r| r.combo.2)
        .map(|r| r.count)
        .sum();
    writeln!(
        out,
        "{}",
        render_table(
            "§6.1 marginals",
            &["mechanism", "paper", "measured"],
            &[
                vec![
                    "SPF-validating domains".into(),
                    "22,703 (85%)".into(),
                    count_pct(spf, total)
                ],
                vec![
                    "DKIM-validating domains".into(),
                    "21,814 (82%)".into(),
                    count_pct(dkim, total)
                ],
                vec![
                    "DMARC-validating domains".into(),
                    "14,436 (54%)".into(),
                    count_pct(dmarc, total)
                ],
            ]
        )
    )
    .unwrap();

    let partial = partial_spf_stats(&flags);
    writeln!(
        out,
        "{}",
        render_table(
            "§6.1 partial SPF validators",
            &["statistic", "paper", "measured"],
            &[
                vec![
                    "SPF TXT fetched but never finished".into(),
                    "690 of 22,703 (3.0%)".into(),
                    count_pct(partial.unfinished, partial.spf_validating),
                ],
                vec![
                    "of those, SPF relied on exclusively".into(),
                    "86 (12%)".into(),
                    count_pct(partial.unfinished_spf_only, partial.unfinished.max(1)),
                ],
                vec![
                    "of those, signs of enforcement (DMARC)".into(),
                    "3".into(),
                    format!("{}", partial.unfinished_spf_only_with_dmarc),
                ],
            ]
        )
    )
    .unwrap();
    out
}
