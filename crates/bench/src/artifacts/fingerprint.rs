//! §8 future-work extension: fingerprint SPF validator implementations
//! by their behavior vectors across the test battery.

use crate::{CampaignRequest, Runner};
use mailval_measure::fingerprint::{behavior_vectors, classify, summarize};
use mailval_measure::report::render_table;
use std::fmt::Write;

/// The full fingerprinting battery.
const TESTS: &[&str] = &[
    "t01", "t02", "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10",
];

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::TwoWeek(TESTS)]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::TwoWeek(TESTS));
    let vectors = behavior_vectors(&result.log);
    let classes = classify(&vectors);
    let summary = summarize(&classes);

    let rows: Vec<Vec<String>> = classes
        .iter()
        .take(15)
        .enumerate()
        .map(|(i, c)| {
            let v = &c.vector;
            let b = |x: Option<bool>| match x {
                Some(true) => "y",
                Some(false) => "n",
                None => "-",
            };
            let u = |x: Option<u8>| x.map(|v| v.to_string()).unwrap_or("-".into());
            vec![
                format!("{}", i + 1),
                format!("{}", c.hosts.len()),
                format!(
                    "par={} lim={} helo={} syn={} child={} void={} mxfb={} multi={} tcp={} v6={}",
                    b(v.parallel),
                    u(v.limit_bucket),
                    b(v.helo_check),
                    b(v.syntax_lenient),
                    b(v.child_lenient),
                    u(v.void_bucket),
                    b(v.mx_fallback),
                    b(v.multi_follow),
                    b(v.tcp),
                    b(v.ipv6),
                ),
            ]
        })
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            &format!(
                "§8 extension — validator fingerprints: {} MTAs, {} classes, largest {}, {} singletons",
                summary.mtas, summary.classes, summary.largest, summary.singletons
            ),
            &["#", "MTAs", "behavior vector"],
            &rows
        )
    )
    .unwrap();
    out
}
