//! Figure 2: the distribution of tSPF − tEmail in the NotifyEmail
//! experiment (when the SPF policy query arrived relative to message
//! delivery).

use crate::{CampaignRequest, Runner};
use mailval_measure::analysis::spf_timing;
use mailval_measure::report::{pct, render_table};
use std::fmt::Write;

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::NotifyEmail]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::NotifyEmail);
    let timing = spf_timing(&result);

    let labels = [
        "<= -30",
        "(-30,-15]",
        "(-15,0)",
        "(0,15)",
        "[15,30)",
        ">= 30",
    ];
    let total: usize = timing.bins.iter().sum();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(timing.bins)
        .map(|(label, count)| {
            let share = count as f64 / total.max(1) as f64;
            let bar = "#".repeat((share * 50.0).round() as usize);
            vec![label.to_string(), format!("{count}"), pct(share), bar]
        })
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            &format!(
                "Figure 2 — tSPF − tEmail over {} domains ({} sub-second diffs filtered)",
                timing.domains, timing.filtered_subsecond
            ),
            &["diff (s)", "domains", "share", ""],
            &rows
        )
    )
    .unwrap();
    writeln!(
        out,
        "negative (SPF before delivery): paper 83%, measured {}",
        pct(timing.negative_fraction)
    )
    .unwrap();
    writeln!(
        out,
        "within ±30 s:                  paper 91%, measured {}",
        pct(timing.within_30s_fraction)
    )
    .unwrap();
    out
}
