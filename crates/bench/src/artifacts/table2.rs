//! Table 2: dataset sizes (domains, IPv4/IPv6 MTA addresses).

use crate::{CampaignRequest, Runner};
use mailval_datasets::DatasetKind;
use mailval_measure::report::render_table;
use std::fmt::Write;

/// Population-only artifact: needs no campaign.
pub fn needs() -> Vec<CampaignRequest> {
    vec![]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let notify_prepared = runner.prepared(DatasetKind::NotifyEmail);
    let twoweek_prepared = runner.prepared(DatasetKind::TwoWeekMx);
    let notify = &notify_prepared.pop;
    let twoweek = &twoweek_prepared.pop;

    // NotifyEmail: first-responsive MTA per domain.
    let ne_first = notify.first_host_indices();
    let (ne_v4, ne_v6) = notify.address_counts(&ne_first);
    // NotifyMX: every MX host of the re-resolvable domains.
    let retained: Vec<&mailval_datasets::population::DomainSpec> = notify
        .domains
        .iter()
        .filter(|d| !d.mx_reresolution_failed)
        .collect();
    let mut used = vec![false; notify.hosts.len()];
    for d in &retained {
        for &h in &d.host_indices {
            used[h] = true;
        }
    }
    let nmx_hosts: Vec<usize> = (0..notify.hosts.len()).filter(|&i| used[i]).collect();
    let (nmx_v4, nmx_v6) = notify.address_counts(&nmx_hosts);
    // TwoWeekMX: every MX host.
    let tw_hosts = twoweek.used_host_indices();
    let (tw_v4, tw_v6) = twoweek.address_counts(&tw_hosts);

    let rows = vec![
        vec![
            "NotifyEmail".into(),
            "Oct 2020 / Y".into(),
            format!("26,695 / {}", notify.domains.len()),
            format!("17,252 / {ne_v4}"),
            format!("1,599 / {ne_v6}"),
        ],
        vec![
            "NotifyMX".into(),
            "Jun 2021 / N".into(),
            format!("26,390 / {}", retained.len()),
            format!("26,196 / {nmx_v4}"),
            format!("2,700 / {nmx_v6}"),
        ],
        vec![
            "TwoWeekMX".into(),
            "Apr 2021 / N".into(),
            format!("22,548 / {}", twoweek.domains.len()),
            format!("10,666 / {tw_v4}"),
            format!("471 / {tw_v6}"),
        ],
    ];
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            "Table 2 — datasets (each cell: paper / measured)",
            &[
                "data set",
                "run / valid email",
                "domains",
                "IPv4 MTAs",
                "IPv6 MTAs"
            ],
            &rows
        )
    )
    .unwrap();
    writeln!(
        out,
        "note: run at MAILVAL_SCALE={} — paper columns are full-scale counts",
        runner.env().scale
    )
    .unwrap();
    out
}
