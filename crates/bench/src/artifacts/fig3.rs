//! Figure 3 / §7.1: serial vs parallel DNS lookups during SPF
//! validation, inferred from the order of queries induced by test
//! policy t01.

use crate::{CampaignRequest, Runner};
use mailval_measure::analysis::serial_vs_parallel;
use mailval_measure::report::{count_pct, render_table};
use std::fmt::Write;

/// The probe set this analysis classifies with.
const TESTS: &[&str] = &["t01"];

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::TwoWeek(TESTS)]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::TwoWeek(TESTS));
    let sp = serial_vs_parallel(&result.log);

    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            "Figure 3 / §7.1 — serial vs parallel SPF lookups",
            &["statistic", "paper", "measured"],
            &[
                vec![
                    "MTAs classified".into(),
                    "1,432".into(),
                    format!("{}", sp.classified),
                ],
                vec![
                    "serial (a-hint fetched after L3)".into(),
                    "1,392 (97%)".into(),
                    count_pct(sp.serial, sp.classified),
                ],
                vec![
                    "parallel (a-hint prefetched)".into(),
                    "40 (3%)".into(),
                    count_pct(sp.classified - sp.serial, sp.classified),
                ],
            ]
        )
    )
    .unwrap();
    out
}
