//! Figures 4 & 5: the 46-lookup stress policy and the CDF of per-MTA
//! DNS query counts / elapsed-time lower bounds.

use crate::{CampaignRequest, Runner};
use mailval_measure::analysis::lookup_limits;
use mailval_measure::report::{count_pct, pct, render_table};
use std::fmt::Write;

/// The stress policy that induces up to 46 lookups.
const TESTS: &[&str] = &["t02"];

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::TwoWeek(TESTS)]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::TwoWeek(TESTS));
    let limits = lookup_limits(&result.log);
    let n = limits.points.len();

    // CDF at the paper's x-axis ticks.
    let ticks = [0u32, 5, 10, 15, 20, 25, 30, 35, 40, 46];
    let rows: Vec<Vec<String>> = ticks
        .iter()
        .map(|&q| {
            let cum = limits.points.iter().filter(|p| p.queries <= q).count();
            vec![
                format!("{q}"),
                format!("{:.1}", q as f64 * 0.8),
                pct(cum as f64 / n.max(1) as f64),
            ]
        })
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            &format!("Figure 5 — CDF over {n} MTAs that evaluated the stress policy"),
            &[
                "queries ≤",
                "elapsed lower bound (s)",
                "cumulative fraction"
            ],
            &rows
        )
    )
    .unwrap();
    writeln!(
        out,
        "{}",
        render_table(
            "Key fractions",
            &["statistic", "paper", "measured"],
            &[
                vec![
                    "halted within 10 DNS queries".into(),
                    "336 of 553 (61%)".into(),
                    count_pct(limits.under_10, n),
                ],
                vec![
                    "executed all 46 queries (>36 s validation)".into(),
                    "154 of 553 (28%)".into(),
                    count_pct(limits.all_46, n),
                ],
            ]
        )
    )
    .unwrap();
    out
}
