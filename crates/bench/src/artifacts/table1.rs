//! Table 1: the ten most prevalent TLDs in each dataset.

use crate::{CampaignRequest, Runner};
use mailval_datasets::tld::{empirical_top_tlds, NOTIFY_EMAIL_TOP_TLDS, TWO_WEEK_MX_TOP_TLDS};
use mailval_datasets::DatasetKind;
use mailval_measure::report::{pct, render_table};
use std::collections::HashSet;
use std::fmt::Write;

/// Population-only artifact: needs no campaign.
pub fn needs() -> Vec<CampaignRequest> {
    vec![]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let mut out = String::new();
    for (kind, name, paper) in [
        (
            DatasetKind::NotifyEmail,
            "NotifyEmail",
            NOTIFY_EMAIL_TOP_TLDS,
        ),
        (DatasetKind::TwoWeekMx, "TwoWeekMX", TWO_WEEK_MX_TOP_TLDS),
    ] {
        let prepared = runner.prepared(kind);
        let pop = &prepared.pop;
        let tlds: Vec<String> = pop.domains.iter().map(|d| d.tld.clone()).collect();
        let measured = empirical_top_tlds(&tlds, 10);
        let distinct: HashSet<&String> = tlds.iter().collect();
        let rows: Vec<Vec<String>> = (0..10)
            .map(|i| {
                let (paper_tld, paper_share) = paper
                    .get(i)
                    .map(|t| (t.tld.to_string(), t.share))
                    .unwrap_or_default();
                let (m_tld, m_share) = measured.get(i).cloned().unwrap_or(("-".into(), 0.0));
                vec![
                    format!("{}", i + 1),
                    paper_tld,
                    pct(paper_share),
                    m_tld,
                    pct(m_share),
                ]
            })
            .collect();
        writeln!(
            out,
            "{}",
            render_table(
                &format!(
                    "Table 1 — {name} top TLDs ({} domains, {} TLDs measured)",
                    pop.domains.len(),
                    distinct.len()
                ),
                &["#", "paper TLD", "paper %", "measured TLD", "measured %"],
                &rows
            )
        )
        .unwrap();
    }
    out
}
