//! Table 3: the ten most prevalent ASes per dataset (counted once per
//! domain with an MTA in that AS).

use crate::{CampaignRequest, Runner};
use mailval_datasets::asn::{NOTIFY_EMAIL_TOP_ASES, TWO_WEEK_MX_TOP_ASES};
use mailval_datasets::DatasetKind;
use mailval_measure::report::{pct, render_table};
use std::collections::{HashMap, HashSet};
use std::fmt::Write;

/// Population-only artifact: needs no campaign.
pub fn needs() -> Vec<CampaignRequest> {
    vec![]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let mut out = String::new();
    for (kind, name, paper) in [
        (
            DatasetKind::NotifyEmail,
            "NotifyEmail",
            NOTIFY_EMAIL_TOP_ASES,
        ),
        (DatasetKind::TwoWeekMx, "TwoWeekMX", TWO_WEEK_MX_TOP_ASES),
    ] {
        let prepared = runner.prepared(kind);
        let pop = &prepared.pop;
        // Count each AS once per domain having an MTA in it (the paper's
        // counting rule).
        let mut counts: HashMap<u32, (String, usize)> = HashMap::new();
        for d in &pop.domains {
            let ases: HashSet<u32> = d.host_indices.iter().map(|&h| pop.hosts[h].asn).collect();
            for asn in ases {
                counts
                    .entry(asn)
                    .or_insert_with(|| (format!("AS{asn}"), 0))
                    .1 += 1;
            }
        }
        // Attach org names from the domain specs.
        for d in &pop.domains {
            if let Some(entry) = counts.get_mut(&d.asn) {
                entry.0 = format!("AS{} ({})", d.asn, d.as_name);
            }
        }
        let mut measured: Vec<(&u32, &(String, usize))> = counts.iter().collect();
        measured.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
        let total = pop.domains.len();
        let rows: Vec<Vec<String>> = (0..10)
            .map(|i| {
                let (p_name, p_share) = paper
                    .get(i)
                    .map(|a| (format!("AS{} ({})", a.asn, a.name), a.share))
                    .unwrap_or_default();
                let (m_name, m_share) = measured
                    .get(i)
                    .map(|(_, (n, c))| (n.clone(), *c as f64 / total as f64))
                    .unwrap_or(("-".into(), 0.0));
                vec![
                    format!("{}", i + 1),
                    p_name,
                    pct(p_share),
                    m_name,
                    pct(m_share),
                ]
            })
            .collect();
        writeln!(
            out,
            "{}",
            render_table(
                &format!(
                    "Table 3 — {name} top ASes (paper total ASes: {}, measured: {})",
                    if kind == DatasetKind::NotifyEmail {
                        "10,937"
                    } else {
                        "1,795"
                    },
                    counts.len()
                ),
                &["#", "paper AS", "paper %", "measured AS", "measured %"],
                &rows
            )
        )
        .unwrap();
    }
    out
}
