//! The artifact registry: every table and figure of the paper as an
//! analysis module.
//!
//! Each module exposes two functions: `needs()` declares the campaigns
//! the artifact is derived from (as [`CampaignRequest`]s), and
//! `render()` produces the artifact text from a [`Runner`], which
//! serves each campaign from its memo, the content-addressed store, or
//! a fresh simulation — in that order. The CLI resolves the union of
//! the needs first, so a batch like `fig2 table4 table5` simulates the
//! shared NotifyEmail campaign exactly once.

use crate::{CampaignRequest, Runner};

pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fingerprint;
pub mod sec7;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

/// One renderable artifact: a name for the CLI, a title for `--list`,
/// the campaigns it needs and the renderer itself.
pub struct Artifact {
    /// CLI name (`mailval-artifacts <name>`).
    pub name: &'static str,
    /// Human-readable one-liner for `--list`.
    pub title: &'static str,
    /// The campaigns this artifact is derived from. Population-only
    /// artifacts return an empty list.
    pub needs: fn() -> Vec<CampaignRequest>,
    /// Render the artifact text (stdout-bound) from a runner.
    pub render: fn(&mut Runner) -> String,
}

/// Every artifact, in paper order.
pub const ALL: &[Artifact] = &[
    Artifact {
        name: "table1",
        title: "Table 1 — top TLDs per dataset",
        needs: table1::needs,
        render: table1::render,
    },
    Artifact {
        name: "table2",
        title: "Table 2 — dataset sizes (domains, IPv4/IPv6 MTAs)",
        needs: table2::needs,
        render: table2::render,
    },
    Artifact {
        name: "table3",
        title: "Table 3 — top ASes per dataset",
        needs: table3::needs,
        render: table3::render,
    },
    Artifact {
        name: "table4",
        title: "Table 4 — SPF x DKIM x DMARC validation combinations",
        needs: table4::needs,
        render: table4::render,
    },
    Artifact {
        name: "table5",
        title: "Table 5 — SPF-validating domains and MTAs, deciles, §6.2",
        needs: table5::needs,
        render: table5::render,
    },
    Artifact {
        name: "table6",
        title: "Table 6 — popular provider validation status",
        needs: table6::needs,
        render: table6::render,
    },
    Artifact {
        name: "table7",
        title: "Table 7 — validation by Alexa membership",
        needs: table7::needs,
        render: table7::render,
    },
    Artifact {
        name: "fig2",
        title: "Figure 2 — tSPF − tEmail distribution (NotifyEmail)",
        needs: fig2::needs,
        render: fig2::render,
    },
    Artifact {
        name: "fig3",
        title: "Figure 3 / §7.1 — serial vs parallel SPF lookups",
        needs: fig3::needs,
        render: fig3::render,
    },
    Artifact {
        name: "fig5",
        title: "Figure 5 — lookup-limit CDF under the 46-query stress policy",
        needs: fig5::needs,
        render: fig5::render,
    },
    Artifact {
        name: "sec7",
        title: "§7.3 — SPF validation behavior battery",
        needs: sec7::needs,
        render: sec7::render,
    },
    Artifact {
        name: "fingerprint",
        title: "§8 extension — validator behavior fingerprints",
        needs: fingerprint::needs,
        render: fingerprint::render,
    },
];

/// Look an artifact up by CLI name.
pub fn by_name(name: &str) -> Option<&'static Artifact> {
    ALL.iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for a in ALL {
            assert!(seen.insert(a.name), "duplicate artifact name {}", a.name);
            assert!(by_name(a.name).is_some());
        }
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn shared_campaigns_are_declared_identically() {
        // fig2, table4 and table7 all derive from the same NotifyEmail
        // campaign; the store only serves them from one entry if their
        // declared requests are equal.
        assert_eq!((fig2::needs)(), (table4::needs)());
        assert_eq!((fig2::needs)(), (table7::needs)());
        assert!((table5::needs)().contains(&CampaignRequest::NotifyEmail));
    }
}
