//! Table 6: SPF/DKIM/DMARC validation status of the 19 popular mail
//! providers, observed by running the NotifyEmail pipeline against the
//! provider mini-population.

use crate::{CampaignRequest, Runner};
use mailval_datasets::providers::PROVIDERS;
use mailval_measure::analysis::notify_email_flags;
use mailval_measure::report::render_table;
use std::fmt::Write;

/// Campaigns this artifact is derived from.
pub fn needs() -> Vec<CampaignRequest> {
    vec![CampaignRequest::Providers]
}

/// Render the artifact text.
pub fn render(runner: &mut Runner) -> String {
    let result = runner.campaign(&CampaignRequest::Providers);
    let providers = runner.providers();
    let flags = notify_email_flags(&result, providers.0.domains.len());
    let mark = |b: bool| if b { "v" } else { "x" }.to_string();
    let rows: Vec<Vec<String>> = PROVIDERS
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let f = flags[i];
            vec![
                p.domain.to_string(),
                format!("{} {} {}", mark(p.spf), mark(p.dkim), mark(p.dmarc)),
                format!("{} {} {}", mark(f.spf), mark(f.dkim), mark(f.dmarc)),
            ]
        })
        .collect();
    let mut out = String::new();
    writeln!(
        out,
        "{}",
        render_table(
            "Table 6 — popular providers (SPF DKIM DMARC)",
            &["domain", "paper", "measured"],
            &rows
        )
    )
    .unwrap();
    let spf = flags.iter().filter(|f| f.spf).count();
    let full = flags.iter().filter(|f| f.spf && f.dkim && f.dmarc).count();
    writeln!(out, "SPF-validating: paper 16/19 (84%), measured {spf}/19").unwrap();
    writeln!(out, "all three:      paper 13/19 (68%), measured {full}/19").unwrap();
    out
}
