//! Campaign throughput baseline: run the NotifyEmail campaign over a
//! ~2,000-domain population at shards = 1, 2, 4, 8 and record
//! sessions/second plus the per-shard counters, as JSON to
//! `results/BENCH_campaign.json` or the given path.
//!
//! The merged output is identical for every shard count — this suite
//! asserts that — so the only thing that varies is wall-clock time.

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, PhaseTimes,
};
use mailval_measure::progress;
use mailval_simnet::LatencyModel;
use std::time::Instant;

/// ~2,000 of the paper's 26,695 NotifyEmail domains.
const SCALE: f64 = 2_000.0 / 26_695.0;

struct Run {
    shards: usize,
    sessions: usize,
    queries: usize,
    events: u64,
    wall_s: f64,
    sessions_per_s: f64,
    phases: PhaseTimes,
    shard_wall_ms: Vec<f64>,
}

/// Run the suite, writing the JSON report to `out_path` (default
/// `results/BENCH_campaign.json`).
pub fn run(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_campaign.json".to_string());
    let seed = crate::seed();
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: SCALE,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    progress!(
        "bench-campaign: NotifyEmail, {} domains / {} hosts, seed {seed}",
        pop.domains.len(),
        pop.hosts.len()
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut reference: Option<(usize, u64, usize)> = None;
    for shards in [1usize, 2, 4, 8] {
        let config = CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: vec![],
            seed,
            probe_pause_ms: 15_000,
            latency: LatencyModel::default(),
            shards,
            faults: mailval_simnet::FaultConfig::default(),
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let result = run_campaign(&config, &pop, &profiles);
        let wall_s = start.elapsed().as_secs_f64();

        let signature = (
            result.sessions.len(),
            result.events,
            result.log.records.len(),
        );
        match reference {
            None => reference = Some(signature),
            Some(r) => assert_eq!(r, signature, "shards={shards} diverged from shards=1"),
        }

        let run = Run {
            shards,
            sessions: result.sessions.len(),
            queries: result.log.records.len(),
            events: result.events,
            wall_s,
            sessions_per_s: result.sessions.len() as f64 / wall_s,
            phases: result.phases,
            shard_wall_ms: result.shard_stats.iter().map(|s| s.wall_ms).collect(),
        };
        progress!(
            "bench-campaign: shards={:<2} {:>8.3}s wall  {:>10.0} sessions/s",
            run.shards,
            run.wall_s,
            run.sessions_per_s
        );
        runs.push(run);
    }

    let json = render_json(&pop, seed, &runs);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-campaign: wrote {out_path}");
}

fn render_json(pop: &Population, seed: u64, runs: &[Run]) -> String {
    let mut s = String::new();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"campaign_notify_email\",\n");
    s.push_str(&format!("  \"cpus\": {cpus},\n"));
    s.push_str(&format!("  \"domains\": {},\n", pop.domains.len()));
    s.push_str(&format!("  \"hosts\": {},\n", pop.hosts.len()));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let walls: Vec<String> = r.shard_wall_ms.iter().map(|w| format!("{w:.1}")).collect();
        s.push_str(&format!(
            "    {{\"shards\": {}, \"sessions\": {}, \"queries_logged\": {}, \
             \"events\": {}, \"wall_s\": {:.3}, \"sessions_per_s\": {:.1}, {}, \
             \"shard_wall_ms\": [{}]}}{}\n",
            r.shards,
            r.sessions,
            r.queries,
            r.events,
            r.wall_s,
            r.sessions_per_s,
            super::phases_json(&r.phases),
            walls.join(", "),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
