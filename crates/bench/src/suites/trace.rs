//! Telemetry suite: the `trace` export subcommand and the
//! `bench-trace` overhead gate.
//!
//! The gate re-runs `bench-perf`'s 2k/shards=1 NotifyEmail campaign
//! with the tracer off and on (best of [`MEASURE_ROUNDS`] each) and
//! fails unless the tracer is effectively free when disabled
//! (≤ [`MAX_OFF_OVERHEAD`] vs the committed `BENCH_perf.json`
//! baseline) and cheap when enabled (≤ [`MAX_ON_OVERHEAD`]). It also
//! asserts the telemetry invariant directly: the traced run's content
//! hash must equal the untraced run's, byte for byte. Results land in
//! `results/BENCH_trace.json`.
//!
//! The export subcommand runs one NotifyEmail campaign at the
//! environment's scale with tracing on and emits Chrome trace-event
//! JSON (Perfetto-loadable) or the metrics-summary JSON, with
//! session/shard filters.

use mailval_datasets::DatasetKind;
use mailval_measure::campaign::{
    run_campaign, CampaignConfig, CampaignKind, CampaignResult, TelemetryConfig,
};
use mailval_measure::progress;
use mailval_measure::telemetry::{chrome_trace_json, metrics_json, TraceFilter};
use std::time::Instant;

/// Measurement rounds per mode; the best round is scored (the gate
/// compares steady-state engine cost, not scheduler noise).
const MEASURE_ROUNDS: usize = 3;

/// Maximum tolerated disabled-tracer overhead vs the perf baseline.
const MAX_OFF_OVERHEAD: f64 = 0.01;

/// Maximum tolerated recording-tracer overhead vs the perf baseline.
const MAX_ON_OVERHEAD: f64 = 0.10;

/// The row of `BENCH_perf.json` the gate compares against.
const BASELINE_SCALE: &str = "2k";
const BASELINE_SHARDS: usize = 1;

/// The population scale behind [`BASELINE_SCALE`] (bench-perf's 2k
/// axis point, verbatim).
const SCALE: f64 = 2_000.0 / 26_695.0;

/// The campaign under measurement: `bench-perf`'s configuration with
/// only the telemetry knob varied.
fn config(seed: u64, tracing: bool) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed,
        probe_pause_ms: 15_000,
        shards: BASELINE_SHARDS,
        telemetry: TelemetryConfig {
            tracing,
            heartbeat_ms: 0,
        },
        ..CampaignConfig::default()
    }
}

struct Measured {
    sessions: usize,
    best_wall_s: f64,
    sessions_per_s: f64,
    result: CampaignResult,
}

/// Run the campaign [`MEASURE_ROUNDS`] times; keep the fastest wall
/// clock and the last result (all rounds produce identical results).
fn measure(seed: u64, tracing: bool) -> Measured {
    let prepared = crate::prepare_with(
        &crate::Env {
            scale: SCALE,
            seed,
            shards: BASELINE_SHARDS,
        },
        DatasetKind::NotifyEmail,
    );
    let cfg = config(seed, tracing);
    let mut best_wall_s = f64::INFINITY;
    let mut last = None;
    for round in 0..MEASURE_ROUNDS {
        let start = Instant::now();
        let result = run_campaign(&cfg, &prepared.pop, &prepared.profiles);
        let wall_s = start.elapsed().as_secs_f64();
        progress!(
            "bench-trace: tracing={} round {}/{MEASURE_ROUNDS}: {:.3}s wall",
            if tracing { "on" } else { "off" },
            round + 1,
            wall_s
        );
        best_wall_s = best_wall_s.min(wall_s);
        last = Some(result);
    }
    let result = last.expect("at least one round");
    Measured {
        sessions: result.sessions.len(),
        best_wall_s,
        sessions_per_s: result.sessions.len() as f64 / best_wall_s,
        result,
    }
}

/// The baseline `sessions_per_s` for the matching `(scale, shards)`
/// row of the committed `BENCH_perf.json`.
fn baseline_sessions_per_s(json: &str) -> Option<f64> {
    json.lines().find_map(|line| {
        let scale = super::perf::str_field(line, "scale")?;
        let shards = super::perf::num_field(line, "shards")? as usize;
        if scale == BASELINE_SCALE && shards == BASELINE_SHARDS {
            super::perf::num_field(line, "sessions_per_s")
        } else {
            None
        }
    })
}

/// Run the overhead gate, writing the JSON report to `out_path`
/// (default `results/BENCH_trace.json`). Returns `false` on any
/// overhead or determinism violation (the `verify.sh --trace` stage).
pub fn run(out_path: Option<String>) -> bool {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_trace.json".to_string());
    let baseline_path = "results/BENCH_perf.json";
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            progress!("bench-trace: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let Some(base_sps) = baseline_sessions_per_s(&baseline) else {
        progress!(
            "bench-trace: no {BASELINE_SCALE}/shards={BASELINE_SHARDS} row in {baseline_path}"
        );
        return false;
    };

    let seed = crate::seed();
    let off = measure(seed, false);
    let on = measure(seed, true);

    // The telemetry invariant, asserted at the strongest point: a
    // traced run's deterministic output is byte-identical to an
    // untraced run's.
    let hash_matches = off.result.content_hash() == on.result.content_hash();
    let trace_events = on
        .result
        .telemetry
        .as_ref()
        .map(|t| t.events.len())
        .unwrap_or(0);

    let off_overhead = 1.0 - off.sessions_per_s / base_sps;
    let on_overhead = 1.0 - on.sessions_per_s / base_sps;
    progress!(
        "bench-trace: baseline {base_sps:.0} sessions/s; off {:.0} ({:+.1}% overhead), \
         on {:.0} ({:+.1}% overhead), {trace_events} events traced",
        off.sessions_per_s,
        off_overhead * 100.0,
        on.sessions_per_s,
        on_overhead * 100.0
    );

    let mut ok = true;
    if !hash_matches {
        progress!("bench-trace: FAIL content hash of traced run differs from untraced run");
        ok = false;
    }
    if trace_events == 0 {
        progress!("bench-trace: FAIL traced run recorded no events");
        ok = false;
    }
    if off_overhead > MAX_OFF_OVERHEAD {
        progress!(
            "bench-trace: FAIL tracing-off overhead {:.1}% > {:.0}%",
            off_overhead * 100.0,
            MAX_OFF_OVERHEAD * 100.0
        );
        ok = false;
    }
    if on_overhead > MAX_ON_OVERHEAD {
        progress!(
            "bench-trace: FAIL tracing-on overhead {:.1}% > {:.0}%",
            on_overhead * 100.0,
            MAX_ON_OVERHEAD * 100.0
        );
        ok = false;
    }

    let json = render_json(seed, base_sps, &off, &on, trace_events, hash_matches);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-trace: wrote {out_path}");
    if ok {
        progress!("bench-trace: check passed");
    }
    ok
}

fn render_json(
    seed: u64,
    base_sps: f64,
    off: &Measured,
    on: &Measured,
    trace_events: usize,
    hash_matches: bool,
) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let row = |mode: &str, m: &Measured, extra: &str| {
        format!(
            "    {{\"mode\": \"{mode}\", \"rounds\": {MEASURE_ROUNDS}, \"sessions\": {}, \
             \"best_wall_s\": {:.3}, \"sessions_per_s\": {:.1}, \
             \"overhead_vs_baseline\": {:.4}{extra}}}",
            m.sessions,
            m.best_wall_s,
            m.sessions_per_s,
            1.0 - m.sessions_per_s / base_sps
        )
    };
    format!(
        "{{\n  \"benchmark\": \"trace_overhead\",\n  \"cpus\": {cpus},\n  \"seed\": {seed},\n  \
         \"baseline\": {{\"scale\": \"{BASELINE_SCALE}\", \"shards\": {BASELINE_SHARDS}, \
         \"sessions_per_s\": {base_sps:.1}}},\n  \
         \"max_off_overhead\": {MAX_OFF_OVERHEAD},\n  \"max_on_overhead\": {MAX_ON_OVERHEAD},\n  \
         \"hash_matches_untraced\": {hash_matches},\n  \"runs\": [\n{},\n{}\n  ]\n}}\n",
        row("off", off, ""),
        row("on", on, &format!(", \"trace_events\": {trace_events}")),
    )
}

/// The `mailval-artifacts trace` subcommand: simulate the NotifyEmail
/// campaign at the environment's scale with tracing on and export
/// Chrome trace-event JSON (default) or the metrics summary. Returns
/// `false` on bad arguments.
///
/// ```text
/// trace [--session N]... [--shard K/N] [--metrics] [--out FILE]
/// ```
pub fn export(args: &[String]) -> bool {
    let mut filter = TraceFilter::default();
    let mut metrics = false;
    let mut out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--session" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(id) => filter.sessions.push(id),
                None => {
                    progress!("trace: --session needs a session id");
                    return false;
                }
            },
            "--shard" => {
                let parsed = iter.next().and_then(|v| {
                    let (k, n) = v.split_once('/')?;
                    Some((k.parse().ok()?, n.parse().ok()?))
                });
                match parsed {
                    Some((k, n)) if n > 0 && k < n => filter.shard = Some((k, n)),
                    _ => {
                        progress!("trace: --shard needs K/N with K < N");
                        return false;
                    }
                }
            }
            "--metrics" => metrics = true,
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    progress!("trace: --out needs a path");
                    return false;
                }
            },
            other => {
                progress!("trace: unknown argument '{other}'");
                return false;
            }
        }
    }

    let env = crate::Env::from_env();
    let prepared = crate::prepare_with(&env, DatasetKind::NotifyEmail);
    let cfg = CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed: env.seed,
        probe_pause_ms: 15_000,
        shards: env.shards,
        telemetry: TelemetryConfig {
            tracing: true,
            heartbeat_ms: 500,
        },
        ..CampaignConfig::default()
    };
    progress!(
        "trace: NotifyEmail over {} domains / {} hosts on {} shard(s), tracing on",
        prepared.pop.domains.len(),
        prepared.pop.hosts.len(),
        env.shards.max(1)
    );
    let result = run_campaign(&cfg, &prepared.pop, &prepared.profiles);
    let telemetry = result.telemetry.expect("tracing was enabled");
    progress!(
        "trace: {} sessions, {} trace events{}",
        result.sessions.len(),
        telemetry.events.len(),
        telemetry
            .metrics
            .cache_hit_rate()
            .map(|r| format!(", resolver cache hit-rate {:.1}%", r * 100.0))
            .unwrap_or_default()
    );
    let doc = if metrics {
        metrics_json(&telemetry.metrics)
    } else {
        chrome_trace_json(&telemetry.events, &filter)
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write trace file");
            progress!("trace: wrote {path} ({} bytes)", doc.len());
        }
        None => print!("{doc}"),
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_row_is_found() {
        let json = "\
{\n  \"runs\": [\n    {\"scale\": \"2k\", \"shards\": 1, \"sessions_per_s\": 1234.5},\n    \
{\"scale\": \"2k\", \"shards\": 2, \"sessions_per_s\": 2000.0}\n  ]\n}\n";
        assert_eq!(baseline_sessions_per_s(json), Some(1234.5));
        assert_eq!(baseline_sessions_per_s("{}"), None);
    }
}
