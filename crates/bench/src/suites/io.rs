//! Storage-fault sweep: run the journaled NotifyEmail campaign with
//! the deterministic IO fault layer at rates {0, 0.01, 0.05, 0.20}
//! (applied uniformly to short writes, fsync failures, rename failures
//! and read corruption) and record throughput, the degradation
//! counters and the result digest, as JSON to `results/BENCH_io.json`
//! or the given path.
//!
//! The suite asserts the fault layer's core invariant while measuring
//! it: **every rate produces the same content hash**. IO faults cost
//! durability (demoted journals, failed saves), never results, so the
//! rate-0 row doubles as a journal-overhead baseline comparable to
//! `bench-campaign` throughput.

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, PhaseTimes,
};
use mailval_measure::progress;
use mailval_simnet::IoConfig;
use std::time::Instant;

/// ~1,000 of the paper's 26,695 NotifyEmail domains.
const SCALE: f64 = 1_000.0 / 26_695.0;

/// The fault-rate axis of the sweep.
const FAULT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

struct Run {
    rate: f64,
    sessions: usize,
    delivered: usize,
    queries: usize,
    events: u64,
    wall_s: f64,
    sessions_per_s: f64,
    phases: PhaseTimes,
    shards_demoted: usize,
    content_hash: String,
}

fn hex(h: &[u8; 32]) -> String {
    h.iter().map(|b| format!("{b:02x}")).collect()
}

/// Run the suite, writing the JSON report to `out_path` (default
/// `results/BENCH_io.json`).
pub fn run(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_io.json".to_string());
    let seed = crate::seed();
    let shards = crate::shards();
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: SCALE,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    progress!(
        "bench-io: NotifyEmail, {} domains / {} hosts, seed {seed}, {shards} shard(s)",
        pop.domains.len(),
        pop.hosts.len()
    );

    let journal_root =
        std::env::temp_dir().join(format!("mailval-bench-io-{}", std::process::id()));
    let mut runs: Vec<Run> = Vec::new();
    for rate in FAULT_RATES {
        let dir = journal_root.join(format!("rate-{rate}"));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: vec![],
            seed,
            probe_pause_ms: 0,
            shards,
            journal_dir: Some(dir.clone()),
            io: IoConfig {
                short_write_probability: rate,
                fsync_fail_probability: rate,
                rename_fail_probability: rate,
                read_corrupt_probability: rate,
                seed,
                ..IoConfig::default()
            },
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let result = run_campaign(&config, &pop, &profiles);
        let wall_s = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);

        let run = Run {
            rate,
            sessions: result.sessions.len(),
            delivered: result
                .sessions
                .iter()
                .filter(|s| s.delivery_time_ms.is_some())
                .count(),
            queries: result.log.records.len(),
            events: result.events,
            wall_s,
            sessions_per_s: result.sessions.len() as f64 / wall_s,
            phases: result.phases,
            shards_demoted: result
                .shard_stats
                .iter()
                .filter(|s| s.durability_lost)
                .count(),
            content_hash: hex(&result.content_hash()),
        };
        progress!(
            "bench-io: rate={:<4} {:>7.3}s wall  {:>8.0} sessions/s  \
             demoted {}/{} shard journal(s)  hash {}",
            run.rate,
            run.wall_s,
            run.sessions_per_s,
            run.shards_demoted,
            result.shard_stats.len(),
            &run.content_hash[..16]
        );
        runs.push(run);
    }
    let _ = std::fs::remove_dir_all(&journal_root);

    // The whole point of the layer: faults shift durability, not bytes.
    for r in &runs[1..] {
        assert_eq!(
            r.content_hash, runs[0].content_hash,
            "rate {} changed the campaign output — IO faults must cost \
             durability only",
            r.rate
        );
    }

    let json = render_json(&pop, seed, shards, &runs);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-io: wrote {out_path}");
}

fn render_json(pop: &Population, seed: u64, shards: usize, runs: &[Run]) -> String {
    let mut s = String::new();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"io_fault_sweep\",\n");
    s.push_str(&format!("  \"cpus\": {cpus},\n"));
    s.push_str(&format!("  \"domains\": {},\n", pop.domains.len()));
    s.push_str(&format!("  \"hosts\": {},\n", pop.hosts.len()));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rate\": {}, \"sessions\": {}, \"delivered\": {}, \
             \"queries_logged\": {}, \"events\": {}, \"wall_s\": {:.3}, \
             \"sessions_per_s\": {:.1}, {}, \"shards_demoted\": {}, \
             \"content_hash\": \"{}\"}}{}\n",
            r.rate,
            r.sessions,
            r.delivered,
            r.queries,
            r.events,
            r.wall_s,
            r.sessions_per_s,
            super::phases_json(&r.phases),
            r.shards_demoted,
            r.content_hash,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
