//! Hostile-peer suite and fuzz harness.
//!
//! `bench-hostile` runs the NotifyEmail campaign under the payload
//! fault layer at corruption rates {0, 0.05, 0.20, 0.50} (applied to
//! both the DNS and SMTP channels, with one host in eight flagged as a
//! hostile authoritative server) and records throughput, the outcome
//! mix, the payload-mutation counters and the full malformed-input
//! class histogram, as JSON to `results/BENCH_hostile.json` or the
//! given path.
//!
//! `fuzz` is the deterministic in-tree fuzz harness: it drives mutated
//! DNS response frames and SMTP reply segments straight into the wire
//! decoder and reply parser — no campaign around them — and checks the
//! two hardening invariants the payload layer relies on: no input ever
//! panics a parser, and every rejected input maps to exactly one
//! [`MalformedClass`]. Everything is derived from `MAILVAL_SEED`, so a
//! failing frame index reproduces exactly.
//!
//! The harness's storage stage turns the same discipline on the
//! on-disk codecs: store entries and journals are re-read through a
//! [`SimFs`] whose read path flips one byte per load (the production
//! IO fault seam, corruption position advancing every read), and every
//! load must come back as a clean reject or a byte-faithful result —
//! never a panic, never silently different data.

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_dmarc::record::looks_like_dmarc;
use mailval_dmarc::DmarcRecord;
use mailval_dns::{Message, Name, RData, Rcode, Record, RecordType};
use mailval_measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, PhaseTimes,
};
use mailval_measure::hostile::{classify_reply, classify_wire, synthesize_hostile_dns};
use mailval_measure::store::{CampaignStore, KeySpec};
use mailval_measure::vfs::SimFs;
use mailval_measure::{journal, progress};
use mailval_simnet::{
    DnsMutation, FaultCursor, FaultStats, IoConfig, IoPlan, MalformedClass, MalformedStats,
    PayloadConfig, PayloadPlan, SimRng,
};
use mailval_smtp::reply::ReplyParser;
use mailval_spf::record::SpfRecord;
use std::sync::Arc;
use std::time::Instant;

/// ~1,000 of the paper's 26,695 NotifyEmail domains.
const SCALE: f64 = 1_000.0 / 26_695.0;

/// The corruption axis of the sweep (both channels at once).
const CORRUPT_RATES: [f64; 4] = [0.0, 0.05, 0.20, 0.50];

/// One host in this many carries the hostile-content DNS knob.
const HOSTILE_HOST_STRIDE: usize = 8;

struct Run {
    rate: f64,
    sessions: usize,
    delivered: usize,
    rejected: usize,
    dead: usize,
    wall_s: f64,
    sessions_per_s: f64,
    phases: PhaseTimes,
    faults: FaultStats,
}

/// Run the sweep, writing the JSON report to `out_path` (default
/// `results/BENCH_hostile.json`).
pub fn run(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_hostile.json".to_string());
    let seed = crate::seed();
    let shards = crate::shards();
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: SCALE,
        seed,
    });
    let mut profiles = sample_host_profiles(&pop, seed);
    for (i, p) in profiles.iter_mut().enumerate() {
        p.hostile_dns = i % HOSTILE_HOST_STRIDE == 0;
    }
    progress!(
        "bench-hostile: NotifyEmail, {} domains / {} hosts ({} hostile), seed {seed}, {shards} shard(s)",
        pop.domains.len(),
        pop.hosts.len(),
        pop.hosts.len().div_ceil(HOSTILE_HOST_STRIDE)
    );

    let mut runs: Vec<Run> = Vec::new();
    for rate in CORRUPT_RATES {
        let config = CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: vec![],
            seed,
            probe_pause_ms: 0,
            shards,
            payload: PayloadConfig {
                dns_corrupt_probability: rate,
                smtp_corrupt_probability: rate,
                seed,
            },
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let result = run_campaign(&config, &pop, &profiles);
        let wall_s = start.elapsed().as_secs_f64();

        let delivered = result
            .sessions
            .iter()
            .filter(|s| s.delivery_time_ms.is_some())
            .count();
        let rejected = result
            .sessions
            .iter()
            .filter(|s| {
                s.delivery_time_ms.is_none()
                    && s.outcome.as_ref().is_some_and(|o| o.rejection.is_some())
            })
            .count();
        let dead = result.sessions.len() - delivered - rejected;
        let run = Run {
            rate,
            sessions: result.sessions.len(),
            delivered,
            rejected,
            dead,
            wall_s,
            sessions_per_s: result.sessions.len() as f64 / wall_s,
            phases: result.phases,
            faults: result.faults,
        };
        progress!(
            "bench-hostile: rate={:<4} {:>7.3}s wall  {:>8.0} sessions/s  \
             delivered {} / rejected {} / dead {}  mutations dns {} smtp {}  \
             hostile-terminated {}",
            run.rate,
            run.wall_s,
            run.sessions_per_s,
            run.delivered,
            run.rejected,
            run.dead,
            run.faults.dns_payload_mutations,
            run.faults.smtp_payload_mutations,
            run.faults.hostile_inputs
        );
        runs.push(run);
    }

    let json = render_json(&pop, seed, shards, &runs);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-hostile: wrote {out_path}");
}

fn render_json(pop: &Population, seed: u64, shards: usize, runs: &[Run]) -> String {
    let mut s = String::new();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"hostile_payload_sweep\",\n");
    s.push_str(&format!("  \"cpus\": {cpus},\n"));
    s.push_str(&format!("  \"domains\": {},\n", pop.domains.len()));
    s.push_str(&format!("  \"hosts\": {},\n", pop.hosts.len()));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let f = &r.faults;
        s.push_str(&format!(
            "    {{\"corrupt_rate\": {}, \"sessions\": {}, \"delivered\": {}, \
             \"rejected\": {}, \"dead\": {}, \"wall_s\": {:.3}, \
             \"sessions_per_s\": {:.1}, {}, \"dns_payload_mutations\": {}, \
             \"smtp_payload_mutations\": {}, \"hostile_inputs\": {}, \
             \"malformed\": {{{}}}}}{}\n",
            r.rate,
            r.sessions,
            r.delivered,
            r.rejected,
            r.dead,
            r.wall_s,
            r.sessions_per_s,
            super::phases_json(&r.phases),
            f.dns_payload_mutations,
            f.smtp_payload_mutations,
            f.hostile_inputs,
            render_malformed(&f.malformed),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn render_malformed(stats: &MalformedStats) -> String {
    stats
        .iter()
        .map(|(class, n)| format!("\"{}\": {n}", class.label()))
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// The fuzz harness
// ---------------------------------------------------------------------------

/// Default frame budget for the fuzz harness: the acceptance floor.
pub const DEFAULT_FUZZ_FRAMES: u64 = 100_000;

/// Tallies from one fuzz run, asserted on and reported.
pub struct FuzzReport {
    /// Frames driven (DNS + SMTP combined).
    pub frames: u64,
    /// Frames the payload layer left untouched (probability pass-through
    /// is forced to 1.0, so this stays 0; a nonzero value means the plan
    /// went inert).
    pub unmutated: u64,
    /// Mutated frames the parsers still accepted (benign mutations: a
    /// bit flip in a TTL, a truncation landing on a record boundary).
    pub accepted: u64,
    /// Mutated frames the parsers refused — every one classified.
    pub rejected: u64,
    /// Accepted DNS frames whose TXT rdata then failed SPF record
    /// parsing (graceful `Err`, not a [`MalformedClass`]: a syntactically
    /// broken policy is a *policy* problem, not a wire problem).
    pub spf_record_rejected: u64,
    /// The classification histogram; `total()` must equal `rejected`.
    pub malformed: MalformedStats,
}

/// Run the fuzz harness over `frames` mutated inputs (default
/// [`DEFAULT_FUZZ_FRAMES`]). Panics — and thereby fails the harness —
/// if any parser accepts/rejects inconsistently; a parser panic
/// propagates and fails it too, which is the point.
pub fn fuzz(frames_arg: Option<String>) {
    let frames: u64 = frames_arg
        .as_deref()
        .map(|s| s.parse().expect("fuzz frame count must be an integer"))
        .unwrap_or(DEFAULT_FUZZ_FRAMES);
    let seed = crate::seed();
    progress!("fuzz: {frames} frames, seed {seed}");
    let start = Instant::now();
    let report = fuzz_run(frames, seed);
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(report.frames, frames, "every frame must be driven");
    assert_eq!(
        report.unmutated, 0,
        "corruption probability 1.0 must mutate every frame"
    );
    assert_eq!(
        report.accepted + report.rejected,
        frames,
        "every frame is either accepted or rejected"
    );
    assert_eq!(
        report.malformed.total(),
        report.rejected,
        "every rejection must carry exactly one classification"
    );
    progress!(
        "fuzz: {} frames in {:.2}s ({:.0}/s): {} accepted, {} rejected, \
         {} spf-record rejects, 0 panics",
        report.frames,
        wall_s,
        report.frames as f64 / wall_s,
        report.accepted,
        report.rejected,
        report.spf_record_rejected
    );
    for (class, n) in report.malformed.iter() {
        progress!("fuzz:   {:<22} {n}", class.label());
    }

    // Stage 2: the storage codecs, through the production IO fault
    // seam. Scale the sweep with the frame budget, floored so even a
    // smoke run exercises both codecs.
    let loads = (frames / 200).clamp(64, 2_048);
    let start = Instant::now();
    let storage = fuzz_storage(loads, seed);
    progress!(
        "fuzz: storage stage in {:.2}s: {} corrupted store loads \
         ({} rejected, {} benign), {} corrupted journal replays \
         ({} frames salvaged), 0 panics",
        start.elapsed().as_secs_f64(),
        storage.store_loads,
        storage.store_rejected,
        storage.store_loads - storage.store_rejected,
        storage.journal_replays,
        storage.journal_frames_salvaged
    );
}

/// Tallies from the storage fuzz stage.
pub struct StorageFuzzReport {
    /// Store loads driven through the corrupting [`SimFs`].
    pub store_loads: u64,
    /// Loads the entry verifier refused (clean [`StoreError`]s). The
    /// remainder hit the one ignored region (the header's label text)
    /// and MUST have decoded byte-identically.
    pub store_rejected: u64,
    /// Journal replays driven through the corrupting [`SimFs`].
    pub journal_replays: u64,
    /// Intact frames salvaged across all corrupted replays (each one
    /// verified against the uncorrupted reference).
    pub journal_frames_salvaged: u64,
}

/// Byte-flip the on-disk codecs through the production seam: persist
/// one small campaign, then re-read its store entry and journal
/// `loads` times each through a [`SimFs`] that corrupts one byte per
/// read (position keyed by the per-file read index, so the sweep walks
/// the file). Panics on any safety violation.
pub fn fuzz_storage(loads: u64, seed: u64) -> StorageFuzzReport {
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: 0.002,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    let scratch = std::env::temp_dir().join(format!("mailval-fuzz-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let journal_dir = scratch.join("journal");
    let config = CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed,
        probe_pause_ms: 0,
        shards: 2,
        journal_dir: Some(journal_dir.clone()),
        ..CampaignConfig::default()
    };
    let result = run_campaign(&config, &pop, &profiles);

    // A store entry saved clean, loaded corrupt.
    let store_root = scratch.join("store");
    let key = KeySpec {
        config: &config,
        dataset: "NotifyEmail",
        scale: 0.002,
        population_seed: seed,
        profiles: "fuzz",
    }
    .key();
    CampaignStore::new(store_root.clone())
        .save(&key, &result)
        .expect("save reference entry");
    let corrupting = |salt: u64| -> Arc<SimFs> {
        Arc::new(SimFs::new(IoPlan::new(IoConfig {
            read_corrupt_probability: 1.0,
            seed: seed ^ salt,
            ..IoConfig::default()
        })))
    };
    let store = CampaignStore::new_with_vfs(store_root, corrupting(0x0005_708E));
    let mut report = StorageFuzzReport {
        store_loads: 0,
        store_rejected: 0,
        journal_replays: 0,
        journal_frames_salvaged: 0,
    };
    for _ in 0..loads {
        report.store_loads += 1;
        match store.load(&key) {
            Err(_) => report.store_rejected += 1,
            Ok(loaded) => {
                assert_eq!(
                    loaded.sessions, result.sessions,
                    "corrupt load changed data"
                );
                assert_eq!(loaded.log.records, result.log.records);
                assert_eq!(loaded.events, result.events);
            }
        }
    }
    assert!(
        report.store_rejected * 2 > report.store_loads,
        "only {}/{} corrupted store loads rejected — the verifier is \
         not seeing the corruption",
        report.store_rejected,
        report.store_loads
    );

    // Journals re-read corrupt: replay never fails, never panics, and
    // every frame that survives the CRC matches the reference result.
    let vfs = corrupting(0x0010_1234);
    for k in 0..2usize {
        let path = journal::shard_journal_path(&journal_dir, k);
        for _ in 0..loads {
            report.journal_replays += 1;
            let replay = journal::replay_with(&path, &*vfs);
            for frame in &replay.frames {
                let reference = result
                    .sessions
                    .iter()
                    .find(|s| s.session_id == frame.record.session_id)
                    .expect("salvaged frame exists in reference result");
                assert_eq!(&frame.record, reference, "salvaged frame diverged");
                report.journal_frames_salvaged += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
    report
}

/// The harness body, separated so tests can run a small frame budget.
pub fn fuzz_run(frames: u64, seed: u64) -> FuzzReport {
    let plan = PayloadPlan::new(PayloadConfig {
        dns_corrupt_probability: 1.0,
        smtp_corrupt_probability: 1.0,
        seed,
    });
    let dns_corpus = dns_corpus();
    let smtp_corpus = smtp_corpus();
    let mut report = FuzzReport {
        frames: 0,
        unmutated: 0,
        accepted: 0,
        rejected: 0,
        spf_record_rejected: 0,
        malformed: MalformedStats::default(),
    };
    // One RNG for corpus selection only; the mutations themselves come
    // from the plan's own (session, cursor) streams, exactly as a
    // campaign would draw them.
    let mut pick = SimRng::new(seed ^ 0xF0_2221);
    for frame in 0..frames {
        report.frames += 1;
        if frame % 2 == 0 {
            fuzz_dns_frame(&plan, frame, &dns_corpus, &mut pick, &mut report);
        } else {
            fuzz_smtp_frame(&plan, frame, &smtp_corpus, &mut pick, &mut report);
        }
    }
    report
}

fn fuzz_dns_frame(
    plan: &PayloadPlan,
    frame: u64,
    corpus: &[Vec<u8>],
    pick: &mut SimRng,
    report: &mut FuzzReport,
) {
    let mut bytes = corpus[pick.next_below(corpus.len() as u64) as usize].clone();
    let mut cursor = FaultCursor::default();
    // Every third DNS frame fuzzes through the hostile-content palette,
    // exercising the synthesis path as well as the byte mutations.
    let hostile = frame.is_multiple_of(3);
    match plan.mutate_dns(frame, &mut cursor, &mut bytes, hostile) {
        None => {
            report.unmutated += 1;
        }
        Some(kind @ (DnsMutation::SpfCycle | DnsMutation::CnameChain)) => {
            if let Some(replacement) = synthesize_hostile_dns(&bytes, kind) {
                bytes = replacement;
            }
        }
        Some(_) => {}
    }
    match Message::from_bytes(&bytes) {
        Ok(msg) => {
            report.accepted += 1;
            // Anything that decodes cleanly and carries TXT rdata is fed
            // to the SPF and DMARC record parsers: the next consumers in
            // the real pipeline, which must also never panic on hostile
            // content (mutated rdata reaches them as lossy UTF-8, so
            // multibyte replacement chars land at arbitrary offsets).
            for record in msg.answers.iter() {
                if let Some(txt) = record.rdata.txt_joined() {
                    if SpfRecord::parse(&txt).is_err() {
                        report.spf_record_rejected += 1;
                    }
                    if looks_like_dmarc(&txt) {
                        let _ = DmarcRecord::parse(&txt);
                    }
                }
            }
        }
        Err(e) => {
            report.rejected += 1;
            report.malformed.record(classify_wire(&e));
        }
    }
}

fn fuzz_smtp_frame(
    plan: &PayloadPlan,
    frame: u64,
    corpus: &[String],
    pick: &mut SimRng,
    report: &mut FuzzReport,
) {
    let mut text = corpus[pick.next_below(corpus.len() as u64) as usize].clone();
    let mut cursor = FaultCursor::default();
    if plan.mutate_smtp(frame, &mut cursor, &mut text).is_none() {
        report.unmutated += 1;
    }
    let mut parser = ReplyParser::new();
    let mut refused: Option<MalformedClass> = None;
    for line in text.split("\r\n").filter(|l| !l.is_empty()) {
        match parser.push_line(line) {
            Ok(_) => {}
            Err(e) => {
                refused = Some(classify_reply(&e));
                break;
            }
        }
    }
    match refused {
        Some(class) => {
            report.rejected += 1;
            report.malformed.record(class);
        }
        None => report.accepted += 1,
    }
}

/// Well-formed DNS responses spanning the record types the measurement
/// pipeline actually consumes: the fuzz layer then breaks them.
fn dns_corpus() -> Vec<Vec<u8>> {
    let name = |s: &str| Name::parse(s).expect("valid corpus name");
    let build = |qname: &str, rtype: RecordType, answers: Vec<Record>| {
        let query = Message::query(0x4d56, name(qname), rtype);
        let mut response = Message::response_to(&query, Rcode::NoError);
        response.answers = answers;
        response.to_bytes()
    };
    vec![
        build(
            "mx1.example.test",
            RecordType::A,
            vec![Record::new(
                name("mx1.example.test"),
                300,
                RData::A(std::net::Ipv4Addr::new(192, 0, 2, 25)),
            )],
        ),
        build(
            "example.test",
            RecordType::Mx,
            vec![
                Record::new(
                    name("example.test"),
                    3600,
                    RData::Mx {
                        preference: 10,
                        exchange: name("mx1.example.test"),
                    },
                ),
                Record::new(
                    name("example.test"),
                    3600,
                    RData::Mx {
                        preference: 20,
                        exchange: name("mx2.example.test"),
                    },
                ),
            ],
        ),
        build(
            "example.test",
            RecordType::Txt,
            vec![Record::new(
                name("example.test"),
                300,
                RData::txt_from_str("v=spf1 ip4:192.0.2.0/24 include:spf.example.test ~all"),
            )],
        ),
        build(
            "alias.example.test",
            RecordType::A,
            vec![
                Record::new(
                    name("alias.example.test"),
                    300,
                    RData::Cname(name("mx1.example.test")),
                ),
                Record::new(
                    name("mx1.example.test"),
                    300,
                    RData::A(std::net::Ipv4Addr::new(192, 0, 2, 26)),
                ),
            ],
        ),
        build(
            "_dmarc.example.test",
            RecordType::Txt,
            vec![Record::new(
                name("_dmarc.example.test"),
                300,
                RData::txt_from_str("v=DMARC1; p=reject; rua=mailto:reports@example.test"),
            )],
        ),
        build(
            "long.example.test",
            RecordType::Txt,
            vec![Record::new(
                name("long.example.test"),
                60,
                RData::txt_from_str(&format!("v=spf1 {} -all", "ip4:198.51.100.1 ".repeat(30))),
            )],
        ),
    ]
}

/// Well-formed SMTP reply segments — single-line, multiline and
/// multi-reply — for the mutation layer to break.
fn smtp_corpus() -> Vec<String> {
    vec![
        "220 mx1.example.test ESMTP ready\r\n".to_string(),
        "250-mx1.example.test greets you\r\n250-SIZE 35882577\r\n250-8BITMIME\r\n250 STARTTLS\r\n"
            .to_string(),
        "250 2.1.0 sender ok\r\n".to_string(),
        "550 5.7.1 rejected: SPF fail\r\n".to_string(),
        "451 4.7.1 greylisted, try again later\r\n".to_string(),
        "250 2.1.0 ok\r\n354 end data with <CRLF>.<CRLF>\r\n".to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_smoke_classifies_every_rejection() {
        let report = fuzz_run(2_000, 2021);
        assert_eq!(report.frames, 2_000);
        assert_eq!(report.unmutated, 0);
        assert_eq!(report.accepted + report.rejected, 2_000);
        assert_eq!(report.malformed.total(), report.rejected);
        // The palette is broad enough that a 2k-frame run must reject a
        // healthy share on both channels.
        assert!(report.rejected > 200, "rejected {}", report.rejected);
        let dns_rejects: u64 = MalformedClass::ALL[..4]
            .iter()
            .map(|&c| report.malformed.count(c))
            .sum();
        let smtp_rejects: u64 = MalformedClass::ALL[4..8]
            .iter()
            .map(|&c| report.malformed.count(c))
            .sum();
        assert!(dns_rejects > 0, "no DNS rejections classified");
        assert!(smtp_rejects > 0, "no SMTP rejections classified");
    }

    #[test]
    fn fuzz_storage_smoke_rejects_or_roundtrips() {
        // A small sweep through the SimFs read-corruption seam: panics
        // inside fuzz_storage are the failure mode, the report is the
        // evidence the stage actually drove both codecs.
        let report = fuzz_storage(64, 2021);
        assert_eq!(report.store_loads, 64);
        assert!(report.store_rejected * 2 > 64);
        assert_eq!(report.journal_replays, 128);
        assert!(
            report.journal_frames_salvaged > 0,
            "no journal frame ever survived a single byte flip"
        );
    }

    #[test]
    fn fuzz_is_deterministic_for_a_seed() {
        let a = fuzz_run(500, 7);
        let b = fuzz_run(500, 7);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.spf_record_rejected, b.spf_record_rejected);
        for (class, n) in a.malformed.iter() {
            assert_eq!(b.malformed.count(class), n, "{class:?} diverged");
        }
        let c = fuzz_run(500, 8);
        let differs = a.accepted != c.accepted
            || MalformedClass::ALL
                .iter()
                .any(|&cl| a.malformed.count(cl) != c.malformed.count(cl));
        assert!(differs, "distinct seeds must explore distinct frames");
    }

    #[test]
    fn corpus_is_well_formed_before_mutation() {
        for bytes in dns_corpus() {
            Message::from_bytes(&bytes).expect("pristine corpus frame must decode");
        }
        for text in smtp_corpus() {
            let mut parser = ReplyParser::new();
            for line in text.split("\r\n").filter(|l| !l.is_empty()) {
                parser
                    .push_line(line)
                    .expect("pristine corpus reply parses");
            }
        }
    }
}
