//! Phase-accounting perf suite: run the NotifyEmail campaign end to
//! end at shards = 1, 2, 4, 8 over ~2,000- and ~20,000-domain
//! populations and record sessions/second *with the per-phase
//! breakdown* (`setup / simulate / merge`), as JSON to
//! `results/BENCH_perf.json` or the given path.
//!
//! Where `bench-campaign` reports only end-to-end wall clock, this
//! suite exists to prove the shared-world engine is CPU-bound: the
//! setup-share column must stay a small fraction of every run, and
//! sessions/s must not regress. [`check`] re-runs the suite and gates
//! on exactly that against the committed baseline (the
//! `scripts/verify.sh --perf` stage).

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, PhaseTimes,
};
use mailval_measure::progress;
use mailval_simnet::LatencyModel;
use std::time::Instant;

/// The shard axis of every sweep.
const SHARD_AXIS: [usize; 4] = [1, 2, 4, 8];

/// The population axis: label and scale against the paper's 26,695
/// NotifyEmail domains.
const SCALE_AXIS: [(&str, f64); 2] = [("2k", 2_000.0 / 26_695.0), ("20k", 20_000.0 / 26_695.0)];

/// Maximum tolerated setup share of end-to-end wall clock.
const MAX_SETUP_SHARE: f64 = 0.30;

/// Maximum tolerated sessions/s regression vs the committed baseline.
const MAX_REGRESSION: f64 = 0.10;

/// Rounds per axis point when gating ([`check`]): contention on a
/// shared box only ever slows a run, so best-of-N estimates the true
/// capability the single-run baseline recorded. The baseline capture
/// ([`run`]) stays single-round.
const CHECK_ROUNDS: usize = 3;

struct Run {
    scale_label: &'static str,
    shards: usize,
    sessions: usize,
    queries: usize,
    events: u64,
    wall_s: f64,
    sessions_per_s: f64,
    phases: PhaseTimes,
}

/// The campaign under measurement: `bench-campaign`'s configuration
/// verbatim, so the two suites' shards=1 rows are directly comparable.
fn config(seed: u64, shards: usize) -> CampaignConfig {
    CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed,
        probe_pause_ms: 15_000,
        latency: LatencyModel::default(),
        shards,
        faults: mailval_simnet::FaultConfig::default(),
        ..CampaignConfig::default()
    }
}

fn sweep(seed: u64, rounds: usize) -> Vec<Run> {
    let mut runs = Vec::new();
    for (label, scale) in SCALE_AXIS {
        let pop = Population::generate(&PopulationConfig {
            kind: DatasetKind::NotifyEmail,
            scale,
            seed,
        });
        let profiles = sample_host_profiles(&pop, seed);
        progress!(
            "bench-perf: NotifyEmail {label}: {} domains / {} hosts, seed {seed}",
            pop.domains.len(),
            pop.hosts.len()
        );
        let mut reference: Option<(usize, u64, usize)> = None;
        for shards in SHARD_AXIS {
            // Best-of-`rounds`: keep the fastest round's wall clock and
            // its phase breakdown.
            let mut best: Option<(f64, _)> = None;
            let mut result = None;
            for _ in 0..rounds {
                let start = Instant::now();
                let r = run_campaign(&config(seed, shards), &pop, &profiles);
                let wall_s = start.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(w, _)| wall_s < *w) {
                    best = Some((wall_s, r.phases));
                }
                result = Some(r);
            }
            let (wall_s, phases) = best.expect("at least one round");
            let result = result.expect("at least one round");

            let signature = (
                result.sessions.len(),
                result.events,
                result.log.records.len(),
            );
            match reference {
                None => reference = Some(signature),
                Some(r) => assert_eq!(r, signature, "shards={shards} diverged from shards=1"),
            }

            let run = Run {
                scale_label: label,
                shards,
                sessions: result.sessions.len(),
                queries: result.log.records.len(),
                events: result.events,
                wall_s,
                sessions_per_s: result.sessions.len() as f64 / wall_s,
                phases,
            };
            progress!(
                "bench-perf: {label:<3} shards={:<2} {:>7.3}s wall  {:>9.0} sessions/s  \
                 setup-share {:.1}%",
                run.shards,
                run.wall_s,
                run.sessions_per_s,
                run.phases.setup_share() * 100.0
            );
            runs.push(run);
        }
    }
    runs
}

/// Run the suite, writing the JSON report to `out_path` (default
/// `results/BENCH_perf.json`).
pub fn run(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_perf.json".to_string());
    let runs = sweep(crate::seed(), 1);
    let json = render_json(crate::seed(), &runs);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-perf: wrote {out_path}");
}

/// The `verify.sh --perf` gate: re-run the sweep (best of
/// [`CHECK_ROUNDS`] per axis point, to ride out transient contention)
/// and fail (return `false`) if any run's setup-share exceeds 30%, or
/// any run's sessions/s fell more than 10% below the committed
/// baseline's matching `(scale, shards)` row. Baseline rows that can't be matched
/// are reported and ignored (a new axis point is not a regression).
pub fn check(baseline_path: Option<String>) -> bool {
    let baseline_path = baseline_path.unwrap_or_else(|| "results/BENCH_perf.json".to_string());
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            progress!("bench-perf: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let baseline_runs = parse_runs(&baseline);
    if baseline_runs.is_empty() {
        progress!("bench-perf: no runs parsed from baseline {baseline_path}");
        return false;
    }
    let runs = sweep(crate::seed(), CHECK_ROUNDS);
    let mut ok = true;
    for run in &runs {
        let share = run.phases.setup_share();
        if share > MAX_SETUP_SHARE {
            progress!(
                "bench-perf: FAIL {} shards={}: setup-share {:.1}% > {:.0}%",
                run.scale_label,
                run.shards,
                share * 100.0,
                MAX_SETUP_SHARE * 100.0
            );
            ok = false;
        }
        let Some(base) = baseline_runs
            .iter()
            .find(|b| b.scale_label == run.scale_label && b.shards == run.shards)
        else {
            progress!(
                "bench-perf: note: no baseline row for {} shards={}",
                run.scale_label,
                run.shards
            );
            continue;
        };
        let floor = base.sessions_per_s * (1.0 - MAX_REGRESSION);
        if run.sessions_per_s < floor {
            progress!(
                "bench-perf: FAIL {} shards={}: {:.0} sessions/s < {:.0} \
                 (baseline {:.0} - {:.0}%)",
                run.scale_label,
                run.shards,
                run.sessions_per_s,
                floor,
                base.sessions_per_s,
                MAX_REGRESSION * 100.0
            );
            ok = false;
        }
    }
    if ok {
        progress!(
            "bench-perf: check passed ({} runs vs baseline {baseline_path})",
            runs.len()
        );
    }
    ok
}

/// A baseline row recovered from the committed JSON.
struct BaselineRun {
    scale_label: String,
    shards: usize,
    sessions_per_s: f64,
}

/// Extract `(scale, shards, sessions_per_s)` from the report's
/// one-line-per-run format (the workspace has no serde; the format is
/// ours, written by [`render_json`] below).
fn parse_runs(json: &str) -> Vec<BaselineRun> {
    let mut runs = Vec::new();
    for line in json.lines() {
        let Some(scale_label) = str_field(line, "scale") else {
            continue;
        };
        let (Some(shards), Some(sessions_per_s)) =
            (num_field(line, "shards"), num_field(line, "sessions_per_s"))
        else {
            continue;
        };
        runs.push(BaselineRun {
            scale_label,
            shards: shards as usize,
            sessions_per_s,
        });
    }
    runs
}

/// The value of `"key": <number>` in `line`, if present.
pub(crate) fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The value of `"key": "<string>"` in `line`, if present.
pub(crate) fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn render_json(seed: u64, runs: &[Run]) -> String {
    let mut s = String::new();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"perf_phase_accounting\",\n");
    s.push_str(&format!("  \"cpus\": {cpus},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"max_setup_share\": {MAX_SETUP_SHARE},\n  \"max_regression\": {MAX_REGRESSION},\n"
    ));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scale\": \"{}\", \"shards\": {}, \"sessions\": {}, \
             \"queries_logged\": {}, \"events\": {}, \"wall_s\": {:.3}, \
             \"sessions_per_s\": {:.1}, {}}}{}\n",
            r.scale_label,
            r.shards,
            r.sessions,
            r.queries,
            r.events,
            r.wall_s,
            r.sessions_per_s,
            super::phases_json(&r.phases),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parser_roundtrips_render() {
        let runs = vec![
            Run {
                scale_label: "2k",
                shards: 1,
                sessions: 2000,
                queries: 10,
                events: 20,
                wall_s: 1.0,
                sessions_per_s: 2000.0,
                phases: PhaseTimes::default(),
            },
            Run {
                scale_label: "20k",
                shards: 8,
                sessions: 20000,
                queries: 100,
                events: 200,
                wall_s: 10.0,
                sessions_per_s: 1987.5,
                phases: PhaseTimes::default(),
            },
        ];
        let json = render_json(2021, &runs);
        let parsed = parse_runs(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].scale_label, "2k");
        assert_eq!(parsed[0].shards, 1);
        assert!((parsed[0].sessions_per_s - 2000.0).abs() < 0.01);
        assert_eq!(parsed[1].scale_label, "20k");
        assert_eq!(parsed[1].shards, 8);
        assert!((parsed[1].sessions_per_s - 1987.5).abs() < 0.01);
    }

    #[test]
    fn field_extractors_handle_missing_keys() {
        assert_eq!(num_field("{\"a\": 3}", "b"), None);
        assert_eq!(str_field("{\"a\": 3}", "a"), None);
        assert_eq!(num_field("{\"a\": 3.5}", "a"), Some(3.5));
        assert_eq!(str_field("{\"a\": \"x\"}", "a"), Some("x".to_string()));
    }
}
