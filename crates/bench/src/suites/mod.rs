//! The performance suites behind the `bench-*` CLI subcommands:
//! campaign throughput ([`campaign`]), the chaos fault sweep
//! ([`chaos`]), the journal-overhead budget ([`resume`]) and the
//! hostile-payload sweep plus fuzz harness ([`hostile`]). Each bench
//! writes a hand-rolled JSON report (offline builds have no serde) to
//! `results/BENCH_*.json` or an explicit output path, and reports
//! progress through the unified `[mailval]` channel.

pub mod campaign;
pub mod chaos;
pub mod hostile;
pub mod resume;
