//! The performance suites behind the `bench-*` CLI subcommands:
//! campaign throughput ([`campaign`]), the chaos fault sweep
//! ([`chaos`]), the journal-overhead budget ([`resume`]), the
//! hostile-payload sweep plus fuzz harness ([`hostile`]), the
//! storage-fault sweep ([`io`]), the
//! phase-accounting perf gate ([`perf`]) and the telemetry overhead
//! gate plus trace exporter ([`trace`]). Each bench writes a
//! hand-rolled JSON report (offline builds have no serde) to
//! `results/BENCH_*.json` or an explicit output path, and reports
//! progress through the unified `[mailval]` channel.

use mailval_measure::campaign::PhaseTimes;

pub mod campaign;
pub mod chaos;
pub mod hostile;
pub mod io;
pub mod perf;
pub mod resume;
pub mod trace;

/// Render the shared `"phases": {...}` JSON fragment every suite
/// embeds in its per-run rows: the per-phase wall-clock breakdown that
/// separates simulator throughput from campaign setup (`wall_s` alone
/// silently conflates them).
pub(crate) fn phases_json(p: &PhaseTimes) -> String {
    format!(
        "\"phases\": {{\"setup_s\": {:.3}, \"simulate_s\": {:.3}, \
         \"merge_s\": {:.3}, \"persist_s\": {:.3}, \"setup_share\": {:.3}}}",
        p.setup_s,
        p.simulate_s,
        p.merge_s,
        p.persist_s,
        p.setup_share()
    )
}
