//! Journal-overhead suite: run the 2,000-domain NotifyEmail campaign
//! with journaling off (baseline), on at the default fsync interval,
//! and on across an fsync-interval sweep {1, 16, 64, 256}; record
//! wall-clock per configuration and the overhead relative to baseline,
//! as JSON to `results/BENCH_resume.json` or the given path.
//!
//! The robustness budget for the journal is **≤ 10% wall-clock
//! overhead at the default fsync interval**; the report carries a
//! `within_budget` flag per journaled run so regressions are visible
//! in the artifact itself.

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{run_campaign, sample_host_profiles, CampaignConfig, CampaignKind};
use mailval_measure::{journal, progress};
use std::time::Instant;

/// ~2,000 of the paper's 26,695 NotifyEmail domains.
const SCALE: f64 = 2_000.0 / 26_695.0;

/// The fsync-interval axis of the sweep (frames between `fdatasync`s).
const FSYNC_SWEEP: [u64; 4] = [1, 16, 64, 256];

/// Wall-clock overhead budget at the default fsync interval.
const OVERHEAD_BUDGET: f64 = 0.10;

/// Repetitions per configuration; the best wall-clock is reported so
/// scheduler noise on a ~5 s run does not masquerade as overhead.
const REPS: usize = 3;

struct Run {
    label: String,
    fsync_every: Option<u64>,
    sessions: usize,
    events: u64,
    wall_s: f64,
    sessions_per_s: f64,
    journal_bytes: u64,
    overhead: Option<f64>,
}

/// Run the suite, writing the JSON report to `out_path` (default
/// `results/BENCH_resume.json`).
pub fn run(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_resume.json".to_string());
    let seed = crate::seed();
    let shards = crate::shards();
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: SCALE,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    progress!(
        "bench-resume: NotifyEmail, {} domains / {} hosts, seed {seed}, {shards} shard(s)",
        pop.domains.len(),
        pop.hosts.len()
    );

    let journal_dir =
        std::env::temp_dir().join(format!("mailval-bench-resume-{}", std::process::id()));
    let base_config = CampaignConfig {
        kind: CampaignKind::NotifyEmail,
        tests: vec![],
        seed,
        probe_pause_ms: 0,
        shards,
        ..CampaignConfig::default()
    };

    let mut runs: Vec<Run> = Vec::new();

    // Baseline: journaling off.
    let baseline = time_run(&base_config, &pop, &profiles, "journal off", None, None);
    let baseline_wall = baseline.wall_s;
    runs.push(baseline);

    // Default interval first (the budgeted configuration), then the sweep.
    let mut intervals = vec![journal::DEFAULT_FSYNC_EVERY];
    intervals.extend(
        FSYNC_SWEEP
            .iter()
            .copied()
            .filter(|&n| n != journal::DEFAULT_FSYNC_EVERY),
    );
    for fsync_every in intervals {
        let mut config = base_config.clone();
        config.journal_dir = Some(journal_dir.clone());
        config.fsync_every = fsync_every;
        let label = if fsync_every == journal::DEFAULT_FSYNC_EVERY {
            format!("journal on, fsync every {fsync_every} (default)")
        } else {
            format!("journal on, fsync every {fsync_every}")
        };
        let mut run = time_run(
            &config,
            &pop,
            &profiles,
            &label,
            Some(fsync_every),
            Some(&journal_dir),
        );
        run.overhead = Some(run.wall_s / baseline_wall - 1.0);
        runs.push(run);
    }
    let _ = std::fs::remove_dir_all(&journal_dir);

    let default_run = runs
        .iter()
        .find(|r| r.fsync_every == Some(journal::DEFAULT_FSYNC_EVERY))
        .expect("default-interval run present");
    let default_overhead = default_run.overhead.unwrap_or(0.0);
    progress!(
        "bench-resume: default-interval overhead {:.1}% (budget {:.0}%): {}",
        default_overhead * 100.0,
        OVERHEAD_BUDGET * 100.0,
        if default_overhead <= OVERHEAD_BUDGET {
            "OK"
        } else {
            "OVER BUDGET"
        }
    );

    let json = render_json(&pop, seed, shards, &runs);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-resume: wrote {out_path}");
}

fn time_run(
    config: &CampaignConfig,
    pop: &Population,
    profiles: &[mailval_mta::profile::MtaProfile],
    label: &str,
    fsync_every: Option<u64>,
    journal_dir: Option<&std::path::Path>,
) -> Run {
    let mut wall_s = f64::INFINITY;
    let mut result = run_campaign(config, pop, profiles);
    for _ in 0..REPS {
        let start = Instant::now();
        result = run_campaign(config, pop, profiles);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
    }
    let journal_bytes = journal_dir.map_or(0, |dir| {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    });
    let run = Run {
        label: label.to_string(),
        fsync_every,
        sessions: result.sessions.len(),
        events: result.events,
        wall_s,
        sessions_per_s: result.sessions.len() as f64 / wall_s,
        journal_bytes,
        overhead: None,
    };
    progress!(
        "bench-resume: {label:<36} {:>7.3}s wall  {:>8.0} sessions/s  {} journal bytes",
        run.wall_s,
        run.sessions_per_s,
        run.journal_bytes
    );
    run
}

fn render_json(pop: &Population, seed: u64, shards: usize, runs: &[Run]) -> String {
    let mut s = String::new();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"journal_overhead\",\n");
    s.push_str(&format!("  \"cpus\": {cpus},\n"));
    s.push_str(&format!("  \"domains\": {},\n", pop.domains.len()));
    s.push_str(&format!("  \"hosts\": {},\n", pop.hosts.len()));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str(&format!(
        "  \"default_fsync_every\": {},\n",
        journal::DEFAULT_FSYNC_EVERY
    ));
    s.push_str(&format!("  \"overhead_budget\": {OVERHEAD_BUDGET},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let fsync = r.fsync_every.map_or("null".to_string(), |n| n.to_string());
        let overhead = r.overhead.map_or("null".to_string(), |o| format!("{o:.4}"));
        let within = r
            .overhead
            .map_or("null".to_string(), |o| (o <= OVERHEAD_BUDGET).to_string());
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"fsync_every\": {fsync}, \
             \"sessions\": {}, \"events\": {}, \"wall_s\": {:.3}, \
             \"sessions_per_s\": {:.1}, \"journal_bytes\": {}, \
             \"overhead\": {overhead}, \"within_budget\": {within}}}{}\n",
            r.label,
            r.sessions,
            r.events,
            r.wall_s,
            r.sessions_per_s,
            r.journal_bytes,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
