//! Fault-sweep suite: run the NotifyEmail campaign under the chaos
//! fault plan at datagram loss rates {0, 0.01, 0.05, 0.20} and record
//! throughput, the outcome mix (delivered / rejected / dead) and the
//! injected-fault counters, as JSON to `results/BENCH_chaos.json` or
//! the given path.
//!
//! Non-loss faults (duplication, reordering, truncation, connection
//! resets and stalls) stay fixed across the sweep so the loss axis is
//! the only variable.

use mailval_datasets::{DatasetKind, Population, PopulationConfig};
use mailval_measure::campaign::{
    run_campaign, sample_host_profiles, CampaignConfig, CampaignKind, PhaseTimes,
};
use mailval_measure::progress;
use mailval_simnet::{FaultConfig, FaultStats, LatencyModel};
use std::time::Instant;

/// ~1,000 of the paper's 26,695 NotifyEmail domains.
const SCALE: f64 = 1_000.0 / 26_695.0;

/// The loss axis of the sweep.
const LOSS_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

struct Run {
    loss: f64,
    sessions: usize,
    delivered: usize,
    rejected: usize,
    dead: usize,
    queries: usize,
    events: u64,
    wall_s: f64,
    sessions_per_s: f64,
    phases: PhaseTimes,
    faults: FaultStats,
}

/// Run the suite, writing the JSON report to `out_path` (default
/// `results/BENCH_chaos.json`).
pub fn run(out_path: Option<String>) {
    let out_path = out_path.unwrap_or_else(|| "results/BENCH_chaos.json".to_string());
    let seed = crate::seed();
    let shards = crate::shards();
    let pop = Population::generate(&PopulationConfig {
        kind: DatasetKind::NotifyEmail,
        scale: SCALE,
        seed,
    });
    let profiles = sample_host_profiles(&pop, seed);
    progress!(
        "bench-chaos: NotifyEmail, {} domains / {} hosts, seed {seed}, {shards} shard(s)",
        pop.domains.len(),
        pop.hosts.len()
    );

    let mut runs: Vec<Run> = Vec::new();
    for loss in LOSS_RATES {
        let latency = LatencyModel {
            loss_probability: loss,
            ..LatencyModel::default()
        };
        let config = CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: vec![],
            seed,
            probe_pause_ms: 0,
            latency,
            shards,
            faults: FaultConfig {
                duplicate_probability: 0.02,
                reorder_probability: 0.02,
                reorder_delay_ms: 40,
                truncate_probability: 0.02,
                conn_reset_probability: 0.01,
                conn_stall_probability: 0.02,
                conn_stall_ms: 200,
                seed,
                ..Default::default()
            },
            ..CampaignConfig::default()
        };
        let start = Instant::now();
        let result = run_campaign(&config, &pop, &profiles);
        let wall_s = start.elapsed().as_secs_f64();

        let delivered = result
            .sessions
            .iter()
            .filter(|s| s.delivery_time_ms.is_some())
            .count();
        let rejected = result
            .sessions
            .iter()
            .filter(|s| {
                s.delivery_time_ms.is_none()
                    && s.outcome.as_ref().is_some_and(|o| o.rejection.is_some())
            })
            .count();
        let dead = result.sessions.len() - delivered - rejected;
        let run = Run {
            loss,
            sessions: result.sessions.len(),
            delivered,
            rejected,
            dead,
            queries: result.log.records.len(),
            events: result.events,
            wall_s,
            sessions_per_s: result.sessions.len() as f64 / wall_s,
            phases: result.phases,
            faults: result.faults,
        };
        progress!(
            "bench-chaos: loss={:<4} {:>7.3}s wall  {:>8.0} sessions/s  \
             delivered {} / rejected {} / dead {}",
            run.loss,
            run.wall_s,
            run.sessions_per_s,
            run.delivered,
            run.rejected,
            run.dead
        );
        runs.push(run);
    }

    let json = render_json(&pop, seed, shards, &runs);
    std::fs::write(&out_path, &json).expect("write result file");
    progress!("bench-chaos: wrote {out_path}");
}

fn render_json(pop: &Population, seed: u64, shards: usize, runs: &[Run]) -> String {
    let mut s = String::new();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"chaos_fault_sweep\",\n");
    s.push_str(&format!("  \"cpus\": {cpus},\n"));
    s.push_str(&format!("  \"domains\": {},\n", pop.domains.len()));
    s.push_str(&format!("  \"hosts\": {},\n", pop.hosts.len()));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"shards\": {shards},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let f = &r.faults;
        s.push_str(&format!(
            "    {{\"loss\": {}, \"sessions\": {}, \"delivered\": {}, \
             \"rejected\": {}, \"dead\": {}, \"queries_logged\": {}, \
             \"events\": {}, \"wall_s\": {:.3}, \"sessions_per_s\": {:.1}, {}, \
             \"faults\": {{\"dns_dropped\": {}, \"dns_duplicated\": {}, \
             \"dns_delayed\": {}, \"dns_truncated\": {}, \"dns_timeouts\": {}, \
             \"conn_resets\": {}, \"conn_stalls\": {}, \"mta_stalls\": {}, \
             \"tempfails\": {}, \"client_retries\": {}, \
             \"contained_panics\": {}}}}}{}\n",
            r.loss,
            r.sessions,
            r.delivered,
            r.rejected,
            r.dead,
            r.queries,
            r.events,
            r.wall_s,
            r.sessions_per_s,
            super::phases_json(&r.phases),
            f.dns_dropped,
            f.dns_duplicated,
            f.dns_delayed,
            f.dns_truncated,
            f.dns_timeouts,
            f.conn_resets,
            f.conn_stalls,
            f.mta_stalls,
            f.tempfails,
            f.client_retries,
            f.contained_panics,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
