//! The unified artifact CLI: render any subset of the paper's tables
//! and figures from one process, simulating each needed campaign at
//! most once and serving everything else from the content-addressed
//! campaign store.
//!
//! ```text
//! mailval-artifacts table2 fig2          # two artifacts, shared store
//! mailval-artifacts --all                # the full suite
//! mailval-artifacts --list               # what exists
//! mailval-artifacts --store DIR table4   # explicit store directory
//! mailval-artifacts --no-store table4    # always simulate, never persist
//! mailval-artifacts bench-campaign [OUT] # performance suites
//! ```
//!
//! Artifact text goes to stdout; all progress (campaign content
//! hashes, store hit/miss, the final accounting line) goes to stderr
//! through the `[mailval]` channel.

use mailval_bench::artifacts::{by_name, Artifact, ALL};
use mailval_bench::{suites, CampaignRequest, Env, Runner};
use mailval_measure::progress;
use mailval_measure::store::CampaignStore;
use std::process::ExitCode;

const USAGE: &str = "\
usage: mailval-artifacts [OPTIONS] ARTIFACT...
       mailval-artifacts bench-campaign|bench-chaos|bench-resume|bench-hostile|bench-io|bench-perf [OUT.json]
       mailval-artifacts bench-perf-check [BASELINE.json]
       mailval-artifacts bench-trace [OUT.json]
       mailval-artifacts trace [--session N]... [--shard K/N] [--metrics] [--out FILE]
       mailval-artifacts fuzz [FRAMES]

Render the paper's tables and figures. Campaigns are simulated at most
once per store: results land in a content-addressed store and later
invocations (or later artifacts in the same invocation) reload them.

options:
  --all          render every artifact, in paper order
  --list         list artifact names and exit
  --store DIR    campaign store directory
                 (default: $MAILVAL_STORE, else results/store)
  --no-store     disable the store: always simulate, never persist
  -h, --help     this text

environment: MAILVAL_SCALE, MAILVAL_SEED, MAILVAL_SHARDS, MAILVAL_STORE";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Suite subcommands keep their old behavior (JSON reports).
    if let Some(first) = args.first() {
        let out = args.get(1).cloned();
        match first.as_str() {
            "bench-campaign" => {
                suites::campaign::run(out);
                return ExitCode::SUCCESS;
            }
            "bench-chaos" => {
                suites::chaos::run(out);
                return ExitCode::SUCCESS;
            }
            "bench-resume" => {
                suites::resume::run(out);
                return ExitCode::SUCCESS;
            }
            "bench-hostile" => {
                suites::hostile::run(out);
                return ExitCode::SUCCESS;
            }
            "bench-io" => {
                suites::io::run(out);
                return ExitCode::SUCCESS;
            }
            "bench-perf" => {
                suites::perf::run(out);
                return ExitCode::SUCCESS;
            }
            "bench-perf-check" => {
                // The perf gate: non-zero exit on setup-share or
                // throughput regression vs the committed baseline.
                return if suites::perf::check(out) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            "bench-trace" => {
                // The telemetry gate: non-zero exit on tracer overhead
                // or a traced-vs-untraced content-hash divergence.
                return if suites::trace::run(out) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            "trace" => {
                // Chrome trace-event / metrics JSON export.
                return if suites::trace::export(&args[1..]) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(2)
                };
            }
            "fuzz" => {
                suites::hostile::fuzz(out);
                return ExitCode::SUCCESS;
            }
            _ => {}
        }
    }

    let mut names: Vec<&'static str> = Vec::new();
    let mut all = false;
    let mut store_dir: Option<String> = None;
    let mut no_store = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for a in ALL {
                    println!("{:<12} {}", a.name, a.title);
                }
                return ExitCode::SUCCESS;
            }
            "--all" => all = true,
            "--no-store" => no_store = true,
            "--store" => match iter.next() {
                Some(dir) => store_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --store needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            name => match by_name(name) {
                Some(a) => names.push(a.name),
                None => {
                    eprintln!("error: unknown artifact '{name}' (try --list)");
                    return ExitCode::from(2);
                }
            },
        }
    }
    let selected: Vec<&'static Artifact> = if all {
        ALL.iter().collect()
    } else {
        names
            .iter()
            .map(|n| by_name(n).expect("validated"))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("error: no artifacts selected\n{USAGE}");
        return ExitCode::from(2);
    }

    let store = if no_store {
        None
    } else {
        let dir = store_dir
            .or_else(|| std::env::var("MAILVAL_STORE").ok())
            .unwrap_or_else(|| "results/store".to_string());
        Some(CampaignStore::new(dir))
    };
    let env = Env::from_env();
    progress!(
        "scale={} seed={} shards={} store={}",
        env.scale,
        env.seed,
        env.shards,
        store
            .as_ref()
            .map_or("off".to_string(), |s| s.root().display().to_string())
    );
    let mut runner = Runner::new(env, store);

    // Phase 1: resolve the union of campaign needs, first-use order, so
    // a batch like `fig2 table4 table5` runs NotifyEmail exactly once.
    let mut needed: Vec<CampaignRequest> = Vec::new();
    for a in &selected {
        for req in (a.needs)() {
            if !needed.contains(&req) {
                needed.push(req);
            }
        }
    }
    progress!(
        "{} artifact(s) selected, {} campaign(s) needed",
        selected.len(),
        needed.len()
    );
    for req in &needed {
        runner.campaign(req);
    }

    // Phase 2: render, all campaigns now memoized.
    for a in &selected {
        progress!("rendering {}", a.name);
        print!("{}", (a.render)(&mut runner));
    }
    progress!("{}", runner.summary());
    ExitCode::SUCCESS
}
