//! Reproduce the §7.3 behavior battery: HELO checking, syntax-error
//! tolerance, void-lookup limits, the forbidden mx fallback, multiple-
//! record handling, TCP fallback, IPv6-only retrieval and the per-mx
//! address-lookup limit.

use mailval_bench::{campaign, prepare};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::behavior_battery;
use mailval_measure::campaign::CampaignKind;
use mailval_measure::report::{pct, render_table};

fn main() {
    let prepared = prepare(DatasetKind::TwoWeekMx);
    let tests = vec![
        "t03", "t04", "t05", "t06", "t07", "t08", "t09", "t10", "t11",
    ];
    let result = campaign(&prepared, CampaignKind::TwoWeekMx, tests);
    let stats = behavior_battery(&result.log);

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.testid.to_string(),
                s.behavior.to_string(),
                pct(s.paper_fraction),
                format!("{} ({}/{})", pct(s.fraction()), s.exhibited, s.evaluated),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "§7.3 — SPF validation behaviors",
            &["test", "behavior", "paper", "measured"],
            &rows
        )
    );
}
