//! Reproduce Table 5: SPF-validating domains and MTAs in all three
//! experiments, the TwoWeekMX deciles, and the §6.2 NotifyEmail-vs-
//! NotifyMX consistency statistics.

use mailval_bench::{campaign, prepare};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::{
    consistency, decile_counts, notify_validating_counts, probe_validating_counts,
};
use mailval_measure::campaign::CampaignKind;
use mailval_measure::report::{count_pct, pct, render_table};

fn main() {
    // NotifyEmail + NotifyMX share one population and one profile set
    // (the §6.2 comparison depends on it).
    let mut notify = prepare(DatasetKind::NotifyEmail);
    let email_run = campaign(&notify, CampaignKind::NotifyEmail, vec![]);
    // A compact representative test set suffices for "issued at least
    // one SPF query" classification.
    let probe_tests = vec!["t01", "t06", "t12"];
    // Nine months pass between the campaigns (§4.2): a small fraction of
    // operators change configuration in the meantime.
    notify.profiles = mailval_measure::campaign::drift_profiles(
        &notify.pop,
        &notify.profiles,
        0.05,
        mailval_bench::seed(),
    );
    let mx_run = campaign(&notify, CampaignKind::NotifyMx, probe_tests.clone());

    let twoweek = prepare(DatasetKind::TwoWeekMx);
    let tw_run = campaign(&twoweek, CampaignKind::TwoWeekMx, probe_tests);

    let ne = notify_validating_counts(&email_run, &notify.pop);
    let nm = probe_validating_counts(&mx_run, &notify.pop);
    let tw = probe_validating_counts(&tw_run, &twoweek.pop);

    let mut rows = vec![
        vec![
            "NotifyEmail".into(),
            "22,703/26,695 (85%) dom; 15,323/18,851 (81%) MTA".into(),
            format!(
                "{} dom; {} MTA",
                count_pct(ne.validating_domains, ne.total_domains),
                count_pct(ne.validating_mtas, ne.total_mtas)
            ),
        ],
        vec![
            "NotifyMX".into(),
            "13,538/26,390 (51%) dom; 14,560/28,896 (50%) MTA".into(),
            format!(
                "{} dom; {} MTA",
                count_pct(nm.validating_domains, nm.total_domains),
                count_pct(nm.validating_mtas, nm.total_mtas)
            ),
        ],
        vec![
            "TwoWeekMX (all)".into(),
            "2,949/22,548 (13%) dom; 1,574/11,137 (14%) MTA".into(),
            format!(
                "{} dom; {} MTA",
                count_pct(tw.validating_domains, tw.total_domains),
                count_pct(tw.validating_mtas, tw.total_mtas)
            ),
        ],
    ];

    // Deciles (paper: 13% ± 1.7% domains, 17% ± 1.8% MTAs).
    let deciles = decile_counts(&tw_run, &twoweek.pop);
    for (i, d) in deciles.iter().enumerate() {
        rows.push(vec![
            format!("TwoWeekMX decile {}", i + 1),
            "≈13% dom; ≈17% MTA".into(),
            format!("{} dom; {} MTA", pct(d.domain_rate()), pct(d.mta_rate())),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 5 — SPF-validating domains and MTAs",
            &["experiment", "paper", "measured"],
            &rows
        )
    );

    // Decile variability.
    let dom_rates: Vec<f64> = deciles.iter().map(|d| d.domain_rate()).collect();
    let mta_rates: Vec<f64> = deciles.iter().map(|d| d.mta_rate()).collect();
    let stddev = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!(
        "decile stddev: paper 1.7% (domains) / 1.8% (MTAs); measured {} / {}\n",
        pct(stddev(&dom_rates)),
        pct(stddev(&mta_rates)),
    );

    // §6.2 consistency.
    let stats = consistency(&email_run, &mx_run, &notify.pop);
    println!(
        "{}",
        render_table(
            "§6.2 — NotifyEmail vs NotifyMX consistency",
            &["statistic", "paper", "measured"],
            &[
                vec![
                    "domains with inconsistent status".into(),
                    "15,316 (58% of common)".into(),
                    count_pct(stats.inconsistent, stats.common_domains),
                ],
                vec![
                    "of those, Email-validating only".into(),
                    "14,584 (95%)".into(),
                    count_pct(stats.email_only, stats.inconsistent.max(1)),
                ],
                vec![
                    "MTAs rejecting with 'spam'".into(),
                    "7,803 (27%)".into(),
                    count_pct(stats.spam_rejections, stats.probed_mtas),
                ],
                vec![
                    "MTAs rejecting citing a blacklist".into(),
                    "872 (3.0%)".into(),
                    count_pct(stats.blacklist_rejections, stats.probed_mtas),
                ],
            ]
        )
    );
}
