//! Reproduce Table 7: validation rates of NotifyEmail domains by Alexa
//! membership (all / top 1M / top 1K).

use mailval_bench::{campaign, prepare};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::{alexa_breakdown, notify_email_flags};
use mailval_measure::campaign::CampaignKind;
use mailval_measure::report::{count_pct, render_table};

fn main() {
    let prepared = prepare(DatasetKind::NotifyEmail);
    let result = campaign(&prepared, CampaignKind::NotifyEmail, vec![]);
    let flags = notify_email_flags(&result, prepared.pop.domains.len());
    let (all, top1m, top1k) = alexa_breakdown(&flags, &prepared.pop);

    let rows = vec![
        vec![
            "All domains".into(),
            format!("26,695 / {}", all.total),
            format!("82% / {}", count_pct(all.spf, all.total)),
            format!("82% / {}", count_pct(all.dkim, all.total)),
            format!("54% / {}", count_pct(all.dmarc, all.total)),
        ],
        vec![
            "In Alexa top 1M".into(),
            format!("2,953 / {}", top1m.total),
            format!("88% / {}", count_pct(top1m.spf, top1m.total)),
            format!("84% / {}", count_pct(top1m.dkim, top1m.total)),
            format!("67% / {}", count_pct(top1m.dmarc, top1m.total)),
        ],
        vec![
            "In Alexa top 1K".into(),
            format!("87 / {}", top1k.total),
            format!("93% / {}", count_pct(top1k.spf, top1k.total)),
            format!("90% / {}", count_pct(top1k.dkim, top1k.total)),
            format!("79% / {}", count_pct(top1k.dmarc, top1k.total)),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 7 — validation by Alexa membership (each cell: paper / measured)",
            &["subset", "domains", "SPF", "DKIM", "DMARC"],
            &rows
        )
    );
}
