//! Reproduce the §7.1 / Figure 3 result: serial vs parallel DNS lookups
//! during SPF validation, inferred from the order of queries induced by
//! test policy t01.

use mailval_bench::{campaign, prepare};
use mailval_datasets::DatasetKind;
use mailval_measure::analysis::serial_vs_parallel;
use mailval_measure::campaign::CampaignKind;
use mailval_measure::report::{count_pct, render_table};

fn main() {
    let prepared = prepare(DatasetKind::TwoWeekMx);
    let result = campaign(&prepared, CampaignKind::TwoWeekMx, vec!["t01"]);
    let sp = serial_vs_parallel(&result.log);

    println!(
        "{}",
        render_table(
            "Figure 3 / §7.1 — serial vs parallel SPF lookups",
            &["statistic", "paper", "measured"],
            &[
                vec![
                    "MTAs classified".into(),
                    "1,432".into(),
                    format!("{}", sp.classified),
                ],
                vec![
                    "serial (a-hint fetched after L3)".into(),
                    "1,392 (97%)".into(),
                    count_pct(sp.serial, sp.classified),
                ],
                vec![
                    "parallel (a-hint prefetched)".into(),
                    "40 (3%)".into(),
                    count_pct(sp.classified - sp.serial, sp.classified),
                ],
            ]
        )
    );
}
