//! Reproduce Table 6: SPF/DKIM/DMARC validation status of the 19
//! popular mail providers, observed by running the NotifyEmail pipeline
//! against the provider mini-population.

use mailval_bench::provider_population;
use mailval_datasets::providers::PROVIDERS;
use mailval_measure::analysis::notify_email_flags;
use mailval_measure::campaign::{run_campaign, CampaignConfig, CampaignKind};
use mailval_measure::report::render_table;
use mailval_simnet::LatencyModel;

fn main() {
    let (pop, profiles) = provider_population();
    let result = run_campaign(
        &CampaignConfig {
            kind: CampaignKind::NotifyEmail,
            tests: vec![],
            seed: mailval_bench::seed(),
            probe_pause_ms: 0,
            latency: LatencyModel::default(),
            shards: mailval_bench::shards(),
            faults: mailval_simnet::FaultConfig::default(),
            ..CampaignConfig::default()
        },
        &pop,
        &profiles,
    );
    let flags = notify_email_flags(&result, pop.domains.len());
    let mark = |b: bool| if b { "v" } else { "x" }.to_string();
    let rows: Vec<Vec<String>> = PROVIDERS
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let f = flags[i];
            vec![
                p.domain.to_string(),
                format!("{} {} {}", mark(p.spf), mark(p.dkim), mark(p.dmarc)),
                format!("{} {} {}", mark(f.spf), mark(f.dkim), mark(f.dmarc)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 6 — popular providers (SPF DKIM DMARC)",
            &["domain", "paper", "measured"],
            &rows
        )
    );
    let spf = flags.iter().filter(|f| f.spf).count();
    let full = flags.iter().filter(|f| f.spf && f.dkim && f.dmarc).count();
    println!("SPF-validating: paper 16/19 (84%), measured {spf}/19");
    println!("all three:      paper 13/19 (68%), measured {full}/19");
}
