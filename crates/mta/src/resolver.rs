//! The MTA-side recursive resolver actor.
//!
//! Wraps the sans-IO [`ResolverCore`] and adds what the simulation
//! needs: upstream-address selection (including the IPv4/IPv6 decision
//! that the paper's IPv6-only test policy exercises) and a qid-based
//! interface for the embedding MTA actor.

use mailval_dns::resolver::{Begin, Outgoing, ResolveOutcome, ResolverConfig, ResolverCore, Step};
use mailval_dns::rr::RecordType;
use mailval_dns::server::Transport;
use mailval_dns::Name;
use std::collections::HashMap;

/// A resolver-to-authoritative transmission the driver must deliver.
#[derive(Debug, Clone)]
pub struct UpstreamSend {
    /// Resolver-core lookup id.
    pub core_id: u16,
    /// Encoded DNS query.
    pub bytes: Vec<u8>,
    /// UDP or TCP.
    pub transport: Transport,
    /// Send over IPv6 (the v6-only zone is only reachable this way).
    pub via_ipv6: bool,
    /// Arm a timeout after this many ms.
    pub timeout_ms: u64,
}

/// What the actor tells its embedder after each input.
#[derive(Debug, Clone)]
pub enum ResolverEvent {
    /// Lookup `qid` finished.
    Finished {
        /// Caller-supplied id.
        qid: u64,
        /// The outcome.
        outcome: ResolveOutcome,
    },
    /// Transmit this upstream (and arm its timeout).
    Send(UpstreamSend),
    /// Nothing to do (stale input).
    Idle,
}

/// The resolver actor: one per simulated MTA.
pub struct ResolverActor {
    core: ResolverCore,
    ipv6_capable: bool,
    /// Label marking names served only on the IPv6 apparatus endpoint
    /// (the paper's IPv6-only test zone); `None` disables the
    /// special-casing.
    v6_only_marker: Option<String>,
    /// Maps in-flight resolver-core ids to caller qids.
    inflight: HashMap<u16, u64>,
    /// Lookups started through [`ResolverActor::resolve`].
    lookups: u64,
    /// Lookups answered synchronously from the core's cache.
    cache_hits: u64,
}

impl ResolverActor {
    /// Create an actor.
    pub fn new(config: ResolverConfig, ipv6_capable: bool, v6_only_marker: Option<String>) -> Self {
        ResolverActor {
            core: ResolverCore::new(config),
            ipv6_capable,
            v6_only_marker,
            inflight: HashMap::new(),
            lookups: 0,
            cache_hits: 0,
        }
    }

    /// Total upstream queries sent (diagnostics).
    pub fn upstream_queries(&self) -> u64 {
        self.core.upstream_queries
    }

    /// Lookups started through [`ResolverActor::resolve`] (diagnostics).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups answered synchronously from the resolver cache
    /// (diagnostics; the telemetry layer's cache hit-rate).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Drain the wire-decode errors recorded since the last call (the
    /// embedder classifies them as hostile input).
    pub fn take_wire_errors(&mut self) -> Vec<mailval_dns::WireError> {
        self.core.take_wire_errors()
    }

    fn needs_v6(&self, name: &Name) -> bool {
        self.v6_only_marker
            .as_ref()
            .is_some_and(|marker| name.labels().iter().any(|l| l == marker))
    }

    /// Start resolving. Returns one or two events (cache answer, or an
    /// upstream send; an unreachable v6-only name short-circuits to a
    /// timeout outcome without any packet, as in reality no route
    /// exists).
    pub fn resolve(
        &mut self,
        qid: u64,
        name: Name,
        rtype: RecordType,
        now_ms: u64,
    ) -> ResolverEvent {
        self.lookups += 1;
        if self.needs_v6(&name) && !self.ipv6_capable {
            // No AAAA-reachable server and no IPv6 route: the lookup can
            // never be sent. Resolvers surface this as a failure after
            // their timeout; we return it immediately (the embedding MTA
            // adds no observable DNS traffic either way).
            return ResolverEvent::Finished {
                qid,
                outcome: ResolveOutcome::Timeout,
            };
        }
        let via_ipv6 = self.needs_v6(&name) && self.ipv6_capable;
        match self.core.begin(name, rtype, now_ms) {
            Begin::Cached(outcome) => {
                self.cache_hits += 1;
                ResolverEvent::Finished { qid, outcome }
            }
            Begin::Send(outgoing) => {
                self.inflight.insert(outgoing.id, qid);
                ResolverEvent::Send(self.to_send(outgoing, via_ipv6))
            }
        }
    }

    fn to_send(&self, outgoing: Outgoing, via_ipv6: bool) -> UpstreamSend {
        UpstreamSend {
            core_id: outgoing.id,
            bytes: outgoing.bytes,
            transport: outgoing.transport,
            via_ipv6,
            timeout_ms: outgoing.timeout_ms,
        }
    }

    /// Feed an upstream response datagram.
    pub fn on_upstream_response(
        &mut self,
        core_id: u16,
        bytes: &[u8],
        via_ipv6: bool,
        now_ms: u64,
    ) -> ResolverEvent {
        let Some(&qid) = self.inflight.get(&core_id) else {
            return ResolverEvent::Idle;
        };
        match self.core.on_response(core_id, bytes, now_ms) {
            Step::Done(outcome) => {
                self.inflight.remove(&core_id);
                ResolverEvent::Finished { qid, outcome }
            }
            Step::Continue(outgoing) => {
                self.inflight.remove(&core_id);
                self.inflight.insert(outgoing.id, qid);
                ResolverEvent::Send(self.to_send(outgoing, via_ipv6))
            }
            Step::Ignored => ResolverEvent::Idle,
        }
    }

    /// A previously armed timeout fired.
    pub fn on_timeout(&mut self, core_id: u16, via_ipv6: bool, now_ms: u64) -> ResolverEvent {
        let Some(&qid) = self.inflight.get(&core_id) else {
            return ResolverEvent::Idle;
        };
        match self.core.on_timeout(core_id, now_ms) {
            Step::Done(outcome) => {
                self.inflight.remove(&core_id);
                ResolverEvent::Finished { qid, outcome }
            }
            Step::Continue(outgoing) => ResolverEvent::Send(self.to_send(outgoing, via_ipv6)),
            Step::Ignored => ResolverEvent::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_dns::message::Message;
    use mailval_dns::rr::RData;
    use mailval_dns::wire::Rcode;
    use mailval_dns::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn answer(send: &UpstreamSend, ip: [u8; 4]) -> Vec<u8> {
        let q = Message::from_bytes(&send.bytes).unwrap();
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers = vec![Record::new(
            q.question().unwrap().name.clone(),
            60,
            RData::A(ip.into()),
        )];
        r.to_bytes()
    }

    #[test]
    fn resolve_roundtrip() {
        let mut actor = ResolverActor::new(ResolverConfig::default(), true, None);
        let ResolverEvent::Send(send) = actor.resolve(99, n("a.test"), RecordType::A, 0) else {
            panic!()
        };
        assert!(!send.via_ipv6);
        let resp = answer(&send, [192, 0, 2, 1]);
        match actor.on_upstream_response(send.core_id, &resp, false, 10) {
            ResolverEvent::Finished { qid, outcome } => {
                assert_eq!(qid, 99);
                assert!(matches!(outcome, ResolveOutcome::Records(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn v6_only_zone_unreachable_for_v4_resolver() {
        let mut actor =
            ResolverActor::new(ResolverConfig::default(), false, Some("v6only".to_string()));
        match actor.resolve(1, n("l1.v6only.t10.m1.spf.test"), RecordType::Txt, 0) {
            ResolverEvent::Finished { outcome, .. } => {
                assert_eq!(outcome, ResolveOutcome::Timeout);
            }
            other => panic!("{other:?}"),
        }
        // Names outside the v6-only zone still work.
        assert!(matches!(
            actor.resolve(2, n("x.spf.test"), RecordType::Txt, 0),
            ResolverEvent::Send(_)
        ));
    }

    #[test]
    fn v6_capable_resolver_routes_via_v6() {
        let mut actor =
            ResolverActor::new(ResolverConfig::default(), true, Some("v6only".to_string()));
        match actor.resolve(1, n("l1.v6only.t10.m1.spf.test"), RecordType::Txt, 0) {
            ResolverEvent::Send(send) => assert!(send.via_ipv6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_retry_then_finish() {
        let mut actor = ResolverActor::new(ResolverConfig::default(), true, None);
        let ResolverEvent::Send(send) = actor.resolve(5, n("slow.test"), RecordType::A, 0) else {
            panic!()
        };
        // First timeout retries.
        match actor.on_timeout(send.core_id, false, 3_000) {
            ResolverEvent::Send(retry) => {
                // Second timeout finishes.
                match actor.on_timeout(retry.core_id, false, 6_000) {
                    ResolverEvent::Finished { qid, outcome } => {
                        assert_eq!(qid, 5);
                        assert_eq!(outcome, ResolveOutcome::Timeout);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_inputs_ignored() {
        let mut actor = ResolverActor::new(ResolverConfig::default(), true, None);
        assert!(matches!(
            actor.on_upstream_response(42, &[0, 0], false, 0),
            ResolverEvent::Idle
        ));
        assert!(matches!(
            actor.on_timeout(42, false, 0),
            ResolverEvent::Idle
        ));
    }
}
