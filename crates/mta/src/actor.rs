//! The receiving-MTA actor: an SMTP session wired to the SPF/DKIM/DMARC
//! evaluators through a per-MTA resolver, with a behavior profile's
//! deviations applied.
//!
//! The actor is pure message-in/message-out: the embedding event loop
//! feeds it SMTP lines, completed DNS resolutions and timer expiries,
//! and receives SMTP reply text, resolution requests and timer arms.
//! All the *observable* behavior the paper measures — which DNS queries
//! reach the apparatus, when, and in what order — emerges from this
//! actor running the real protocol stacks.

use crate::profile::{MtaProfile, SpfTrigger};
use mailval_dkim::verify::{DkimVerifier, VerifyStep};
use mailval_dkim::DkimResult;
use mailval_dmarc::eval::{AuthResults, DmarcEvaluator, DmarcStep};
use mailval_dns::resolver::ResolveOutcome;
use mailval_dns::rr::RecordType;
use mailval_dns::Name;
use mailval_smtp::mail::MailMessage;
use mailval_smtp::reply::Reply;
use mailval_smtp::server::{Action, Decision, PolicyQuery, Session};
use mailval_spf::{EvalParams, EvalStep, SpfEvaluation, SpfEvaluator, SpfResult};
use std::collections::HashMap;
use std::net::IpAddr;

/// Per-connection context supplied by the driver.
#[derive(Debug, Clone)]
pub struct ConnContext {
    /// The connecting client's IP (the identity SPF validates).
    pub client_ip: IpAddr,
    /// Whether the client's address is on DNSBLs at connect time — the
    /// probe client earned listings during the NotifyMX campaign (§6.2).
    pub client_blacklisted: bool,
    /// Whether the session's recipients are guesses (TwoWeekMX, §6.3):
    /// MTAs with `validates_guessed_recipient == false` skip sender
    /// validation for such sessions.
    pub recipients_guessed: bool,
}

/// Inputs to the actor.
#[derive(Debug, Clone)]
pub enum MtaInput {
    /// TCP established: emit the greeting.
    Connected,
    /// One SMTP line from the client (CRLF stripped).
    Line(String),
    /// A resolution requested via [`MtaOutput::Resolve`] completed.
    DnsFinished {
        /// The request id.
        qid: u64,
        /// The outcome.
        outcome: ResolveOutcome,
    },
    /// A timer armed via [`MtaOutput::SetTimer`] fired.
    Timer {
        /// The token.
        token: u64,
    },
    /// The client disconnected.
    Disconnected,
}

/// Notable milestones the driver records (timestamps for Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtaEvent {
    /// A message was accepted for delivery (the 250 after DATA content).
    MessageAccepted,
    /// An SPF evaluation concluded.
    SpfConcluded(SpfResult),
    /// DNS lookups the concluded SPF evaluation completed (per-policy
    /// lookup depth; emitted alongside [`MtaEvent::SpfConcluded`] for
    /// MAIL FROM evaluations).
    SpfLookups(u32),
    /// An SPF evaluation tripped a hostile-policy guard (include or
    /// redirect cycle, or lookup-budget exhaustion). Emitted alongside
    /// [`MtaEvent::SpfConcluded`] so the driver can classify the input.
    SpfHostile {
        /// An include/redirect cycle was detected and broken.
        cycle_detected: bool,
        /// A DNS-term or void-lookup budget was exhausted.
        lookups_exhausted: bool,
    },
    /// A DKIM verification concluded.
    DkimConcluded(bool),
    /// A DMARC evaluation concluded (pass?).
    DmarcConcluded(bool),
    /// The MTA issued a 451 tempfail (greylisting).
    TempFailed,
}

/// Outputs from the actor.
#[derive(Debug, Clone)]
pub enum MtaOutput {
    /// SMTP reply text to transmit (includes CRLFs).
    Smtp(String),
    /// Ask the MTA's resolver to resolve this; report back with
    /// [`MtaInput::DnsFinished`].
    Resolve {
        /// Request id (unique per connection).
        qid: u64,
        /// Name to resolve.
        name: Name,
        /// Record type.
        rtype: RecordType,
    },
    /// Arm a timer.
    SetTimer {
        /// Token to return in [`MtaInput::Timer`].
        token: u64,
        /// Delay, ms.
        delay_ms: u64,
    },
    /// Close the connection.
    Close,
    /// The MTA stalls: delay delivery of every output that follows in
    /// this batch by `delay_ms` (a flaky, overloaded implementation).
    Stall {
        /// Extra delay, ms.
        delay_ms: u64,
    },
    /// A milestone for the driver's logs.
    Event(MtaEvent),
}

/// What validation work is in flight.
enum Work {
    /// SPF evaluation (HELO identity or MAIL FROM domain).
    Spf {
        evaluator: Box<SpfEvaluator>,
        outstanding: HashMap<u64, mailval_spf::DnsQuestion>,
        /// Completed lookups so far (for the §6.1 partial validators).
        completed: u32,
        /// Is this the HELO-identity check (result always ignored)?
        helo_check: bool,
    },
    /// DKIM key fetch + verification.
    Dkim {
        verifier: Box<DkimVerifier>,
        qid: u64,
    },
    /// DMARC discovery.
    Dmarc {
        evaluator: Box<DmarcEvaluator>,
        qid: u64,
    },
    /// Waiting out the accept-latency timer before the final 250.
    AcceptDelay,
}

/// Queued work items that run sequentially before the pending SMTP
/// decision is answered. (SPF evaluations start eagerly and are never
/// queued behind other work.)
enum QueuedWork {
    Dkim,
    Dmarc,
    AcceptDelay,
}

const TIMER_ACCEPT: u64 = 1;
const TIMER_POST_DELIVERY: u64 = 2;

/// The receiving-MTA actor.
pub struct MtaActor {
    profile: MtaProfile,
    ctx: ConnContext,
    session: Session,
    next_qid: u64,
    current: Option<Work>,
    queue: Vec<QueuedWork>,
    /// The SMTP decision owed once the queue drains.
    owed_decision: Option<Decision>,
    /// Sender validation bypassed for this session (postmaster
    /// whitelisting, §6.3).
    bypassed: bool,
    spf_done: bool,
    spf_result: Option<SpfResult>,
    dkim_results: Vec<(Name, bool)>,
    message: Option<MailMessage>,
    mail_from_domain: Option<Name>,
    mail_from_local: Option<String>,
    closed: bool,
    /// Greylisting state: the next RCPT gets a 451 (armed from
    /// `profile.greylists`, cleared once spent so the retried
    /// transaction goes through).
    greylist_pending: bool,
}

impl MtaActor {
    /// Create an actor for one connection.
    pub fn new(hostname: &str, profile: MtaProfile, ctx: ConnContext) -> MtaActor {
        let greylist_pending = profile.greylists;
        MtaActor {
            profile,
            ctx,
            session: Session::new(hostname),
            next_qid: 1,
            current: None,
            queue: Vec::new(),
            owed_decision: None,
            bypassed: false,
            spf_done: false,
            spf_result: None,
            dkim_results: Vec::new(),
            message: None,
            mail_from_domain: None,
            mail_from_local: None,
            closed: false,
            greylist_pending,
        }
    }

    /// The behavior profile.
    pub fn profile(&self) -> &MtaProfile {
        &self.profile
    }

    fn qid(&mut self) -> u64 {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    /// Feed an input; collect outputs.
    ///
    /// A closed connection stops SMTP traffic, but DNS completions and
    /// timers keep flowing: post-delivery validation (§6.2) is offline
    /// processing that outlives the TCP session.
    pub fn handle(&mut self, input: MtaInput) -> Vec<MtaOutput> {
        if self.closed && matches!(input, MtaInput::Connected | MtaInput::Line(_)) {
            return Vec::new();
        }
        let mut out = Vec::new();
        match input {
            MtaInput::Connected => {
                out.push(MtaOutput::Smtp(self.session.greeting().to_wire()));
            }
            MtaInput::Line(line) => {
                let action = self.session.on_line(&line);
                self.apply_action(action, &mut out);
            }
            MtaInput::DnsFinished { qid, outcome } => {
                self.on_dns(qid, outcome, &mut out);
            }
            MtaInput::Timer { token } => {
                self.on_timer(token, &mut out);
            }
            MtaInput::Disconnected => {
                self.closed = true;
            }
        }
        out
    }

    fn apply_action(&mut self, action: Action, out: &mut Vec<MtaOutput>) {
        match action {
            Action::Reply(r) => out.push(MtaOutput::Smtp(r.to_wire())),
            Action::ReplyAndClose(r) => {
                out.push(MtaOutput::Smtp(r.to_wire()));
                out.push(MtaOutput::Close);
                self.closed = true;
            }
            Action::None => {}
            Action::Ask(query) => self.on_policy(query, out),
        }
    }

    fn on_policy(&mut self, query: PolicyQuery, out: &mut Vec<MtaOutput>) {
        match query {
            PolicyQuery::Helo { ref identity, .. } => {
                let helo_suppressed = (self.ctx.recipients_guessed
                    && !self.profile.validates_guessed_recipient)
                    // HELO checking is a connect-time filter of MTAs that
                    // validate in real time at MAIL (§7.3: every observed
                    // HELO checker proceeded to the MAIL policy lookup).
                    || self.profile.spf_trigger != SpfTrigger::AtMail;
                if self.profile.checks_helo && self.profile.combo.spf && !helo_suppressed {
                    if let Ok(domain) = Name::parse(identity) {
                        if !domain.is_root() {
                            // §7.3: check the HELO identity's policy. All
                            // observed MTAs ignored the verdict, so the
                            // decision is Accept either way.
                            self.owed_decision = Some(Decision::Accept);
                            self.start_helo_spf(domain, out);
                            return;
                        }
                    }
                }
                let reply = self.session.on_decision(Decision::Accept);
                out.push(MtaOutput::Smtp(reply.to_wire()));
            }
            PolicyQuery::Mail { ref from } => {
                if self.profile.poison {
                    panic!("poisoned MTA profile: injected crash at MAIL");
                }
                if self.profile.stall_at_mail_ms > 0 {
                    out.push(MtaOutput::Stall {
                        delay_ms: self.profile.stall_at_mail_ms,
                    });
                }
                if self.ctx.client_blacklisted && self.profile.rejects_spam {
                    let reply = self.session.on_decision(Decision::Reject(Reply::new(
                        554,
                        "5.7.1 Rejected: sender address triggered spam filters",
                    )));
                    out.push(MtaOutput::Smtp(reply.to_wire()));
                    return;
                }
                if self.ctx.client_blacklisted && self.profile.rejects_blacklist {
                    // DNSBL operators slam the connection after the 554
                    // (§6.2): reply, then a server-initiated close the
                    // driver must propagate to the probe client.
                    let reply = self
                        .session
                        .on_decision(Decision::RejectAndClose(Reply::new(
                            554,
                            "5.7.1 Client host found on blacklist (DNSBL)",
                        )));
                    out.push(MtaOutput::Smtp(reply.to_wire()));
                    out.push(MtaOutput::Close);
                    self.closed = true;
                    return;
                }
                if let Some(addr) = from {
                    self.mail_from_domain = Some(addr.domain.clone());
                    self.mail_from_local = Some(addr.local.clone());
                }
                if self.should_run_spf(SpfTrigger::AtMail) && from.is_some() {
                    self.owed_decision = Some(Decision::Accept);
                    self.start_mail_spf(out);
                    return;
                }
                let reply = self.session.on_decision(Decision::Accept);
                out.push(MtaOutput::Smtp(reply.to_wire()));
            }
            PolicyQuery::Rcpt { ref to } => {
                if self.greylist_pending {
                    // Greylisting tempfails the first RCPT of an unknown
                    // sender regardless of whether the mailbox exists;
                    // the retried transaction passes.
                    self.greylist_pending = false;
                    let reply = self.session.on_decision(Decision::TempFail(Reply::new(
                        451,
                        "4.7.1 Greylisted: please try again later",
                    )));
                    out.push(MtaOutput::Smtp(reply.to_wire()));
                    out.push(MtaOutput::Event(MtaEvent::TempFailed));
                    return;
                }
                let local = to.local.to_ascii_lowercase();
                let accepted = if !self.ctx.recipients_guessed
                    && !matches!(
                        local.as_str(),
                        "michael" | "john.smith" | "support" | "postmaster"
                    ) {
                    // A real address (NotifyEmail/NotifyMX recipients come
                    // from the notification list, which is defined by
                    // accepted deliveries).
                    true
                } else if self.profile.rejects_all_recipients {
                    false
                } else if local == "postmaster" {
                    true
                } else {
                    self.profile.accepted_username == Some(local.as_str())
                };
                if !accepted {
                    let reply = self
                        .session
                        .on_decision(Decision::Reject(Reply::no_such_user(&to.local)));
                    out.push(MtaOutput::Smtp(reply.to_wire()));
                    return;
                }
                let first_rcpt = self.session.rcpt_to.is_empty();
                if local == "postmaster" && self.profile.postmaster_bypass {
                    // §6.3 whitelisting: skip sender validation entirely.
                    self.bypassed = true;
                }
                if first_rcpt && !self.bypassed && self.should_run_spf(SpfTrigger::AtRcpt) {
                    self.owed_decision = Some(Decision::Accept);
                    self.start_mail_spf(out);
                    return;
                }
                let reply = self.session.on_decision(Decision::Accept);
                out.push(MtaOutput::Smtp(reply.to_wire()));
            }
            PolicyQuery::Data => {
                if !self.bypassed && self.should_run_spf(SpfTrigger::AtData) {
                    self.owed_decision = Some(Decision::Accept);
                    self.start_mail_spf(out);
                    return;
                }
                let reply = self.session.on_decision(Decision::Accept);
                out.push(MtaOutput::Smtp(reply.to_wire()));
            }
            PolicyQuery::Message { ref raw } => {
                self.message = MailMessage::parse(raw).ok();
                self.owed_decision = Some(Decision::Accept);
                if !self.bypassed && self.profile.combo.dkim && self.message.is_some() {
                    self.queue.push(QueuedWork::Dkim);
                }
                if !self.bypassed && self.profile.combo.dmarc && self.message.is_some() {
                    self.queue.push(QueuedWork::Dmarc);
                }
                self.queue.push(QueuedWork::AcceptDelay);
                self.advance_queue(out);
            }
        }
    }

    fn should_run_spf(&self, at: SpfTrigger) -> bool {
        self.profile.combo.spf
            && !self.spf_done
            && self.profile.spf_trigger == at
            && self.mail_from_domain.is_some()
            && (!self.ctx.recipients_guessed || self.profile.validates_guessed_recipient)
    }

    /// Pop and start the next queued work item; when the queue is empty,
    /// answer the owed SMTP decision.
    fn advance_queue(&mut self, out: &mut Vec<MtaOutput>) {
        if self.current.is_some() {
            return;
        }
        match self.queue.first() {
            None => {
                if let Some(decision) = self.owed_decision.take() {
                    let was_message = matches!(
                        self.session.state(),
                        mailval_smtp::server::SessionState::AwaitingDecision
                    );
                    let reply = self.session.on_decision(decision);
                    let accepted_message =
                        was_message && reply.code == 250 && self.message.is_some();
                    out.push(MtaOutput::Smtp(reply.to_wire()));
                    if accepted_message {
                        out.push(MtaOutput::Event(MtaEvent::MessageAccepted));
                        // Post-delivery SPF validation (§6.2's 17%).
                        if self.should_run_spf(SpfTrigger::AfterDelivery) && !self.bypassed {
                            out.push(MtaOutput::SetTimer {
                                token: TIMER_POST_DELIVERY,
                                delay_ms: self.profile.post_delivery_delay_ms,
                            });
                        }
                        self.message = None;
                    }
                }
            }
            Some(QueuedWork::AcceptDelay) => {
                self.queue.remove(0);
                self.current = Some(Work::AcceptDelay);
                out.push(MtaOutput::SetTimer {
                    token: TIMER_ACCEPT,
                    delay_ms: self.profile.accept_latency_ms,
                });
            }
            Some(QueuedWork::Dkim) => {
                self.queue.remove(0);
                self.start_dkim(out);
            }
            Some(QueuedWork::Dmarc) => {
                self.queue.remove(0);
                self.start_dmarc(out);
            }
        }
    }

    // --- SPF ---------------------------------------------------------

    fn start_helo_spf(&mut self, domain: Name, out: &mut Vec<MtaOutput>) {
        let params = EvalParams {
            ip: self.ctx.client_ip,
            domain: domain.clone(),
            sender_local: "postmaster".into(),
            sender_domain: domain,
            helo: self.session.helo_identity.clone().unwrap_or_default(),
        };
        let mut evaluator = Box::new(SpfEvaluator::new(params, self.profile.spf_behavior.clone()));
        let step = evaluator.start();
        self.install_spf(evaluator, step, true, out);
    }

    fn start_mail_spf(&mut self, out: &mut Vec<MtaOutput>) {
        let domain = self.mail_from_domain.clone().expect("mail from domain set");
        let params = EvalParams {
            ip: self.ctx.client_ip,
            domain: domain.clone(),
            sender_local: self
                .mail_from_local
                .clone()
                .unwrap_or_else(|| "postmaster".into()),
            sender_domain: domain,
            helo: self.session.helo_identity.clone().unwrap_or_default(),
        };
        let mut evaluator = Box::new(SpfEvaluator::new(params, self.profile.spf_behavior.clone()));
        let step = evaluator.start();
        self.spf_done = true; // one MAIL-identity evaluation per session
        self.install_spf(evaluator, step, false, out);
    }

    fn install_spf(
        &mut self,
        evaluator: Box<SpfEvaluator>,
        step: EvalStep,
        helo_check: bool,
        out: &mut Vec<MtaOutput>,
    ) {
        match step {
            EvalStep::Done(done) => {
                push_spf_hostile(&done, out);
                if !helo_check {
                    self.spf_result = Some(done.result);
                    out.push(MtaOutput::Event(MtaEvent::SpfConcluded(done.result)));
                    out.push(MtaOutput::Event(MtaEvent::SpfLookups(0)));
                }
                self.advance_queue(out);
            }
            EvalStep::NeedLookups(questions) => {
                let mut outstanding = HashMap::new();
                for q in questions {
                    let qid = self.qid();
                    out.push(MtaOutput::Resolve {
                        qid,
                        name: q.name.clone(),
                        rtype: q.rtype,
                    });
                    outstanding.insert(qid, q);
                }
                self.current = Some(Work::Spf {
                    evaluator,
                    outstanding,
                    completed: 0,
                    helo_check,
                });
            }
        }
    }

    fn start_dkim(&mut self, out: &mut Vec<MtaOutput>) {
        let message = self.message.as_ref().expect("message present");
        let mut verifier = Box::new(DkimVerifier::new(message, 0));
        match verifier.start() {
            VerifyStep::Done(result) => {
                self.record_dkim(result, out);
                self.advance_queue(out);
            }
            VerifyStep::NeedKey { name, rtype } => {
                let qid = self.qid();
                out.push(MtaOutput::Resolve { qid, name, rtype });
                self.current = Some(Work::Dkim { verifier, qid });
            }
        }
    }

    fn record_dkim(&mut self, result: DkimResult, out: &mut Vec<MtaOutput>) {
        let passed = result == DkimResult::Pass;
        out.push(MtaOutput::Event(MtaEvent::DkimConcluded(passed)));
        // Record the signing domain for DMARC alignment.
        if let Some(message) = &self.message {
            let mut v = DkimVerifier::new(message, 0);
            if let VerifyStep::NeedKey { .. } = v.start() {
                if let Some(sig) = v.signature() {
                    self.dkim_results.push((sig.domain.clone(), passed));
                }
            }
        }
    }

    fn start_dmarc(&mut self, out: &mut Vec<MtaOutput>) {
        let Some(from_domain) = self.header_from_domain() else {
            self.advance_queue(out);
            return;
        };
        let auth = AuthResults {
            from_domain,
            spf_result: self.spf_result.unwrap_or(SpfResult::None),
            spf_domain: self.mail_from_domain.clone(),
            dkim: self.dkim_results.clone(),
        };
        let pct_roll = (self.profile.accept_latency_ms % 100) as u8;
        let mut evaluator = Box::new(DmarcEvaluator::new(auth, pct_roll));
        match evaluator.start() {
            DmarcStep::Done(verdict) => {
                out.push(MtaOutput::Event(MtaEvent::DmarcConcluded(verdict.pass)));
                self.advance_queue(out);
            }
            DmarcStep::NeedLookup { name, rtype } => {
                let qid = self.qid();
                out.push(MtaOutput::Resolve { qid, name, rtype });
                self.current = Some(Work::Dmarc { evaluator, qid });
            }
        }
    }

    fn header_from_domain(&self) -> Option<Name> {
        let message = self.message.as_ref()?;
        let from = message.header("From")?.value();
        // Extract the addr-spec: inside <...> if present, else the token
        // containing '@'.
        let addr = match (from.find('<'), from.find('>')) {
            (Some(lt), Some(gt)) if gt > lt => from[lt + 1..gt].to_string(),
            _ => from
                .split_whitespace()
                .find(|tok| tok.contains('@'))?
                .to_string(),
        };
        let (_, domain) = addr.rsplit_once('@')?;
        Name::parse(domain.trim()).ok()
    }

    // --- DNS completions ----------------------------------------------

    fn on_dns(&mut self, qid: u64, outcome: ResolveOutcome, out: &mut Vec<MtaOutput>) {
        match self.current.take() {
            Some(Work::Spf {
                mut evaluator,
                mut outstanding,
                mut completed,
                helo_check,
            }) => {
                let Some(question) = outstanding.remove(&qid) else {
                    self.current = Some(Work::Spf {
                        evaluator,
                        outstanding,
                        completed,
                        helo_check,
                    });
                    return;
                };
                completed += 1;
                // §6.1 partial validators: fetch the policy TXT, never
                // follow up.
                if self.profile.spf_unfinished && completed >= 1 && !helo_check {
                    self.spf_result = Some(SpfResult::None);
                    out.push(MtaOutput::Event(MtaEvent::SpfConcluded(SpfResult::None)));
                    out.push(MtaOutput::Event(MtaEvent::SpfLookups(completed)));
                    self.advance_queue(out);
                    return;
                }
                match evaluator.resume(vec![(question, outcome)]) {
                    EvalStep::Done(done) => {
                        push_spf_hostile(&done, out);
                        if !helo_check {
                            self.spf_result = Some(done.result);
                            out.push(MtaOutput::Event(MtaEvent::SpfConcluded(done.result)));
                            out.push(MtaOutput::Event(MtaEvent::SpfLookups(completed)));
                        }
                        self.advance_queue(out);
                    }
                    EvalStep::NeedLookups(questions) => {
                        for q in questions {
                            let new_qid = self.qid();
                            out.push(MtaOutput::Resolve {
                                qid: new_qid,
                                name: q.name.clone(),
                                rtype: q.rtype,
                            });
                            outstanding.insert(new_qid, q);
                        }
                        if outstanding.is_empty() {
                            // Evaluator stalled without questions: treat
                            // as concluded (defensive; should not happen).
                            self.advance_queue(out);
                        } else {
                            self.current = Some(Work::Spf {
                                evaluator,
                                outstanding,
                                completed,
                                helo_check,
                            });
                        }
                    }
                }
            }
            Some(Work::Dkim {
                mut verifier,
                qid: expect,
            }) => {
                if qid != expect {
                    self.current = Some(Work::Dkim {
                        verifier,
                        qid: expect,
                    });
                    return;
                }
                match verifier.on_key(outcome) {
                    VerifyStep::Done(result) => {
                        self.record_dkim(result, out);
                        self.advance_queue(out);
                    }
                    VerifyStep::NeedKey { .. } => unreachable!("single key fetch"),
                }
            }
            Some(Work::Dmarc {
                mut evaluator,
                qid: expect,
            }) => {
                if qid != expect {
                    self.current = Some(Work::Dmarc {
                        evaluator,
                        qid: expect,
                    });
                    return;
                }
                match evaluator.on_answer(outcome) {
                    DmarcStep::Done(verdict) => {
                        out.push(MtaOutput::Event(MtaEvent::DmarcConcluded(verdict.pass)));
                        self.advance_queue(out);
                    }
                    DmarcStep::NeedLookup { name, rtype } => {
                        let new_qid = self.qid();
                        out.push(MtaOutput::Resolve {
                            qid: new_qid,
                            name,
                            rtype,
                        });
                        self.current = Some(Work::Dmarc {
                            evaluator,
                            qid: new_qid,
                        });
                    }
                }
            }
            Some(other) => {
                self.current = Some(other);
            }
            None => {}
        }
    }

    fn on_timer(&mut self, token: u64, out: &mut Vec<MtaOutput>) {
        match token {
            TIMER_ACCEPT => {
                if matches!(self.current, Some(Work::AcceptDelay)) {
                    self.current = None;
                    self.advance_queue(out);
                }
            }
            TIMER_POST_DELIVERY if self.current.is_none() && self.mail_from_domain.is_some() => {
                self.start_mail_spf(out);
            }
            _ => {}
        }
    }
}

/// Surface an evaluation's hostile-policy flags as a driver event (both
/// HELO- and MAIL-identity checks: a malicious policy is hostile input
/// regardless of which identity tripped it).
fn push_spf_hostile(done: &SpfEvaluation, out: &mut Vec<MtaOutput>) {
    if done.cycle_detected || done.lookups_exhausted {
        out.push(MtaOutput::Event(MtaEvent::SpfHostile {
            cycle_detected: done.cycle_detected,
            lookups_exhausted: done.lookups_exhausted,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_spf::SpfResult as SR;

    fn ctx() -> ConnContext {
        ConnContext {
            client_ip: "192.0.2.77".parse().unwrap(),
            client_blacklisted: false,
            recipients_guessed: false,
        }
    }

    fn drive_line(actor: &mut MtaActor, line: &str) -> Vec<MtaOutput> {
        actor.handle(MtaInput::Line(line.to_string()))
    }

    fn first_smtp(outputs: &[MtaOutput]) -> Option<&str> {
        outputs.iter().find_map(|o| match o {
            MtaOutput::Smtp(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Answer every Resolve output with NXDOMAIN until the actor stops
    /// asking; return all outputs produced along the way.
    fn drain_dns(actor: &mut MtaActor, mut outputs: Vec<MtaOutput>) -> Vec<MtaOutput> {
        let mut all = Vec::new();
        loop {
            let resolves: Vec<u64> = outputs
                .iter()
                .filter_map(|o| match o {
                    MtaOutput::Resolve { qid, .. } => Some(*qid),
                    _ => None,
                })
                .collect();
            all.extend(outputs);
            if resolves.is_empty() {
                return all;
            }
            outputs = Vec::new();
            for qid in resolves {
                outputs.extend(actor.handle(MtaInput::DnsFinished {
                    qid,
                    outcome: ResolveOutcome::NxDomain,
                }));
            }
        }
    }

    #[test]
    fn greeting_and_ehlo() {
        let mut actor = MtaActor::new("mx.r.test", MtaProfile::strict(), ctx());
        let out = actor.handle(MtaInput::Connected);
        assert!(first_smtp(&out).unwrap().starts_with("220"));
        let out = drive_line(&mut actor, "EHLO probe.test");
        assert!(first_smtp(&out).unwrap().starts_with("250"));
    }

    #[test]
    fn at_mail_spf_defers_reply_until_lookup_completes() {
        let mut actor = MtaActor::new("mx.r.test", MtaProfile::strict(), ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        let out = drive_line(&mut actor, "MAIL FROM:<spf-test@t01.m3.spf.test>");
        // No SMTP reply yet — a TXT resolve was requested instead.
        assert!(first_smtp(&out).is_none());
        let qid = out
            .iter()
            .find_map(|o| match o {
                MtaOutput::Resolve { qid, name, rtype } => {
                    assert_eq!(*rtype, RecordType::Txt);
                    assert_eq!(name.to_string(), "t01.m3.spf.test");
                    Some(*qid)
                }
                _ => None,
            })
            .expect("resolve requested");
        let out = actor.handle(MtaInput::DnsFinished {
            qid,
            outcome: ResolveOutcome::NxDomain,
        });
        // SPF none → accept.
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        assert!(out
            .iter()
            .any(|o| matches!(o, MtaOutput::Event(MtaEvent::SpfConcluded(SR::None)))));
    }

    #[test]
    fn blacklisted_client_rejected_with_spam_text() {
        let mut profile = MtaProfile::strict();
        profile.rejects_spam = true;
        let mut actor = MtaActor::new(
            "mx.r.test",
            profile,
            ConnContext {
                client_ip: "192.0.2.77".parse().unwrap(),
                client_blacklisted: true,
                recipients_guessed: false,
            },
        );
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        let out = drive_line(&mut actor, "MAIL FROM:<x@y.test>");
        let reply = first_smtp(&out).unwrap();
        assert!(reply.starts_with("554"));
        assert!(reply.to_lowercase().contains("spam"));
    }

    #[test]
    fn blacklisted_client_slammed_with_close() {
        // The "DNSBL slam" (§6.2): the operator not only rejects the
        // blacklisted client at MAIL but drops the connection itself.
        let mut profile = MtaProfile::strict();
        profile.rejects_blacklist = true;
        let mut actor = MtaActor::new(
            "mx.r.test",
            profile,
            ConnContext {
                client_ip: "192.0.2.77".parse().unwrap(),
                client_blacklisted: true,
                recipients_guessed: false,
            },
        );
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        let out = drive_line(&mut actor, "MAIL FROM:<x@y.test>");
        let reply = first_smtp(&out).unwrap();
        assert!(reply.starts_with("554"));
        assert!(reply.contains("blacklist"));
        assert!(
            out.iter().any(|o| matches!(o, MtaOutput::Close)),
            "slam must close the connection after the 554"
        );
        // Everything after the slam is ignored: the session is closed.
        let out = drive_line(&mut actor, "RCPT TO:<u@r.test>");
        assert!(first_smtp(&out).is_none());
    }

    #[test]
    fn non_blacklisted_client_not_rejected() {
        let mut profile = MtaProfile::strict();
        profile.rejects_spam = true;
        profile.spf_trigger = SpfTrigger::AfterDelivery;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        let out = drive_line(&mut actor, "MAIL FROM:<x@y.test>");
        assert!(first_smtp(&out).unwrap().starts_with("250"));
    }

    #[test]
    fn username_fallback_and_postmaster_bypass() {
        let mut profile = MtaProfile::strict();
        profile.accepted_username = None;
        profile.postmaster_bypass = true;
        profile.spf_trigger = SpfTrigger::AtRcpt;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        drive_line(&mut actor, "MAIL FROM:<spf-test@t.m.spf.test>");
        let out = drive_line(&mut actor, "RCPT TO:<michael@r.test>");
        assert!(first_smtp(&out).unwrap().starts_with("550"));
        let out = drive_line(&mut actor, "RCPT TO:<postmaster@r.test>");
        // Accepted, and because of the bypass no SPF resolve happened.
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        assert!(!out.iter().any(|o| matches!(o, MtaOutput::Resolve { .. })));
    }

    #[test]
    fn at_rcpt_trigger_validates_without_bypass() {
        let mut profile = MtaProfile::strict();
        profile.accepted_username = Some("michael");
        profile.spf_trigger = SpfTrigger::AtRcpt;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        drive_line(&mut actor, "MAIL FROM:<spf-test@t.m.spf.test>");
        let out = drive_line(&mut actor, "RCPT TO:<michael@r.test>");
        assert!(out.iter().any(|o| matches!(o, MtaOutput::Resolve { .. })));
    }

    #[test]
    fn helo_check_queries_helo_domain_then_proceeds() {
        let mut profile = MtaProfile::strict();
        profile.checks_helo = true;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        let out = drive_line(&mut actor, "EHLO h.t39.m3.spf.test");
        let qid = out
            .iter()
            .find_map(|o| match o {
                MtaOutput::Resolve { qid, name, .. } => {
                    assert_eq!(name.to_string(), "h.t39.m3.spf.test");
                    Some(*qid)
                }
                _ => None,
            })
            .expect("helo policy lookup");
        // A -all policy for the HELO domain...
        let record = mailval_dns::Record::new(
            Name::parse("h.t39.m3.spf.test").unwrap(),
            60,
            mailval_dns::rr::RData::txt_from_str("v=spf1 -all"),
        );
        let out = actor.handle(MtaInput::DnsFinished {
            qid,
            outcome: ResolveOutcome::Records(vec![record]),
        });
        // ... is ignored: EHLO accepted (§7.3).
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        // And MAIL still triggers the MAIL-identity evaluation.
        let out = drive_line(&mut actor, "MAIL FROM:<spf-test@t39.m3.spf.test>");
        assert!(out.iter().any(|o| matches!(o, MtaOutput::Resolve { .. })));
    }

    #[test]
    fn full_delivery_runs_dkim_dmarc_and_accept_timer() {
        let mut profile = MtaProfile::strict();
        profile.spf_trigger = SpfTrigger::AtMail;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO sender.test");
        let out = drive_line(&mut actor, "MAIL FROM:<a@sender.test>");
        let all = drain_dns(&mut actor, out);
        assert!(first_smtp(&all).is_some());
        drive_line(&mut actor, "RCPT TO:<michael@r.test>");
        drive_line(&mut actor, "DATA");
        drive_line(
            &mut actor,
            "DKIM-Signature: v=1; a=rsa-sha256; d=sender.test; s=s1;",
        );
        drive_line(&mut actor, " c=relaxed/relaxed; h=from; bh=AAAA; b=BBBB");
        drive_line(&mut actor, "From: Alice <a@sender.test>");
        drive_line(&mut actor, "Subject: hello");
        drive_line(&mut actor, "");
        drive_line(&mut actor, "body");
        let out = drive_line(&mut actor, ".");
        // DKIM key lookup first.
        let all = drain_dns(&mut actor, out);
        // DKIM + DMARC lookups happened; accept timer armed.
        let resolves: Vec<String> = all
            .iter()
            .filter_map(|o| match o {
                MtaOutput::Resolve { name, .. } => Some(name.to_string()),
                _ => None,
            })
            .collect();
        assert!(
            resolves.iter().any(|n| n.contains("_domainkey")),
            "{resolves:?}"
        );
        assert!(
            resolves.iter().any(|n| n.starts_with("_dmarc.")),
            "{resolves:?}"
        );
        let timer = all.iter().find_map(|o| match o {
            MtaOutput::SetTimer { token, .. } => Some(*token),
            _ => None,
        });
        assert_eq!(timer, Some(TIMER_ACCEPT));
        // Fire the accept timer → 250 + MessageAccepted event.
        let out = actor.handle(MtaInput::Timer {
            token: TIMER_ACCEPT,
        });
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        assert!(out
            .iter()
            .any(|o| matches!(o, MtaOutput::Event(MtaEvent::MessageAccepted))));
    }

    #[test]
    fn after_delivery_trigger_validates_post_acceptance() {
        let mut profile = MtaProfile::strict();
        profile.spf_trigger = SpfTrigger::AfterDelivery;
        profile.combo.dkim = false;
        profile.combo.dmarc = false;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO sender.test");
        let out = drive_line(&mut actor, "MAIL FROM:<a@sender.test>");
        // No SPF at MAIL.
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        drive_line(&mut actor, "RCPT TO:<michael@r.test>");
        drive_line(&mut actor, "DATA");
        drive_line(&mut actor, "From: Alice <a@sender.test>");
        drive_line(&mut actor, "");
        let out = drive_line(&mut actor, ".");
        // Accept timer; fire it.
        assert!(out.iter().any(|o| matches!(
            o,
            MtaOutput::SetTimer {
                token: TIMER_ACCEPT,
                ..
            }
        )));
        let out = actor.handle(MtaInput::Timer {
            token: TIMER_ACCEPT,
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, MtaOutput::Event(MtaEvent::MessageAccepted))));
        // Post-delivery timer armed; firing it starts SPF.
        assert!(out.iter().any(|o| matches!(
            o,
            MtaOutput::SetTimer {
                token: TIMER_POST_DELIVERY,
                ..
            }
        )));
        let out = actor.handle(MtaInput::Timer {
            token: TIMER_POST_DELIVERY,
        });
        assert!(out.iter().any(|o| matches!(o, MtaOutput::Resolve { .. })));
    }

    #[test]
    fn unfinished_validator_stops_after_policy_fetch() {
        let mut profile = MtaProfile::strict();
        profile.spf_unfinished = true;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        let out = drive_line(&mut actor, "MAIL FROM:<spf-test@t.m.spf.test>");
        let qid = out
            .iter()
            .find_map(|o| match o {
                MtaOutput::Resolve { qid, .. } => Some(*qid),
                _ => None,
            })
            .unwrap();
        // Policy says to look up an A record, but the partial validator
        // won't.
        let record = mailval_dns::Record::new(
            Name::parse("t.m.spf.test").unwrap(),
            60,
            mailval_dns::rr::RData::txt_from_str("v=spf1 a:foo.t.m.spf.test -all"),
        );
        let out = actor.handle(MtaInput::DnsFinished {
            qid,
            outcome: ResolveOutcome::Records(vec![record]),
        });
        assert!(
            !out.iter().any(|o| matches!(o, MtaOutput::Resolve { .. })),
            "partial validator must not follow up"
        );
        assert!(first_smtp(&out).unwrap().starts_with("250"));
    }

    #[test]
    fn greylisting_tempfails_first_rcpt_then_accepts_retry() {
        let mut profile = MtaProfile::strict();
        profile.greylists = true;
        profile.spf_trigger = SpfTrigger::AfterDelivery; // keep MAIL synchronous
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        drive_line(&mut actor, "MAIL FROM:<a@sender.test>");
        let out = drive_line(&mut actor, "RCPT TO:<michael@r.test>");
        assert!(first_smtp(&out).unwrap().starts_with("451"));
        assert!(out
            .iter()
            .any(|o| matches!(o, MtaOutput::Event(MtaEvent::TempFailed))));
        // The client retries the transaction: RSET / MAIL / same RCPT.
        let out = drive_line(&mut actor, "RSET");
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        let out = drive_line(&mut actor, "MAIL FROM:<a@sender.test>");
        assert!(first_smtp(&out).unwrap().starts_with("250"));
        let out = drive_line(&mut actor, "RCPT TO:<michael@r.test>");
        assert!(first_smtp(&out).unwrap().starts_with("250"));
    }

    #[test]
    fn stalling_profile_emits_stall_before_mail_reply() {
        let mut profile = MtaProfile::strict();
        profile.stall_at_mail_ms = 7_000;
        profile.spf_trigger = SpfTrigger::AfterDelivery;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        let out = drive_line(&mut actor, "MAIL FROM:<a@sender.test>");
        assert!(matches!(out[0], MtaOutput::Stall { delay_ms: 7_000 }));
        assert!(first_smtp(&out).unwrap().starts_with("250"));
    }

    #[test]
    #[should_panic(expected = "poisoned MTA profile")]
    fn poisoned_profile_panics_at_mail() {
        let mut profile = MtaProfile::strict();
        profile.poison = true;
        let mut actor = MtaActor::new("mx.r.test", profile, ctx());
        actor.handle(MtaInput::Connected);
        drive_line(&mut actor, "EHLO probe.test");
        drive_line(&mut actor, "MAIL FROM:<a@sender.test>");
    }

    #[test]
    fn quit_closes() {
        let mut actor = MtaActor::new("mx.r.test", MtaProfile::strict(), ctx());
        actor.handle(MtaInput::Connected);
        let out = drive_line(&mut actor, "QUIT");
        assert!(first_smtp(&out).unwrap().starts_with("221"));
        assert!(out.iter().any(|o| matches!(o, MtaOutput::Close)));
    }
}
