//! # mailval-mta
//!
//! The simulated Internet mail-server population the measurement
//! apparatus probes — the substitute for the ~30k real MTAs of the paper
//! (see DESIGN.md for the substitution argument):
//!
//! * [`profile`] — per-MTA behavior profiles. Every knob corresponds to
//!   a behavior the paper measured (§6–§7); the *prevalences* are the
//!   seeded calibration constants, each cited to its paper section in
//!   [`profile::calibration`].
//! * [`resolver`] — the MTA-side recursive-resolver actor: wraps the
//!   sans-IO `mailval-dns` resolver core and decides v4/v6 upstream
//!   routing (the IPv6-only test hinges on this).
//! * [`actor`] — the receiving-MTA actor: an SMTP server session wired
//!   to SPF/DKIM/DMARC evaluators through the resolver, with the
//!   profile's deviations applied. Pure message-in/message-out, driven
//!   by the `mailval-measure` event loop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod profile;
pub mod resolver;

pub use actor::{ConnContext, MtaActor, MtaInput, MtaOutput};
pub use profile::{MtaProfile, SpfTrigger};
pub use resolver::ResolverActor;
