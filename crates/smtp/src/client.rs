//! Sans-IO SMTP sending client.
//!
//! One state machine serves both experiment modes of the paper:
//!
//! * **Delivery mode** (NotifyEmail): carries a real message, sends
//!   `DATA`, the payload and the terminating dot, and records acceptance.
//! * **Probe mode** (NotifyMX / TwoWeekMX, §4.6): inserts a configurable
//!   pause (15 s in the paper) before `MAIL`, `RCPT` and `DATA`, tries
//!   recipient usernames in order until one is accepted
//!   (michael → john.smith → support → postmaster, §4.4), and after the
//!   server's `DATA` reply **disconnects without transmitting any message
//!   data**, so no email can possibly be delivered.

use crate::command::{Command, EmailAddress};
use crate::mail::dot_stuff;
use crate::reply::Reply;

/// The dialogue phase a reply belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Server greeting.
    Greeting,
    /// EHLO/HELO exchange.
    Helo,
    /// MAIL FROM.
    Mail,
    /// RCPT TO.
    Rcpt,
    /// DATA command.
    Data,
    /// Message payload acceptance.
    Message,
    /// QUIT.
    Quit,
}

/// Client configuration for one session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Identity for EHLO/HELO.
    pub helo_identity: String,
    /// Reverse path for MAIL FROM (`None` = null sender).
    pub mail_from: Option<EmailAddress>,
    /// Forward-path candidates, tried in order while the server rejects
    /// them (the paper's username fallback list).
    pub rcpt_candidates: Vec<EmailAddress>,
    /// Message to deliver; `None` selects probe mode (disconnect after the
    /// DATA reply, transmitting nothing).
    pub message: Option<Vec<u8>>,
    /// Pause inserted immediately before MAIL, RCPT and DATA (15 000 ms in
    /// the paper; 0 disables).
    pub pause_before_commands_ms: u64,
    /// How many times a transiently-failed (4xx) transaction may be
    /// retried within the session before giving up (the paper's probes
    /// re-attempted greylisted deliveries; 0 disables retries).
    pub max_session_retries: u32,
    /// Base backoff before the first retry; doubles per retry
    /// (exponential, in virtual time).
    pub retry_backoff_ms: u64,
}

/// What the embedder must do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientAction {
    /// Transmit these bytes (already CRLF-terminated).
    Send(Vec<u8>),
    /// Wait this long, then call [`ClientSession::on_pause_elapsed`].
    Pause(u64),
    /// Close the connection; the session is finished.
    Close(Box<ClientOutcome>),
}

/// Result of a finished session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOutcome {
    /// The furthest phase for which a server reply was processed.
    pub phase_reached: Phase,
    /// The recipient the server accepted, if any.
    pub accepted_rcpt: Option<EmailAddress>,
    /// True only in delivery mode after the message got a 250.
    pub delivered: bool,
    /// The decisive rejection, if the session failed.
    pub rejection: Option<(Phase, Reply)>,
    /// Transaction retries performed after transient (4xx) failures.
    pub retries: u32,
    /// Every reply received, in order, tagged by phase.
    pub transcript: Vec<(Phase, Reply)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitGreeting,
    AwaitHeloReply { fell_back: bool },
    PauseBeforeMail,
    AwaitMailReply,
    PauseBeforeRcpt,
    AwaitRcptReply,
    PauseBeforeData,
    AwaitDataReply,
    AwaitMessageReply,
    PauseBeforeRetry,
    AwaitRsetReply,
    AwaitQuitReply,
    Done,
}

/// Sans-IO SMTP client session.
#[derive(Debug)]
pub struct ClientSession {
    config: ClientConfig,
    state: State,
    rcpt_index: usize,
    outcome: ClientOutcome,
}

impl ClientSession {
    /// Start a session. The first action is always to await the server
    /// greeting (feed it via [`ClientSession::on_reply`]).
    pub fn new(config: ClientConfig) -> Self {
        assert!(
            !config.rcpt_candidates.is_empty(),
            "need at least one recipient candidate"
        );
        ClientSession {
            config,
            state: State::AwaitGreeting,
            rcpt_index: 0,
            outcome: ClientOutcome {
                phase_reached: Phase::Greeting,
                accepted_rcpt: None,
                delivered: false,
                rejection: None,
                retries: 0,
                transcript: Vec::new(),
            },
        }
    }

    fn phase_of(&self) -> Phase {
        match self.state {
            State::AwaitGreeting => Phase::Greeting,
            State::AwaitHeloReply { .. } => Phase::Helo,
            State::PauseBeforeMail
            | State::AwaitMailReply
            | State::PauseBeforeRetry
            | State::AwaitRsetReply => Phase::Mail,
            State::PauseBeforeRcpt | State::AwaitRcptReply => Phase::Rcpt,
            State::PauseBeforeData | State::AwaitDataReply => Phase::Data,
            State::AwaitMessageReply => Phase::Message,
            State::AwaitQuitReply | State::Done => Phase::Quit,
        }
    }

    fn send_line(&self, cmd: &Command) -> ClientAction {
        ClientAction::Send(format!("{}\r\n", cmd.to_line()).into_bytes())
    }

    fn pause_or(&mut self, paused_state: State, immediate: ClientAction) -> ClientAction {
        if self.config.pause_before_commands_ms > 0 {
            self.state = paused_state;
            ClientAction::Pause(self.config.pause_before_commands_ms)
        } else {
            immediate
        }
    }

    fn can_retry(&self, reply: &Reply) -> bool {
        reply.is_transient_failure() && self.outcome.retries < self.config.max_session_retries
    }

    /// Begin a bounded exponential-backoff retry of the transaction:
    /// pause, then RSET and replay from MAIL with the same recipient
    /// candidate.
    fn begin_retry(&mut self) -> ClientAction {
        self.outcome.retries += 1;
        let shift = (self.outcome.retries - 1).min(16);
        let backoff = self
            .config
            .retry_backoff_ms
            .saturating_mul(1u64 << shift)
            .max(1); // Pause(0) is an embedder no-op; never emit it
        self.state = State::PauseBeforeRetry;
        ClientAction::Pause(backoff)
    }

    fn fail(&mut self, phase: Phase, reply: Reply) -> ClientAction {
        if self.outcome.rejection.is_none() {
            self.outcome.rejection = Some((phase, reply));
        }
        self.state = State::AwaitQuitReply;
        self.send_line(&Command::Quit)
    }

    fn close(&mut self) -> ClientAction {
        self.state = State::Done;
        ClientAction::Close(Box::new(self.outcome.clone()))
    }

    /// Feed a complete server reply.
    pub fn on_reply(&mut self, reply: Reply) -> ClientAction {
        let phase = self.phase_of();
        self.outcome.transcript.push((phase, reply.clone()));
        self.outcome.phase_reached = self.outcome.phase_reached.max(phase);
        match self.state {
            State::AwaitGreeting => {
                if !reply.is_positive() {
                    return self.fail(Phase::Greeting, reply);
                }
                self.state = State::AwaitHeloReply { fell_back: false };
                self.send_line(&Command::Ehlo(self.config.helo_identity.clone()))
            }
            State::AwaitHeloReply { fell_back } => {
                if reply.is_positive() {
                    let mail = Command::Mail(self.config.mail_from.clone());
                    let action = self.send_line(&mail);
                    self.state = State::AwaitMailReply;
                    return self.pause_or(State::PauseBeforeMail, action);
                }
                if !fell_back && reply.is_permanent_failure() {
                    // EHLO unsupported: fall back to HELO (§4.6).
                    self.state = State::AwaitHeloReply { fell_back: true };
                    return self.send_line(&Command::Helo(self.config.helo_identity.clone()));
                }
                self.fail(Phase::Helo, reply)
            }
            State::AwaitMailReply => {
                if !reply.is_positive() {
                    if self.can_retry(&reply) {
                        return self.begin_retry();
                    }
                    return self.fail(Phase::Mail, reply);
                }
                let rcpt = Command::Rcpt(self.config.rcpt_candidates[self.rcpt_index].clone());
                let action = self.send_line(&rcpt);
                self.state = State::AwaitRcptReply;
                self.pause_or(State::PauseBeforeRcpt, action)
            }
            State::AwaitRcptReply => {
                if reply.is_positive() {
                    self.outcome.accepted_rcpt =
                        Some(self.config.rcpt_candidates[self.rcpt_index].clone());
                    let action = self.send_line(&Command::Data);
                    self.state = State::AwaitDataReply;
                    return self.pause_or(State::PauseBeforeData, action);
                }
                // A transient failure (451 greylisting) is "come back
                // later", not a verdict on the username: retry the whole
                // transaction with the *same* candidate before falling
                // through to the next-username logic.
                if self.can_retry(&reply) {
                    return self.begin_retry();
                }
                // Try the next username (the paper moves on to the next
                // candidate whenever the server rejects the recipient).
                if self.rcpt_index + 1 < self.config.rcpt_candidates.len() {
                    self.rcpt_index += 1;
                    let rcpt = Command::Rcpt(self.config.rcpt_candidates[self.rcpt_index].clone());
                    let action = self.send_line(&rcpt);
                    self.state = State::AwaitRcptReply;
                    return self.pause_or(State::PauseBeforeRcpt, action);
                }
                self.fail(Phase::Rcpt, reply)
            }
            State::AwaitDataReply => {
                match &self.config.message {
                    None => {
                        // Probe mode: regardless of the reply, disconnect
                        // *without* sending message data (§4.6, §5.1).
                        if !reply.is_intermediate() && self.outcome.rejection.is_none() {
                            self.outcome.rejection = Some((Phase::Data, reply));
                        }
                        self.close()
                    }
                    Some(message) => {
                        if !reply.is_intermediate() {
                            if self.can_retry(&reply) {
                                return self.begin_retry();
                            }
                            return self.fail(Phase::Data, reply);
                        }
                        let mut payload = dot_stuff(message);
                        if !payload.ends_with(b"\r\n") {
                            payload.extend_from_slice(b"\r\n");
                        }
                        payload.extend_from_slice(b".\r\n");
                        self.state = State::AwaitMessageReply;
                        ClientAction::Send(payload)
                    }
                }
            }
            State::AwaitMessageReply => {
                if reply.is_positive() {
                    self.outcome.delivered = true;
                    self.state = State::AwaitQuitReply;
                    return self.send_line(&Command::Quit);
                }
                if self.can_retry(&reply) {
                    return self.begin_retry();
                }
                self.fail(Phase::Message, reply)
            }
            State::AwaitRsetReply => {
                if !reply.is_positive() {
                    return self.fail(Phase::Mail, reply);
                }
                let mail = Command::Mail(self.config.mail_from.clone());
                let action = self.send_line(&mail);
                self.state = State::AwaitMailReply;
                self.pause_or(State::PauseBeforeMail, action)
            }
            State::AwaitQuitReply => self.close(),
            State::Done
            | State::PauseBeforeMail
            | State::PauseBeforeRcpt
            | State::PauseBeforeData
            | State::PauseBeforeRetry => {
                // Unexpected extra reply; ignore but record (already in
                // transcript).
                ClientAction::Pause(0)
            }
        }
    }

    /// Resume after a [`ClientAction::Pause`].
    pub fn on_pause_elapsed(&mut self) -> ClientAction {
        match self.state {
            State::PauseBeforeMail => {
                self.state = State::AwaitMailReply;
                self.send_line(&Command::Mail(self.config.mail_from.clone()))
            }
            State::PauseBeforeRcpt => {
                self.state = State::AwaitRcptReply;
                self.send_line(&Command::Rcpt(
                    self.config.rcpt_candidates[self.rcpt_index].clone(),
                ))
            }
            State::PauseBeforeData => {
                self.state = State::AwaitDataReply;
                self.send_line(&Command::Data)
            }
            State::PauseBeforeRetry => {
                // Backoff elapsed: clear the transaction server-side,
                // then replay from MAIL once the RSET is acknowledged.
                self.state = State::AwaitRsetReply;
                self.send_line(&Command::Rset)
            }
            _ => ClientAction::Pause(0),
        }
    }

    /// The connection dropped (timeout, reset). Finish with what we have.
    pub fn on_disconnect(&mut self) -> ClientOutcome {
        self.state = State::Done;
        self.outcome.clone()
    }
}

/// The paper's recipient-username fallback list (§4.4).
pub fn probe_usernames() -> [&'static str; 4] {
    ["michael", "john.smith", "support", "postmaster"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mailval_dns::Name;

    fn addr(s: &str) -> EmailAddress {
        EmailAddress::parse(s).unwrap()
    }

    fn probe_config() -> ClientConfig {
        ClientConfig {
            helo_identity: "probe.dns-lab.org".into(),
            mail_from: Some(addr("spf-test@t01.m9.spf-test.dns-lab.org")),
            rcpt_candidates: probe_usernames()
                .iter()
                .map(|u| EmailAddress::new(u, Name::parse("target.test").unwrap()))
                .collect(),
            message: None,
            pause_before_commands_ms: 15_000,
            max_session_retries: 0,
            retry_backoff_ms: 0,
        }
    }

    fn expect_send(action: ClientAction) -> String {
        match action {
            ClientAction::Send(bytes) => String::from_utf8(bytes).unwrap(),
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn probe_session_full_flow() {
        let mut c = ClientSession::new(probe_config());
        // Greeting → EHLO immediately (no pause before EHLO).
        let line = expect_send(c.on_reply(Reply::greeting("mx.target.test")));
        assert!(line.starts_with("EHLO"));
        // EHLO ok → pause 15s → MAIL.
        assert_eq!(c.on_reply(Reply::ok()), ClientAction::Pause(15_000));
        let line = expect_send(c.on_pause_elapsed());
        assert!(line.starts_with("MAIL FROM:<spf-test@t01.m9"));
        // MAIL ok → pause → RCPT michael.
        assert_eq!(c.on_reply(Reply::ok()), ClientAction::Pause(15_000));
        let line = expect_send(c.on_pause_elapsed());
        assert!(line.contains("<michael@target.test>"));
        // michael rejected → pause → john.smith.
        assert_eq!(
            c.on_reply(Reply::no_such_user("michael")),
            ClientAction::Pause(15_000)
        );
        let line = expect_send(c.on_pause_elapsed());
        assert!(line.contains("<john.smith@target.test>"));
        // accepted → pause → DATA.
        assert_eq!(c.on_reply(Reply::ok()), ClientAction::Pause(15_000));
        let line = expect_send(c.on_pause_elapsed());
        assert_eq!(line, "DATA\r\n");
        // 354 → probe disconnects without sending anything.
        match c.on_reply(Reply::start_mail_input()) {
            ClientAction::Close(outcome) => {
                assert_eq!(outcome.accepted_rcpt.unwrap().local, "john.smith");
                assert!(!outcome.delivered);
                assert!(outcome.rejection.is_none());
                assert_eq!(outcome.phase_reached, Phase::Data);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_all_usernames_rejected() {
        let mut c = ClientSession::new(probe_config());
        expect_send(c.on_reply(Reply::greeting("mx")));
        c.on_reply(Reply::ok()); // EHLO → pause
        c.on_pause_elapsed(); // MAIL
        c.on_reply(Reply::ok()); // → pause
        c.on_pause_elapsed(); // RCPT 1
        for _ in 0..3 {
            c.on_reply(Reply::no_such_user("x"));
            c.on_pause_elapsed();
        }
        // Fourth rejection exhausts the list → QUIT.
        let line = expect_send(c.on_reply(Reply::no_such_user("postmaster")));
        assert_eq!(line, "QUIT\r\n");
        match c.on_reply(Reply::closing()) {
            ClientAction::Close(outcome) => {
                assert!(outcome.accepted_rcpt.is_none());
                assert_eq!(outcome.rejection.as_ref().unwrap().0, Phase::Rcpt);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delivery_mode_sends_message() {
        let mut config = probe_config();
        config.message = Some(b"Subject: notification\r\n\r\n.hidden\r\nbody\r\n".to_vec());
        config.pause_before_commands_ms = 0;
        let mut c = ClientSession::new(config);
        expect_send(c.on_reply(Reply::greeting("mx")));
        expect_send(c.on_reply(Reply::ok())); // EHLO → MAIL (no pause)
        expect_send(c.on_reply(Reply::ok())); // MAIL → RCPT
        let line = expect_send(c.on_reply(Reply::ok())); // RCPT → DATA
        assert_eq!(line, "DATA\r\n");
        let payload = expect_send(c.on_reply(Reply::start_mail_input()));
        assert!(payload.contains("..hidden\r\n"), "dot-stuffed");
        assert!(payload.ends_with("\r\n.\r\n"));
        let line = expect_send(c.on_reply(Reply::new(250, "queued as 123")));
        assert_eq!(line, "QUIT\r\n");
        match c.on_reply(Reply::closing()) {
            ClientAction::Close(outcome) => {
                assert!(outcome.delivered);
                assert_eq!(outcome.phase_reached, Phase::Quit);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ehlo_falls_back_to_helo() {
        let mut config = probe_config();
        config.pause_before_commands_ms = 0;
        let mut c = ClientSession::new(config);
        expect_send(c.on_reply(Reply::greeting("mx")));
        let line = expect_send(c.on_reply(Reply::new(502, "command not implemented")));
        assert!(line.starts_with("HELO"));
        let line = expect_send(c.on_reply(Reply::ok()));
        assert!(line.starts_with("MAIL"));
    }

    #[test]
    fn spam_rejection_at_mail_recorded() {
        let mut config = probe_config();
        config.pause_before_commands_ms = 0;
        let mut c = ClientSession::new(config);
        expect_send(c.on_reply(Reply::greeting("mx")));
        expect_send(c.on_reply(Reply::ok())); // EHLO → MAIL
        let line = expect_send(c.on_reply(Reply::new(554, "sender on spam blacklist")));
        assert_eq!(line, "QUIT\r\n");
        match c.on_reply(Reply::closing()) {
            ClientAction::Close(outcome) => {
                let (phase, reply) = outcome.rejection.unwrap();
                assert_eq!(phase, Phase::Mail);
                assert!(reply.text().contains("spam"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn greylisted_rcpt_retried_with_exponential_backoff() {
        let mut config = probe_config();
        config.pause_before_commands_ms = 0;
        config.max_session_retries = 2;
        config.retry_backoff_ms = 30_000;
        let mut c = ClientSession::new(config);
        expect_send(c.on_reply(Reply::greeting("mx")));
        expect_send(c.on_reply(Reply::ok())); // EHLO → MAIL
        expect_send(c.on_reply(Reply::ok())); // MAIL → RCPT michael
        let greylist = Reply::new(451, "4.7.1 Greylisted, try again later");
        // First 451 → backoff 30s, then RSET / MAIL / same RCPT.
        assert_eq!(c.on_reply(greylist.clone()), ClientAction::Pause(30_000));
        assert_eq!(expect_send(c.on_pause_elapsed()), "RSET\r\n");
        let line = expect_send(c.on_reply(Reply::ok()));
        assert!(line.starts_with("MAIL FROM:"));
        let line = expect_send(c.on_reply(Reply::ok()));
        assert!(line.contains("<michael@target.test>"), "same candidate");
        // Second 451 → backoff doubles to 60s.
        assert_eq!(c.on_reply(greylist.clone()), ClientAction::Pause(60_000));
        assert_eq!(expect_send(c.on_pause_elapsed()), "RSET\r\n");
        expect_send(c.on_reply(Reply::ok())); // RSET → MAIL
        let line = expect_send(c.on_reply(Reply::ok())); // MAIL → RCPT
        assert!(line.contains("<michael@target.test>"));
        // Accepted this time: the session proceeds to DATA.
        let line = expect_send(c.on_reply(Reply::ok()));
        assert_eq!(line, "DATA\r\n");
        match c.on_reply(Reply::start_mail_input()) {
            ClientAction::Close(outcome) => {
                assert_eq!(outcome.retries, 2);
                assert_eq!(outcome.accepted_rcpt.unwrap().local, "michael");
                assert!(outcome.rejection.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retry_budget_exhaustion_falls_back_to_failure_path() {
        let mut config = probe_config();
        config.pause_before_commands_ms = 0;
        config.max_session_retries = 1;
        config.retry_backoff_ms = 10_000;
        let mut c = ClientSession::new(config);
        expect_send(c.on_reply(Reply::greeting("mx")));
        expect_send(c.on_reply(Reply::ok())); // EHLO → MAIL
        expect_send(c.on_reply(Reply::ok())); // MAIL → RCPT
        let greylist = Reply::new(451, "4.7.1 Greylisted");
        assert_eq!(c.on_reply(greylist.clone()), ClientAction::Pause(10_000));
        assert_eq!(expect_send(c.on_pause_elapsed()), "RSET\r\n");
        expect_send(c.on_reply(Reply::ok())); // RSET → MAIL
        expect_send(c.on_reply(Reply::ok())); // MAIL → RCPT
                                              // Budget spent: the 451 now walks the username-fallback list.
        let line = expect_send(c.on_reply(greylist.clone()));
        assert!(line.contains("<john.smith@target.test>"));
        // And once candidates run out, the session fails with the 451.
        for _ in 0..2 {
            expect_send(c.on_reply(greylist.clone()));
        }
        let line = expect_send(c.on_reply(greylist));
        assert_eq!(line, "QUIT\r\n");
        match c.on_reply(Reply::closing()) {
            ClientAction::Close(outcome) => {
                assert_eq!(outcome.retries, 1);
                let (phase, reply) = outcome.rejection.unwrap();
                assert_eq!(phase, Phase::Rcpt);
                assert_eq!(reply.code, 451);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn greeting_failure_quits() {
        let mut c = ClientSession::new(probe_config());
        let line = expect_send(c.on_reply(Reply::new(554, "no service")));
        assert_eq!(line, "QUIT\r\n");
    }

    #[test]
    fn disconnect_mid_session_yields_partial_outcome() {
        let mut c = ClientSession::new(probe_config());
        expect_send(c.on_reply(Reply::greeting("mx")));
        let outcome = c.on_disconnect();
        assert_eq!(outcome.phase_reached, Phase::Greeting);
        assert_eq!(outcome.transcript.len(), 1);
    }
}
