//! Sans-IO receiving-MTA SMTP session.
//!
//! The session is a state machine fed complete lines; it either replies
//! immediately or *suspends* with a [`PolicyQuery`] so the embedding MTA
//! can consult policy — including policy that requires DNS round trips
//! (SPF validation during the SMTP dialogue, which the paper shows 83% of
//! validating domains perform before accepting delivery, §6.2). The
//! embedder resumes the session with [`Session::on_decision`].

use crate::command::{Command, CommandError, EmailAddress};
use crate::reply::Reply;

/// Where the session is in the SMTP dialogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// TCP established, greeting sent, awaiting EHLO/HELO.
    Connected,
    /// EHLO/HELO done.
    Greeted,
    /// MAIL accepted.
    MailGiven,
    /// At least one RCPT accepted.
    RcptGiven,
    /// Inside DATA, collecting message lines.
    ReceivingData,
    /// QUIT processed; the connection should be closed.
    Closed,
    /// Waiting for the embedder's policy decision.
    AwaitingDecision,
}

/// A policy question the embedding MTA must answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyQuery {
    /// EHLO/HELO seen. The paper's HELO test policy (§7.3) hinges on
    /// whether MTAs check SPF for this identity.
    Helo {
        /// Identity given by the client.
        identity: String,
        /// True for EHLO, false for HELO.
        esmtp: bool,
    },
    /// MAIL FROM seen.
    Mail {
        /// The reverse path; `None` is the null sender.
        from: Option<EmailAddress>,
    },
    /// RCPT TO seen.
    Rcpt {
        /// The forward path.
        to: EmailAddress,
    },
    /// DATA command seen (decision before 354 is issued).
    Data,
    /// A complete message was received (decision before the final 250).
    Message {
        /// Raw message bytes, dot-unstuffed, without the terminating line.
        raw: Vec<u8>,
    },
}

/// The embedder's answer to a [`PolicyQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Proceed (a default positive reply is sent).
    Accept,
    /// Proceed with a custom positive reply.
    AcceptWith(Reply),
    /// Refuse with the given reply (4xx/5xx).
    Reject(Reply),
    /// Refuse *temporarily* with a 4xx reply (greylisting, resource
    /// pressure). State rollback is identical to [`Decision::Reject`];
    /// the variant exists so embedders and transcripts can distinguish
    /// "come back later" from a verdict — the paper's probes retried
    /// tempfailed transactions, permanent rejections they did not.
    TempFail(Reply),
    /// Refuse and drop the connection right after the reply (the
    /// "DNSBL slam": operators that terminate blacklisted clients
    /// instead of letting the dialogue continue, §6.2). The embedder
    /// must emit its close output after sending the reply.
    RejectAndClose(Reply),
}

/// What the session wants the embedder to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send this reply to the client.
    Reply(Reply),
    /// Ask the embedder for a decision, then call
    /// [`Session::on_decision`].
    Ask(PolicyQuery),
    /// Send this reply, then close the connection.
    ReplyAndClose(Reply),
    /// No output (mid-DATA content line).
    None,
}

/// A sans-IO SMTP server session.
#[derive(Debug)]
pub struct Session {
    hostname: String,
    state: SessionState,
    resume_state: SessionState,
    pending: Option<PolicyQuery>,
    /// Identity from EHLO/HELO.
    pub helo_identity: Option<String>,
    /// Whether EHLO (vs HELO) was used.
    pub esmtp: bool,
    /// Accepted reverse path.
    pub mail_from: Option<Option<EmailAddress>>,
    /// Accepted forward paths.
    pub rcpt_to: Vec<EmailAddress>,
    data_buf: Vec<u8>,
}

impl Session {
    /// Create a session; the embedder should first send
    /// [`Session::greeting`].
    pub fn new(hostname: &str) -> Self {
        Session {
            hostname: hostname.to_string(),
            state: SessionState::Connected,
            resume_state: SessionState::Connected,
            pending: None,
            helo_identity: None,
            esmtp: false,
            mail_from: None,
            rcpt_to: Vec::new(),
            data_buf: Vec::new(),
        }
    }

    /// The 220 greeting to send on connect.
    pub fn greeting(&self) -> Reply {
        Reply::greeting(&self.hostname)
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Feed one line from the client (without CRLF).
    pub fn on_line(&mut self, line: &str) -> Action {
        match self.state {
            SessionState::Closed => Action::None,
            SessionState::AwaitingDecision => {
                // Protocol violation by the embedder, not the peer.
                debug_assert!(false, "line fed while awaiting decision");
                Action::None
            }
            SessionState::ReceivingData => self.on_data_line(line),
            _ => self.on_command_line(line),
        }
    }

    fn on_command_line(&mut self, line: &str) -> Action {
        let cmd = match Command::parse(line) {
            Ok(cmd) => cmd,
            Err(CommandError::UnknownCommand(_)) => return Action::Reply(Reply::syntax_error()),
            Err(CommandError::BadArguments(_)) => return Action::Reply(Reply::bad_arguments()),
        };
        match cmd {
            Command::Ehlo(identity) | Command::Helo(identity) => {
                let esmtp = matches!(Command::parse(line), Ok(Command::Ehlo(_)));
                // EHLO resets any transaction in progress (RFC 5321 §4.1.4).
                self.reset_transaction();
                self.suspend(
                    SessionState::Greeted,
                    PolicyQuery::Helo {
                        identity: identity.clone(),
                        esmtp,
                    },
                )
            }
            Command::Mail(from) => {
                if self.state != SessionState::Greeted {
                    return Action::Reply(Reply::bad_sequence());
                }
                self.suspend(SessionState::MailGiven, PolicyQuery::Mail { from })
            }
            Command::Rcpt(to) => {
                if self.state != SessionState::MailGiven && self.state != SessionState::RcptGiven {
                    return Action::Reply(Reply::bad_sequence());
                }
                self.suspend(SessionState::RcptGiven, PolicyQuery::Rcpt { to })
            }
            Command::Data => {
                if self.state != SessionState::RcptGiven {
                    return Action::Reply(Reply::bad_sequence());
                }
                self.suspend(SessionState::ReceivingData, PolicyQuery::Data)
            }
            Command::Rset => {
                self.reset_transaction();
                if self.state != SessionState::Connected {
                    self.state = SessionState::Greeted;
                }
                Action::Reply(Reply::ok())
            }
            Command::Noop => Action::Reply(Reply::ok()),
            Command::Quit => {
                self.state = SessionState::Closed;
                Action::ReplyAndClose(Reply::closing())
            }
            Command::Vrfy(_) => Action::Reply(Reply::new(
                252,
                "Cannot VRFY user, but will accept message and attempt delivery",
            )),
        }
    }

    fn on_data_line(&mut self, line: &str) -> Action {
        if line == "." {
            let raw = crate::mail::dot_unstuff(&std::mem::take(&mut self.data_buf));
            return self.suspend_raw(SessionState::Greeted, PolicyQuery::Message { raw });
        }
        self.data_buf.extend_from_slice(line.as_bytes());
        self.data_buf.extend_from_slice(b"\r\n");
        Action::None
    }

    fn suspend(&mut self, resume_state: SessionState, query: PolicyQuery) -> Action {
        self.suspend_raw(resume_state, query)
    }

    fn suspend_raw(&mut self, resume_state: SessionState, query: PolicyQuery) -> Action {
        self.resume_state = resume_state;
        self.pending = Some(query.clone());
        self.state = SessionState::AwaitingDecision;
        Action::Ask(query)
    }

    /// Resume after a policy decision. Returns the reply to send.
    ///
    /// # Panics
    /// Panics if no decision is pending (embedder bug).
    pub fn on_decision(&mut self, decision: Decision) -> Reply {
        let query = self.pending.take().expect("no policy decision pending");
        let reply = match decision {
            Decision::Accept => match &query {
                PolicyQuery::Helo { identity, esmtp } => {
                    if *esmtp {
                        Reply::multiline(
                            250,
                            vec![
                                format!("{} greets {identity}", self.hostname),
                                "SIZE 26214400".into(),
                                "8BITMIME".into(),
                            ],
                        )
                    } else {
                        Reply::new(250, &format!("{} greets {identity}", self.hostname))
                    }
                }
                PolicyQuery::Data => Reply::start_mail_input(),
                PolicyQuery::Message { .. } => Reply::new(250, "OK: queued"),
                _ => Reply::ok(),
            },
            Decision::AcceptWith(custom) => custom,
            Decision::Reject(reply) | Decision::TempFail(reply) => {
                // Rejected: roll back to the pre-command state.
                self.state = match &query {
                    PolicyQuery::Helo { .. } => SessionState::Connected,
                    PolicyQuery::Mail { .. } => SessionState::Greeted,
                    PolicyQuery::Rcpt { .. } => {
                        if self.rcpt_to.is_empty() {
                            SessionState::MailGiven
                        } else {
                            SessionState::RcptGiven
                        }
                    }
                    PolicyQuery::Data => SessionState::RcptGiven,
                    PolicyQuery::Message { .. } => SessionState::Greeted,
                };
                if matches!(query, PolicyQuery::Message { .. }) {
                    self.reset_transaction();
                }
                return reply;
            }
            Decision::RejectAndClose(reply) => {
                self.state = SessionState::Closed;
                return reply;
            }
        };
        // Accepted: record state effects.
        match query {
            PolicyQuery::Helo { identity, esmtp } => {
                self.helo_identity = Some(identity);
                self.esmtp = esmtp;
            }
            PolicyQuery::Mail { from } => {
                self.mail_from = Some(from);
            }
            PolicyQuery::Rcpt { to } => {
                self.rcpt_to.push(to);
            }
            PolicyQuery::Data => {
                self.data_buf.clear();
            }
            PolicyQuery::Message { .. } => {
                self.reset_transaction();
            }
        }
        self.state = self.resume_state;
        reply
    }

    fn reset_transaction(&mut self) {
        self.mail_from = None;
        self.rcpt_to.clear();
        self.data_buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accept_all(session: &mut Session, line: &str) -> Reply {
        match session.on_line(line) {
            Action::Ask(_) => session.on_decision(Decision::Accept),
            Action::Reply(r) | Action::ReplyAndClose(r) => r,
            Action::None => panic!("no reply for {line}"),
        }
    }

    #[test]
    fn happy_path_delivery() {
        let mut s = Session::new("mx.recipient.test");
        assert_eq!(s.greeting().code, 220);
        assert_eq!(accept_all(&mut s, "EHLO probe.test").code, 250);
        assert_eq!(accept_all(&mut s, "MAIL FROM:<a@sender.test>").code, 250);
        assert_eq!(accept_all(&mut s, "RCPT TO:<b@recipient.test>").code, 250);
        assert_eq!(accept_all(&mut s, "DATA").code, 354);
        assert_eq!(s.on_line("Subject: hi"), Action::None);
        assert_eq!(s.on_line(""), Action::None);
        assert_eq!(s.on_line("body"), Action::None);
        match s.on_line(".") {
            Action::Ask(PolicyQuery::Message { raw }) => {
                assert_eq!(raw, b"Subject: hi\r\n\r\nbody\r\n");
                assert_eq!(s.on_decision(Decision::Accept).code, 250);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.state(), SessionState::Greeted);
        assert_eq!(accept_all(&mut s, "QUIT").code, 221);
        assert_eq!(s.state(), SessionState::Closed);
    }

    #[test]
    fn rejection_at_rcpt_allows_retry() {
        // The probe client's username fallback depends on this: reject one
        // RCPT, accept the next.
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO probe.test");
        accept_all(&mut s, "MAIL FROM:<a@s.test>");
        match s.on_line("RCPT TO:<michael@r.test>") {
            Action::Ask(PolicyQuery::Rcpt { to }) => {
                assert_eq!(to.local, "michael");
                let r = s.on_decision(Decision::Reject(Reply::no_such_user("michael")));
                assert_eq!(r.code, 550);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.state(), SessionState::MailGiven);
        assert_eq!(accept_all(&mut s, "RCPT TO:<postmaster@r.test>").code, 250);
        assert_eq!(s.state(), SessionState::RcptGiven);
    }

    #[test]
    fn rejection_at_mail_with_spam_text() {
        // §6.2: 27% of NotifyMX MTAs rejected with "spam" in the text
        // before DATA.
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO probe.test");
        match s.on_line("MAIL FROM:<a@s.test>") {
            Action::Ask(_) => {
                let r = s.on_decision(Decision::Reject(Reply::new(
                    554,
                    "rejected: sender listed on spam blocklist",
                )));
                assert!(r.text().contains("spam"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.state(), SessionState::Greeted);
    }

    #[test]
    fn tempfail_at_rcpt_rolls_back_like_reject() {
        // Greylisting: the 451 must leave the transaction in a state
        // where the client can RSET and retry the same recipient.
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO probe.test");
        accept_all(&mut s, "MAIL FROM:<a@s.test>");
        match s.on_line("RCPT TO:<postmaster@r.test>") {
            Action::Ask(PolicyQuery::Rcpt { .. }) => {
                let r = s.on_decision(Decision::TempFail(Reply::new(
                    451,
                    "4.7.1 Greylisted, please try again later",
                )));
                assert_eq!(r.code, 451);
                assert!(r.is_transient_failure());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.state(), SessionState::MailGiven);
        assert!(s.rcpt_to.is_empty());
        // The retried transaction goes through.
        assert_eq!(accept_all(&mut s, "RSET").code, 250);
        assert_eq!(accept_all(&mut s, "MAIL FROM:<a@s.test>").code, 250);
        assert_eq!(accept_all(&mut s, "RCPT TO:<postmaster@r.test>").code, 250);
        assert_eq!(s.state(), SessionState::RcptGiven);
    }

    #[test]
    fn sequence_enforcement() {
        let mut s = Session::new("mx.test");
        assert_eq!(
            s.on_line("MAIL FROM:<a@s.test>"),
            Action::Reply(Reply::bad_sequence())
        );
        accept_all(&mut s, "EHLO probe.test");
        assert_eq!(
            s.on_line("RCPT TO:<b@r.test>"),
            Action::Reply(Reply::bad_sequence())
        );
        assert_eq!(s.on_line("DATA"), Action::Reply(Reply::bad_sequence()));
    }

    #[test]
    fn rset_clears_transaction() {
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO probe.test");
        accept_all(&mut s, "MAIL FROM:<a@s.test>");
        accept_all(&mut s, "RCPT TO:<b@r.test>");
        assert_eq!(accept_all(&mut s, "RSET").code, 250);
        assert!(s.mail_from.is_none());
        assert!(s.rcpt_to.is_empty());
        // MAIL works again after RSET.
        assert_eq!(accept_all(&mut s, "MAIL FROM:<c@s.test>").code, 250);
    }

    #[test]
    fn ehlo_restarts_session() {
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO first.test");
        accept_all(&mut s, "MAIL FROM:<a@s.test>");
        accept_all(&mut s, "EHLO second.test");
        assert_eq!(s.helo_identity.as_deref(), Some("second.test"));
        assert!(s.mail_from.is_none());
    }

    #[test]
    fn unknown_command_and_bad_args() {
        let mut s = Session::new("mx.test");
        assert_eq!(s.on_line("XYZZY"), Action::Reply(Reply::syntax_error()));
        assert_eq!(s.on_line("EHLO"), Action::Reply(Reply::bad_arguments()));
    }

    #[test]
    fn dot_stuffed_message_unstuffed() {
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO p.test");
        accept_all(&mut s, "MAIL FROM:<a@s.test>");
        accept_all(&mut s, "RCPT TO:<b@r.test>");
        accept_all(&mut s, "DATA");
        s.on_line("Subject: x");
        s.on_line("");
        s.on_line("..literal dot line");
        match s.on_line(".") {
            Action::Ask(PolicyQuery::Message { raw }) => {
                assert!(raw.ends_with(b".literal dot line\r\n"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn null_sender_accepted() {
        let mut s = Session::new("mx.test");
        accept_all(&mut s, "EHLO p.test");
        match s.on_line("MAIL FROM:<>") {
            Action::Ask(PolicyQuery::Mail { from }) => {
                assert!(from.is_none());
                s.on_decision(Decision::Accept);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.mail_from, Some(None));
    }

    #[test]
    fn helo_vs_ehlo_distinguished() {
        let mut s = Session::new("mx.test");
        match s.on_line("HELO old.test") {
            Action::Ask(PolicyQuery::Helo { esmtp, .. }) => {
                assert!(!esmtp);
                let r = s.on_decision(Decision::Accept);
                assert_eq!(r.lines.len(), 1); // HELO reply is single-line
            }
            other => panic!("{other:?}"),
        }
        assert!(!s.esmtp);
    }
}
