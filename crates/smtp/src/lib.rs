//! # mailval-smtp
//!
//! A from-scratch SMTP implementation (RFC 5321) sized for the paper's
//! methodology:
//!
//! * [`command`] — command grammar (EHLO/HELO, MAIL, RCPT, DATA, RSET,
//!   NOOP, QUIT, VRFY) and mailbox/path parsing.
//! * [`reply`] — reply codes and multiline reply parsing/serialization.
//! * [`mail`] — the Internet Message Format model (RFC 5322): ordered
//!   headers, body, folding/unfolding, dot-stuffing for DATA.
//! * [`server`] — a sans-IO receiving-MTA session state machine with
//!   *suspendable policy decisions*, so the embedding MTA can run SPF /
//!   DKIM / DMARC validation (which needs DNS round trips) in the middle
//!   of the dialogue — exactly the behavior the paper times (§6.2).
//! * [`client`] — a sans-IO sending-client state machine supporting both
//!   the legitimate-delivery mode (NotifyEmail) and the probe mode of
//!   §4.6: 15-second pauses before MAIL/RCPT/DATA, recipient-username
//!   fallback (michael → john.smith → support → postmaster), and
//!   disconnecting after the DATA reply so no message can be delivered.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod command;
pub mod mail;
pub mod reply;
pub mod server;

pub use command::{Command, EmailAddress};
pub use mail::MailMessage;
pub use reply::Reply;
