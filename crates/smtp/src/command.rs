//! SMTP command grammar (RFC 5321 §4.1) and mailbox parsing.

use mailval_dns::Name;
use std::fmt;

/// An email address: local-part @ domain.
///
/// The domain is a DNS [`Name`] because everything the measurement does
/// with addresses is DNS-shaped (the From-domain *is* the SPF identity).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmailAddress {
    /// The local part, case-preserved (RFC 5321 §2.4: local parts are
    /// case-sensitive in principle).
    pub local: String,
    /// The domain.
    pub domain: Name,
}

impl EmailAddress {
    /// Construct from parts.
    pub fn new(local: &str, domain: Name) -> Self {
        EmailAddress {
            local: local.to_string(),
            domain,
        }
    }

    /// Parse `local@domain`. Quoted local parts are not supported (the
    /// measurement only generates dot-atom locals).
    pub fn parse(s: &str) -> Option<EmailAddress> {
        let (local, domain) = s.rsplit_once('@')?;
        if local.is_empty() {
            return None;
        }
        for b in local.bytes() {
            // dot-atom characters (RFC 5322 §3.2.3), pragmatically chosen.
            let ok = b.is_ascii_alphanumeric()
                || matches!(
                    b,
                    b'.' | b'-'
                        | b'_'
                        | b'+'
                        | b'='
                        | b'!'
                        | b'#'
                        | b'$'
                        | b'%'
                        | b'&'
                        | b'\''
                        | b'*'
                        | b'/'
                        | b'?'
                        | b'^'
                        | b'`'
                        | b'{'
                        | b'|'
                        | b'}'
                        | b'~'
                );
            if !ok {
                return None;
            }
        }
        let domain = Name::parse(domain).ok()?;
        if domain.is_root() {
            return None;
        }
        Some(EmailAddress {
            local: local.to_string(),
            domain,
        })
    }
}

impl fmt::Display for EmailAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.local, self.domain)
    }
}

/// A parsed SMTP command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// EHLO with the client's identity (domain or address literal).
    Ehlo(String),
    /// HELO (legacy) with the client's identity.
    Helo(String),
    /// MAIL FROM:<reverse-path>; `None` is the null reverse path `<>`.
    Mail(Option<EmailAddress>),
    /// RCPT TO:<forward-path>.
    Rcpt(EmailAddress),
    /// DATA.
    Data,
    /// RSET.
    Rset,
    /// NOOP.
    Noop,
    /// QUIT.
    Quit,
    /// VRFY (we parse it; servers mostly refuse it).
    Vrfy(String),
}

/// Why a command line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// Verb not recognized.
    UnknownCommand(String),
    /// Verb recognized, arguments malformed.
    BadArguments(&'static str),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::UnknownCommand(verb) => write!(f, "unknown command {verb:?}"),
            CommandError::BadArguments(what) => write!(f, "bad arguments: {what}"),
        }
    }
}

impl std::error::Error for CommandError {}

/// Parse an angle-bracketed path, e.g. `<user@example.com>` or `<>`.
/// Source routes (`<@relay:user@dom>`) are accepted and the route ignored,
/// per RFC 5321 §C.
fn parse_path(s: &str) -> Result<Option<EmailAddress>, CommandError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('<')
        .and_then(|rest| rest.strip_suffix('>'))
        .ok_or(CommandError::BadArguments("path must be angle-bracketed"))?;
    if inner.is_empty() {
        return Ok(None);
    }
    // Strip an optional source route "@a,@b:".
    let inner = match inner.rfind(':') {
        Some(pos) if inner.starts_with('@') => &inner[pos + 1..],
        _ => inner,
    };
    EmailAddress::parse(inner)
        .map(Some)
        .ok_or(CommandError::BadArguments("malformed mailbox"))
}

impl Command {
    /// Parse one command line (without the trailing CRLF).
    /// ESMTP MAIL/RCPT parameters (e.g. `SIZE=123`, `BODY=8BITMIME`) are
    /// accepted and ignored.
    pub fn parse(line: &str) -> Result<Command, CommandError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, args) = match line.find(' ') {
            Some(pos) => (&line[..pos], line[pos + 1..].trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "EHLO" => {
                if args.is_empty() {
                    return Err(CommandError::BadArguments("EHLO requires a domain"));
                }
                Ok(Command::Ehlo(args.to_string()))
            }
            "HELO" => {
                if args.is_empty() {
                    return Err(CommandError::BadArguments("HELO requires a domain"));
                }
                Ok(Command::Helo(args.to_string()))
            }
            "MAIL" => {
                let rest = strip_keyword(args, "FROM:")
                    .ok_or(CommandError::BadArguments("expected FROM:"))?;
                let (path, _params) = split_params(rest);
                Ok(Command::Mail(parse_path(path)?))
            }
            "RCPT" => {
                let rest =
                    strip_keyword(args, "TO:").ok_or(CommandError::BadArguments("expected TO:"))?;
                let (path, _params) = split_params(rest);
                match parse_path(path)? {
                    Some(addr) => Ok(Command::Rcpt(addr)),
                    None => Err(CommandError::BadArguments("RCPT path cannot be null")),
                }
            }
            "DATA" => Ok(Command::Data),
            "RSET" => Ok(Command::Rset),
            "NOOP" => Ok(Command::Noop),
            "QUIT" => Ok(Command::Quit),
            "VRFY" => Ok(Command::Vrfy(args.to_string())),
            other => Err(CommandError::UnknownCommand(other.to_string())),
        }
    }

    /// Serialize to a wire line (without CRLF).
    pub fn to_line(&self) -> String {
        match self {
            Command::Ehlo(d) => format!("EHLO {d}"),
            Command::Helo(d) => format!("HELO {d}"),
            Command::Mail(None) => "MAIL FROM:<>".to_string(),
            Command::Mail(Some(a)) => format!("MAIL FROM:<{a}>"),
            Command::Rcpt(a) => format!("RCPT TO:<{a}>"),
            Command::Data => "DATA".to_string(),
            Command::Rset => "RSET".to_string(),
            Command::Noop => "NOOP".to_string(),
            Command::Quit => "QUIT".to_string(),
            Command::Vrfy(who) => format!("VRFY {who}"),
        }
    }
}

/// Case-insensitively strip a leading keyword (e.g. `FROM:`); tolerate
/// optional whitespace after the colon (seen in the wild).
fn strip_keyword<'a>(s: &'a str, keyword: &str) -> Option<&'a str> {
    if s.len() < keyword.len() {
        return None;
    }
    let (head, tail) = s.split_at(keyword.len());
    if head.eq_ignore_ascii_case(keyword) {
        Some(tail.trim_start())
    } else {
        None
    }
}

/// Split `<path> param1 param2 ...` into the path and parameter tail.
fn split_params(s: &str) -> (&str, &str) {
    // The path ends at the first '>' (or at the first space for robustness).
    if let Some(pos) = s.find('>') {
        (&s[..=pos], s[pos + 1..].trim())
    } else {
        match s.find(' ') {
            Some(pos) => (&s[..pos], s[pos + 1..].trim()),
            None => (s, ""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> EmailAddress {
        EmailAddress::parse(s).unwrap()
    }

    #[test]
    fn parse_addresses() {
        let a = addr("spf-test@t01.m5.spf-test.dns-lab.org");
        assert_eq!(a.local, "spf-test");
        assert_eq!(
            a.domain,
            Name::parse("t01.m5.spf-test.dns-lab.org").unwrap()
        );
        assert!(EmailAddress::parse("no-at-sign").is_none());
        assert!(EmailAddress::parse("@nodomain").is_none());
        assert!(EmailAddress::parse("a@").is_none());
        assert!(EmailAddress::parse("sp ace@x.test").is_none());
        assert_eq!(addr("john.smith+tag@x.test").local, "john.smith+tag");
    }

    #[test]
    fn parse_basic_commands() {
        assert_eq!(
            Command::parse("EHLO probe.dns-lab.org").unwrap(),
            Command::Ehlo("probe.dns-lab.org".into())
        );
        assert_eq!(
            Command::parse("helo legacy.test").unwrap(),
            Command::Helo("legacy.test".into())
        );
        assert_eq!(Command::parse("DATA").unwrap(), Command::Data);
        assert_eq!(Command::parse("QUIT").unwrap(), Command::Quit);
        assert_eq!(Command::parse("RSET").unwrap(), Command::Rset);
        assert_eq!(Command::parse("NOOP").unwrap(), Command::Noop);
    }

    #[test]
    fn parse_mail_variants() {
        assert_eq!(
            Command::parse("MAIL FROM:<a@b.test>").unwrap(),
            Command::Mail(Some(addr("a@b.test")))
        );
        assert_eq!(Command::parse("MAIL FROM:<>").unwrap(), Command::Mail(None));
        // Case-insensitive verb/keyword and space after colon.
        assert_eq!(
            Command::parse("mail from: <a@b.test>").unwrap(),
            Command::Mail(Some(addr("a@b.test")))
        );
        // ESMTP parameters ignored.
        assert_eq!(
            Command::parse("MAIL FROM:<a@b.test> SIZE=1024 BODY=8BITMIME").unwrap(),
            Command::Mail(Some(addr("a@b.test")))
        );
        // Source route stripped.
        assert_eq!(
            Command::parse("MAIL FROM:<@relay.test:a@b.test>").unwrap(),
            Command::Mail(Some(addr("a@b.test")))
        );
    }

    #[test]
    fn parse_rcpt() {
        assert_eq!(
            Command::parse("RCPT TO:<postmaster@b.test>").unwrap(),
            Command::Rcpt(addr("postmaster@b.test"))
        );
        assert!(Command::parse("RCPT TO:<>").is_err());
        assert!(Command::parse("RCPT <a@b.test>").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Command::parse("FROB x"),
            Err(CommandError::UnknownCommand(_))
        ));
        assert!(Command::parse("EHLO").is_err());
        assert!(Command::parse("MAIL FROM:a@b.test").is_err()); // no brackets
    }

    #[test]
    fn roundtrip_lines() {
        for line in [
            "EHLO probe.test",
            "HELO probe.test",
            "MAIL FROM:<a@b.test>",
            "MAIL FROM:<>",
            "RCPT TO:<c@d.test>",
            "DATA",
            "RSET",
            "NOOP",
            "QUIT",
        ] {
            let cmd = Command::parse(line).unwrap();
            assert_eq!(Command::parse(&cmd.to_line()).unwrap(), cmd);
        }
    }
}
