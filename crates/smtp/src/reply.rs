//! SMTP replies (RFC 5321 §4.2): three-digit codes with one or more text
//! lines.

use std::fmt;

/// A complete (possibly multiline) SMTP reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Three-digit reply code.
    pub code: u16,
    /// Text lines (at least one, possibly empty).
    pub lines: Vec<String>,
}

impl Reply {
    /// Single-line reply.
    pub fn new(code: u16, text: &str) -> Reply {
        Reply {
            code,
            lines: vec![text.to_string()],
        }
    }

    /// Multiline reply.
    pub fn multiline(code: u16, lines: Vec<String>) -> Reply {
        assert!(!lines.is_empty());
        Reply { code, lines }
    }

    /// 2xx success.
    pub fn is_positive(&self) -> bool {
        (200..300).contains(&self.code)
    }

    /// 3xx intermediate (e.g. 354 after DATA).
    pub fn is_intermediate(&self) -> bool {
        (300..400).contains(&self.code)
    }

    /// 4xx transient failure.
    pub fn is_transient_failure(&self) -> bool {
        (400..500).contains(&self.code)
    }

    /// 5xx permanent failure.
    pub fn is_permanent_failure(&self) -> bool {
        (500..600).contains(&self.code)
    }

    /// All text joined with spaces (for substring matching, e.g. the
    /// paper's grep for "spam"/"blacklist" in rejection messages, §6.2).
    pub fn text(&self) -> String {
        self.lines.join(" ")
    }

    /// Serialize to wire lines including CRLFs.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (i, line) in self.lines.iter().enumerate() {
            let sep = if i + 1 == self.lines.len() { ' ' } else { '-' };
            out.push_str(&format!("{}{}{}\r\n", self.code, sep, line));
        }
        out
    }

    // Common canned replies -------------------------------------------------

    /// 220 service ready greeting.
    pub fn greeting(host: &str) -> Reply {
        Reply::new(220, &format!("{host} ESMTP ready"))
    }

    /// 250 OK.
    pub fn ok() -> Reply {
        Reply::new(250, "OK")
    }

    /// 354 start mail input.
    pub fn start_mail_input() -> Reply {
        Reply::new(354, "Start mail input; end with <CRLF>.<CRLF>")
    }

    /// 221 closing.
    pub fn closing() -> Reply {
        Reply::new(221, "Bye")
    }

    /// 500 syntax error.
    pub fn syntax_error() -> Reply {
        Reply::new(500, "Syntax error, command unrecognized")
    }

    /// 501 bad arguments.
    pub fn bad_arguments() -> Reply {
        Reply::new(501, "Syntax error in parameters or arguments")
    }

    /// 503 bad sequence.
    pub fn bad_sequence() -> Reply {
        Reply::new(503, "Bad sequence of commands")
    }

    /// 550 mailbox unavailable (the "invalid recipient" rejection the
    /// paper encountered for 6.4% of TwoWeekMX MTAs).
    pub fn no_such_user(who: &str) -> Reply {
        Reply::new(550, &format!("No such user: {who}"))
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.text())
    }
}

/// Maximum accepted reply-line length, bytes, excluding CRLF (RFC 5321
/// §4.5.3.1.5 sets the reply-line limit at 512 octets *including* CRLF;
/// we allow the full 512 after stripping it, a hair permissive).
pub const MAX_REPLY_LINE_LEN: usize = 512;
/// Maximum continuation lines accepted in one multiline reply. The RFC
/// sets no bound; real EHLO responses stay in the tens, and without a
/// cap a hostile server can grow the parser's buffer without limit.
pub const MAX_REPLY_LINES: usize = 64;

/// Incremental parser assembling (possibly multiline) replies from lines.
#[derive(Debug, Default)]
pub struct ReplyParser {
    code: Option<u16>,
    lines: Vec<String>,
}

/// Errors from [`ReplyParser::push_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyParseError {
    /// Line shorter than 3 characters or non-digit code.
    BadFormat,
    /// Continuation line code differs from the first line's code.
    CodeMismatch,
    /// Line longer than [`MAX_REPLY_LINE_LEN`] bytes.
    LineTooLong,
    /// More than [`MAX_REPLY_LINES`] lines in one multiline reply.
    TooManyLines,
    /// Line containing an embedded NUL or a bare CR (a CR not part of
    /// the stripped line terminator).
    BadChar,
}

impl fmt::Display for ReplyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplyParseError::BadFormat => write!(f, "malformed reply line"),
            ReplyParseError::CodeMismatch => write!(f, "continuation code mismatch"),
            ReplyParseError::LineTooLong => {
                write!(f, "reply line over {MAX_REPLY_LINE_LEN} bytes")
            }
            ReplyParseError::TooManyLines => {
                write!(f, "multiline reply over {MAX_REPLY_LINES} lines")
            }
            ReplyParseError::BadChar => {
                write!(f, "reply line contains NUL or bare CR")
            }
        }
    }
}

impl std::error::Error for ReplyParseError {}

impl ReplyParser {
    /// New empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one line (without CRLF). Returns `Some(reply)` when a complete
    /// reply has been assembled.
    ///
    /// Any error discards the partially-assembled reply and resets the
    /// parser — in particular the [`ReplyParseError::LineTooLong`] and
    /// [`ReplyParseError::TooManyLines`] limits, which exist so a
    /// hostile peer cannot grow this buffer without bound.
    pub fn push_line(&mut self, line: &str) -> Result<Option<Reply>, ReplyParseError> {
        let line = line.trim_end_matches(['\r', '\n']);
        // Embedded NULs and bare CRs survive the terminator strip above;
        // both are hostile framing games (header smuggling, log
        // injection) and the reply is refused outright.
        if line.bytes().any(|b| b == 0 || b == b'\r') {
            return Err(self.fail(ReplyParseError::BadChar));
        }
        if line.len() < 3 {
            return Err(self.fail(ReplyParseError::BadFormat));
        }
        if line.len() > MAX_REPLY_LINE_LEN {
            return Err(self.fail(ReplyParseError::LineTooLong));
        }
        // Byte-sliced (`line.len()` counts bytes), so index with `get`:
        // a multibyte char straddling byte 3 must be a parse error, not
        // a char-boundary panic.
        let Some(code) = line.get(..3).and_then(|c| c.parse::<u16>().ok()) else {
            return Err(self.fail(ReplyParseError::BadFormat));
        };
        if !(200..=599).contains(&code) && !(100..200).contains(&code) {
            return Err(self.fail(ReplyParseError::BadFormat));
        }
        if let Some(expected) = self.code {
            if code != expected {
                return Err(self.fail(ReplyParseError::CodeMismatch));
            }
        } else {
            self.code = Some(code);
        }
        if self.lines.len() >= MAX_REPLY_LINES {
            return Err(self.fail(ReplyParseError::TooManyLines));
        }
        let (is_final, text) = match line.as_bytes().get(3) {
            None => (true, ""),
            Some(b' ') => (true, &line[4..]),
            Some(b'-') => (false, &line[4..]),
            Some(_) => return Err(self.fail(ReplyParseError::BadFormat)),
        };
        self.lines.push(text.to_string());
        if is_final {
            let reply = Reply {
                code,
                lines: std::mem::take(&mut self.lines),
            };
            self.code = None;
            Ok(Some(reply))
        } else {
            Ok(None)
        }
    }

    /// Reset the in-progress reply and pass the error through (frees any
    /// buffered lines so errors cannot be used to pin memory).
    fn fail(&mut self, err: ReplyParseError) -> ReplyParseError {
        self.code = None;
        self.lines = Vec::new();
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_roundtrip() {
        let r = Reply::new(250, "OK");
        assert_eq!(r.to_wire(), "250 OK\r\n");
        let mut p = ReplyParser::new();
        assert_eq!(p.push_line("250 OK").unwrap(), Some(r));
    }

    #[test]
    fn multiline_roundtrip() {
        let r = Reply::multiline(
            250,
            vec![
                "mx.test greets you".into(),
                "SIZE 1000000".into(),
                "8BITMIME".into(),
            ],
        );
        let wire = r.to_wire();
        assert_eq!(
            wire,
            "250-mx.test greets you\r\n250-SIZE 1000000\r\n250 8BITMIME\r\n"
        );
        let mut p = ReplyParser::new();
        let mut result = None;
        for line in wire.lines() {
            result = p.push_line(line).unwrap();
        }
        assert_eq!(result, Some(r));
    }

    #[test]
    fn multibyte_code_prefix_is_bad_format_not_a_panic() {
        // `len()` counts bytes, so a multibyte char straddling byte 3
        // used to panic the code slice; it must be a clean BadFormat.
        let mut p = ReplyParser::new();
        assert_eq!(
            p.push_line("2\u{fffd} hostile"),
            Err(ReplyParseError::BadFormat)
        );
        assert_eq!(
            p.push_line("\u{fffd}\u{fffd}"),
            Err(ReplyParseError::BadFormat)
        );
        assert_eq!(p.push_line("250 OK").unwrap(), Some(Reply::new(250, "OK")));
    }

    #[test]
    fn code_classes() {
        assert!(Reply::new(250, "").is_positive());
        assert!(Reply::new(354, "").is_intermediate());
        assert!(Reply::new(451, "").is_transient_failure());
        assert!(Reply::new(550, "").is_permanent_failure());
    }

    #[test]
    fn parser_rejects_garbage() {
        let mut p = ReplyParser::new();
        assert!(p.push_line("hi").is_err());
        assert!(p.push_line("abc hello").is_err());
        assert!(p.push_line("250#x").is_err());
    }

    #[test]
    fn parser_rejects_code_mismatch() {
        let mut p = ReplyParser::new();
        assert_eq!(p.push_line("250-first").unwrap(), None);
        assert_eq!(
            p.push_line("251 second"),
            Err(ReplyParseError::CodeMismatch)
        );
    }

    #[test]
    fn bare_code_line() {
        let mut p = ReplyParser::new();
        let r = p.push_line("354").unwrap().unwrap();
        assert_eq!(r.code, 354);
        assert_eq!(r.lines, vec![String::new()]);
    }

    #[test]
    fn text_join_for_matching() {
        let r = Reply::multiline(554, vec!["rejected:".into(), "listed on spam RBL".into()]);
        assert!(r.text().to_ascii_lowercase().contains("spam"));
    }

    #[test]
    fn parser_rejects_nul_and_bare_cr() {
        let mut p = ReplyParser::new();
        assert_eq!(p.push_line("250 O\0K"), Err(ReplyParseError::BadChar));
        assert_eq!(p.push_line("250 O\rK"), Err(ReplyParseError::BadChar));
        assert_eq!(p.push_line("2\x005 OK"), Err(ReplyParseError::BadChar));
        // A trailing CR is the stripped line terminator, not hostile.
        assert_eq!(p.push_line("250 OK\r").unwrap(), Some(Reply::ok()));
        // A bad char mid-multiline discards the buffered reply.
        assert_eq!(p.push_line("250-first").unwrap(), None);
        assert_eq!(p.push_line("250-b\0d"), Err(ReplyParseError::BadChar));
        assert_eq!(p.push_line("220 fresh").unwrap().unwrap().code, 220);
    }

    #[test]
    fn parser_rejects_garbage_bytes_exhaustively() {
        // Every single-byte splice into the code position of a valid
        // line must yield a clean error or a (different) valid reply —
        // never a panic. Sweeps the full byte range.
        for b in 0u8..=255 {
            let mut line = b"250 hello".to_vec();
            line[1] = b;
            let mut p = ReplyParser::new();
            if let Ok(s) = std::str::from_utf8(&line) {
                let _ = p.push_line(s); // must not panic
            }
            // And spliced into the text region.
            let mut line = b"250 hello".to_vec();
            line[6] = b;
            if let Ok(s) = std::str::from_utf8(&line) {
                let _ = p.push_line(s);
            }
        }
    }

    #[test]
    fn parser_rejects_mixed_code_multiline() {
        // A mid-dialogue code switch inside one multiline reply must
        // drop the whole reply, whatever direction the switch goes.
        for (first, second) in [
            ("250-greeting", "550 switched"),
            ("550-rejected", "250 switched"),
            ("250-a", "251-b"),
        ] {
            let mut p = ReplyParser::new();
            assert_eq!(p.push_line(first).unwrap(), None);
            assert_eq!(
                p.push_line(second),
                Err(ReplyParseError::CodeMismatch),
                "{first} then {second}"
            );
            // Parser must have recovered.
            assert_eq!(p.push_line("250 OK").unwrap(), Some(Reply::ok()));
        }
    }

    #[test]
    fn parser_caps_line_length() {
        let mut p = ReplyParser::new();
        // Exactly at the limit: accepted.
        let max_text = "x".repeat(MAX_REPLY_LINE_LEN - 4);
        let ok = p.push_line(&format!("250 {max_text}")).unwrap().unwrap();
        assert_eq!(ok.lines[0].len(), MAX_REPLY_LINE_LEN - 4);
        // One byte over: rejected, not truncated.
        let over = format!("250 {}x", max_text);
        assert_eq!(p.push_line(&over), Err(ReplyParseError::LineTooLong));
        // The parser recovered and accepts a fresh reply.
        assert_eq!(p.push_line("250 OK").unwrap(), Some(Reply::ok()));
    }

    #[test]
    fn parser_caps_continuation_lines() {
        // A hostile server streaming endless `250-` continuations must
        // hit the cap instead of growing memory without bound.
        let mut p = ReplyParser::new();
        for i in 0..MAX_REPLY_LINES {
            assert_eq!(p.push_line(&format!("250-line {i}")).unwrap(), None);
        }
        assert_eq!(
            p.push_line("250-one too many"),
            Err(ReplyParseError::TooManyLines)
        );
        // Error path resets the parser: the buffered lines are gone and a
        // complete reply parses from scratch.
        assert_eq!(p.push_line("220 fresh").unwrap().unwrap().code, 220);
    }

    #[test]
    fn parser_accepts_full_multiline_at_cap() {
        let mut p = ReplyParser::new();
        for i in 0..MAX_REPLY_LINES - 1 {
            assert_eq!(p.push_line(&format!("250-line {i}")).unwrap(), None);
        }
        let r = p.push_line("250 final").unwrap().unwrap();
        assert_eq!(r.lines.len(), MAX_REPLY_LINES);
    }
}
