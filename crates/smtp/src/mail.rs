//! Internet Message Format (RFC 5322) model.
//!
//! Headers preserve their *raw* on-the-wire value bytes (including folding
//! whitespace) because DKIM canonicalization (RFC 6376 §3.4) is defined
//! over the original header octets — re-serializing from a parsed model
//! would break signatures.

use std::fmt;

/// One header field. The original line is `"{name}:{raw_value}"` — the
/// raw value keeps its leading whitespace and any folded continuation
/// lines (joined with CRLF + WSP, exactly as received).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderField {
    /// Field name as received (case preserved; matching is
    /// case-insensitive).
    pub name: String,
    /// Everything after the colon, unmodified.
    pub raw_value: String,
}

impl HeaderField {
    /// Build a field from a name and a logical value (a single space is
    /// inserted after the colon).
    pub fn new(name: &str, value: &str) -> Self {
        HeaderField {
            name: name.to_string(),
            raw_value: format!(" {value}"),
        }
    }

    /// The unfolded, trimmed logical value.
    pub fn value(&self) -> String {
        unfold(&self.raw_value).trim().to_string()
    }

    /// The original wire line (without trailing CRLF).
    pub fn to_line(&self) -> String {
        format!("{}:{}", self.name, self.raw_value)
    }
}

/// Replace folding (CRLF followed by WSP) with the WSP alone.
pub fn unfold(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\r'
            && i + 2 < bytes.len()
            && bytes[i + 1] == b'\n'
            && (bytes[i + 2] == b' ' || bytes[i + 2] == b'\t')
        {
            i += 2; // drop CRLF, keep the WSP
        } else if bytes[i] == b'\n'
            && i + 1 < bytes.len()
            && (bytes[i + 1] == b' ' || bytes[i + 1] == b'\t')
        {
            i += 1; // tolerate bare LF folding
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MailParseError {
    /// A header line had no colon and was not a continuation.
    MalformedHeader(usize),
    /// Message is not ASCII-compatible enough to process.
    NotText,
}

impl fmt::Display for MailParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MailParseError::MalformedHeader(i) => write!(f, "malformed header at line {i}"),
            MailParseError::NotText => write!(f, "message is not text"),
        }
    }
}

impl std::error::Error for MailParseError {}

/// A parsed (or composed) message: ordered headers plus raw body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MailMessage {
    /// Header fields in order of appearance.
    pub headers: Vec<HeaderField>,
    /// Raw body bytes (CRLF line endings).
    pub body: Vec<u8>,
}

impl MailMessage {
    /// Empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse from raw bytes. Accepts CRLF or bare-LF line endings; the
    /// header/body boundary is the first empty line.
    pub fn parse(raw: &[u8]) -> Result<MailMessage, MailParseError> {
        let text = std::str::from_utf8(raw).map_err(|_| MailParseError::NotText)?;
        let mut headers: Vec<HeaderField> = Vec::new();
        let mut pos = 0usize;
        let mut line_no = 0usize;
        let bytes = text.as_bytes();
        loop {
            let line_end = match text[pos..].find('\n') {
                Some(off) => pos + off,
                None => text.len(),
            };
            let mut line = &text[pos..line_end];
            if line.ends_with('\r') {
                line = &line[..line.len() - 1];
            }
            line_no += 1;
            if line.is_empty() {
                // End of headers; the body starts after this line.
                pos = (line_end + 1).min(text.len());
                break;
            }
            if line.starts_with(' ') || line.starts_with('\t') {
                // Folded continuation of the previous header.
                match headers.last_mut() {
                    Some(prev) => {
                        prev.raw_value.push_str("\r\n");
                        prev.raw_value.push_str(line);
                    }
                    None => return Err(MailParseError::MalformedHeader(line_no)),
                }
            } else {
                let colon = line
                    .find(':')
                    .ok_or(MailParseError::MalformedHeader(line_no))?;
                headers.push(HeaderField {
                    name: line[..colon].to_string(),
                    raw_value: line[colon + 1..].to_string(),
                });
            }
            if line_end == text.len() {
                // Headers ran to EOF with no body separator.
                pos = text.len();
                break;
            }
            pos = line_end + 1;
        }
        Ok(MailMessage {
            headers,
            body: bytes[pos..].to_vec(),
        })
    }

    /// Serialize to wire bytes (headers, blank line, body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for h in &self.headers {
            out.extend_from_slice(h.to_line().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// First header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&HeaderField> {
        self.headers
            .iter()
            .find(|h| h.name.eq_ignore_ascii_case(name))
    }

    /// All headers with this name, in order.
    pub fn headers_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a HeaderField> {
        self.headers
            .iter()
            .filter(move |h| h.name.eq_ignore_ascii_case(name))
    }

    /// Append a header (composition).
    pub fn add_header(&mut self, name: &str, value: &str) {
        self.headers.push(HeaderField::new(name, value));
    }

    /// Prepend a header (trace fields like Received / DKIM-Signature are
    /// prepended, RFC 5321 §4.1.1.4).
    pub fn prepend_header(&mut self, name: &str, value: &str) {
        self.headers.insert(0, HeaderField::new(name, value));
    }

    /// Set the body from a string, normalizing line endings to CRLF.
    pub fn set_body_text(&mut self, text: &str) {
        let normalized = text.replace("\r\n", "\n").replace('\n', "\r\n");
        self.body = normalized.into_bytes();
    }
}

/// Dot-stuff a body for DATA transmission (RFC 5321 §4.5.2): a leading
/// '.' on a line gets doubled. The terminating `CRLF.CRLF` is *not*
/// appended here.
pub fn dot_stuff(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    let mut at_line_start = true;
    for &b in body {
        if at_line_start && b == b'.' {
            out.push(b'.');
        }
        out.push(b);
        at_line_start = b == b'\n';
    }
    out
}

/// Reverse of [`dot_stuff`].
pub fn dot_unstuff(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut at_line_start = true;
    let mut iter = data.iter().peekable();
    while let Some(&b) = iter.next() {
        if at_line_start && b == b'.' {
            if let Some(&&next) = iter.peek() {
                if next != b'\r' && next != b'\n' {
                    // Stuffed dot: skip it, emit the rest of the line.
                    at_line_start = false;
                    continue;
                }
            }
        }
        out.push(b);
        at_line_start = b == b'\n';
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &[u8] = b"From: Notifier <spf-test@d1.dsav-mail.dns-lab.org>\r\n\
Reply-To: research@dns-lab.org\r\n\
Subject: Network notification\r\n\
X-Folded: first part\r\n\tsecond part\r\n\
\r\n\
Dear operator,\r\nYour network has an issue.\r\n";

    #[test]
    fn parse_headers_and_body() {
        let msg = MailMessage::parse(SAMPLE).unwrap();
        assert_eq!(msg.headers.len(), 4);
        assert_eq!(
            msg.header("subject").unwrap().value(),
            "Network notification"
        );
        assert_eq!(
            msg.header("X-FOLDED").unwrap().value(),
            "first part\tsecond part"
        );
        assert!(msg.body.starts_with(b"Dear operator,"));
    }

    #[test]
    fn roundtrip_preserves_bytes() {
        let msg = MailMessage::parse(SAMPLE).unwrap();
        assert_eq!(msg.to_bytes(), SAMPLE);
    }

    #[test]
    fn parse_tolerates_bare_lf() {
        let msg = MailMessage::parse(b"A: 1\nB: 2\n\nbody\n").unwrap();
        assert_eq!(msg.headers.len(), 2);
        assert_eq!(msg.header("b").unwrap().value(), "2");
        assert_eq!(msg.body, b"body\n");
    }

    #[test]
    fn parse_headers_only() {
        let msg = MailMessage::parse(b"A: 1\r\n").unwrap();
        assert_eq!(msg.headers.len(), 1);
        assert!(msg.body.is_empty());
    }

    #[test]
    fn malformed_header_rejected() {
        assert!(MailMessage::parse(b"not a header\r\n\r\n").is_err());
        assert!(MailMessage::parse(b" leading continuation\r\n\r\n").is_err());
    }

    #[test]
    fn header_ordering_and_duplicates() {
        let mut msg = MailMessage::new();
        msg.add_header("Received", "hop2");
        msg.prepend_header("Received", "hop1");
        let values: Vec<String> = msg.headers_named("received").map(|h| h.value()).collect();
        assert_eq!(values, vec!["hop1", "hop2"]);
    }

    #[test]
    fn dot_stuffing_roundtrip() {
        let body = b".leading dot\r\nnormal\r\n..double\r\n.\r\n";
        let stuffed = dot_stuff(body);
        assert_eq!(
            stuffed,
            b"..leading dot\r\nnormal\r\n...double\r\n..\r\n".to_vec()
        );
        assert_eq!(dot_unstuff(&stuffed), body.to_vec());
    }

    #[test]
    fn set_body_normalizes_newlines() {
        let mut msg = MailMessage::new();
        msg.set_body_text("line1\nline2\r\nline3");
        assert_eq!(msg.body, b"line1\r\nline2\r\nline3");
    }

    #[test]
    fn unfold_variants() {
        assert_eq!(unfold("a\r\n b"), "a b");
        assert_eq!(unfold("a\r\n\tb"), "a\tb");
        assert_eq!(unfold("a\n b"), "a b");
        assert_eq!(unfold("a\r\nb"), "a\r\nb"); // not folding: no WSP
    }
}
