//! DNS wire format (RFC 1035 §4): header, questions, resource records,
//! name compression and decompression.
//!
//! The encoder performs standard suffix compression (every encoded name
//! suffix at an offset < 0x4000 is remembered and reused as a pointer).
//! The decoder follows compression pointers with strict loop protection:
//! pointers must point strictly backwards, bounding the walk.

use crate::message::{Message, Question};
use crate::name::{Name, MAX_LABEL_LEN};
use crate::rr::{RData, Record, RecordClass, RecordType, SoaData};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Response codes (RFC 1035 §4.1.1, names per RFC 2136 usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    /// 4-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0xf,
        }
    }

    /// From a 4-bit wire code.
    pub fn from_code(code: u8) -> Self {
        match code & 0xf {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            c => Rcode::Other(c),
        }
    }
}

/// Errors decoding (or encoding) wire-format messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran off the end of the buffer.
    Truncated,
    /// A compression pointer pointed forwards or at itself.
    BadPointer,
    /// A label exceeded 63 bytes or used a reserved length prefix.
    BadLabel,
    /// A decompressed name exceeded 255 bytes.
    NameTooLong,
    /// RDATA length did not match its contents.
    BadRdataLength,
    /// A name contained bytes we refuse to process.
    BadName,
    /// A TXT character-string exceeded 255 bytes (its length prefix is
    /// a single byte; encoding it would silently corrupt the message).
    TxtTooLong,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            WireError::Truncated => "message truncated",
            WireError::BadPointer => "bad compression pointer",
            WireError::BadLabel => "bad label",
            WireError::NameTooLong => "name too long",
            WireError::BadRdataLength => "rdata length mismatch",
            WireError::BadName => "invalid name contents",
            WireError::TxtTooLong => "TXT character-string over 255 bytes",
        };
        write!(f, "{what}")
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Streaming encoder with name compression.
pub struct Encoder {
    buf: Vec<u8>,
    /// Map from a name's presentation form to the offset of its first
    /// occurrence, for compression pointers.
    name_offsets: HashMap<String, usize>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(512),
            name_offsets: HashMap::new(),
        }
    }

    /// Create an encoder that reuses `buf`'s allocation (cleared). Lets
    /// a hot encode loop amortize the output buffer across messages.
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Encoder {
            buf,
            name_offsets: HashMap::new(),
        }
    }

    /// Finish, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Encode a name with compression.
    ///
    /// Fails with [`WireError::BadLabel`] on a label over
    /// [`MAX_LABEL_LEN`] bytes: the length prefix is a single byte with
    /// the top two bits reserved for compression pointers, so an
    /// oversized label cannot be represented — truncating it (what an
    /// unchecked `as u8` cast would do) would silently corrupt the
    /// message.
    pub fn put_name(&mut self, name: &Name) -> Result<(), WireError> {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix: Vec<&str> = labels[i..].iter().map(|s| s.as_str()).collect();
            let key = suffix.join(".");
            if let Some(&off) = self.name_offsets.get(&key) {
                // Emit a pointer to the previously-encoded suffix.
                self.put_u16(0xc000 | off as u16);
                return Ok(());
            }
            if self.buf.len() < 0x3fff {
                self.name_offsets.insert(key, self.buf.len());
            }
            let label = &labels[i];
            if label.len() > MAX_LABEL_LEN {
                return Err(WireError::BadLabel);
            }
            self.put_u8(label.len() as u8);
            self.buf.extend_from_slice(label.as_bytes());
        }
        self.put_u8(0);
        Ok(())
    }

    /// Encode a name without compression (required inside RDATA of types
    /// that some implementations won't decompress; we compress only
    /// NS/CNAME/PTR/MX/SOA names which RFC 3597 grandfathers). Same
    /// label-length failure mode as [`Encoder::put_name`].
    pub fn put_name_uncompressed(&mut self, name: &Name) -> Result<(), WireError> {
        for label in name.labels() {
            if label.len() > MAX_LABEL_LEN {
                return Err(WireError::BadLabel);
            }
            self.put_u8(label.len() as u8);
            self.buf.extend_from_slice(label.as_bytes());
        }
        self.put_u8(0);
        Ok(())
    }

    fn put_question(&mut self, q: &Question) -> Result<(), WireError> {
        self.put_name(&q.name)?;
        self.put_u16(q.rtype.code());
        self.put_u16(q.class.code());
        Ok(())
    }

    fn put_record(&mut self, r: &Record) -> Result<(), WireError> {
        self.put_name(&r.name)?;
        self.put_u16(r.rtype().code());
        self.put_u16(r.class.code());
        self.put_u32(r.ttl);
        // Reserve rdlength, fill after encoding rdata.
        let len_pos = self.buf.len();
        self.put_u16(0);
        let start = self.buf.len();
        match &r.rdata {
            RData::A(ip) => self.buf.extend_from_slice(&ip.octets()),
            RData::Aaaa(ip) => self.buf.extend_from_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => self.put_name(n)?,
            RData::Mx {
                preference,
                exchange,
            } => {
                self.put_u16(*preference);
                self.put_name(exchange)?;
            }
            RData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::TxtTooLong);
                    }
                    self.put_u8(s.len() as u8);
                    self.buf.extend_from_slice(s);
                }
            }
            RData::Soa(soa) => {
                self.put_name(&soa.mname)?;
                self.put_name(&soa.rname)?;
                self.put_u32(soa.serial);
                self.put_u32(soa.refresh);
                self.put_u32(soa.retry);
                self.put_u32(soa.expire);
                self.put_u32(soa.minimum);
            }
            RData::Opt(bytes) | RData::Other(bytes) => self.buf.extend_from_slice(bytes),
        }
        let rdlen = (self.buf.len() - start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        Ok(())
    }
}

/// Encode a complete message to wire format. Fails if any name label or
/// TXT character-string cannot be represented (see
/// [`Encoder::put_name`]); a `Message` built from validated [`Name`]s
/// and [`RData::txt_from_str`] chunks always encodes.
pub fn encode_message(msg: &Message) -> Result<Vec<u8>, WireError> {
    encode_message_with(msg, Vec::with_capacity(512))
}

/// [`encode_message`] reusing `buf`'s allocation for the output.
pub fn encode_message_with(msg: &Message, buf: Vec<u8>) -> Result<Vec<u8>, WireError> {
    let mut enc = Encoder::with_buf(buf);
    enc.put_u16(msg.id);
    let mut flags: u16 = 0;
    if msg.is_response {
        flags |= 0x8000;
    }
    flags |= ((msg.opcode & 0xf) as u16) << 11;
    if msg.authoritative {
        flags |= 0x0400;
    }
    if msg.truncated {
        flags |= 0x0200;
    }
    if msg.recursion_desired {
        flags |= 0x0100;
    }
    if msg.recursion_available {
        flags |= 0x0080;
    }
    flags |= msg.rcode.code() as u16;
    enc.put_u16(flags);
    enc.put_u16(msg.questions.len() as u16);
    enc.put_u16(msg.answers.len() as u16);
    enc.put_u16(msg.authorities.len() as u16);
    enc.put_u16(msg.additionals.len() as u16);
    for q in &msg.questions {
        enc.put_question(q)?;
    }
    for r in &msg.answers {
        enc.put_record(r)?;
    }
    for r in &msg.authorities {
        enc.put_record(r)?;
    }
    for r in &msg.additionals {
        enc.put_record(r)?;
    }
    Ok(enc.into_bytes())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(((self.get_u8()? as u16) << 8) | self.get_u8()? as u16)
    }

    fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(((self.get_u16()? as u32) << 16) | self.get_u16()? as u32)
    }

    fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Decode a (possibly compressed) name starting at the current
    /// position. Pointers must point strictly backwards.
    fn get_name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut wire_len = 1usize; // terminating zero
        let mut pos = self.pos;
        // `end` is where parsing resumes after the name: set at the first
        // pointer encountered (or after the terminating zero if none).
        let mut resume: Option<usize> = None;
        // Strictly-decreasing pointer targets bound the loop.
        let mut min_ptr = pos;

        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)?;
            match len {
                0 => {
                    pos += 1;
                    break;
                }
                1..=63 => {
                    let start = pos + 1;
                    let end = start + len as usize;
                    if end > self.data.len() {
                        return Err(WireError::Truncated);
                    }
                    wire_len += 1 + len as usize;
                    if wire_len > 255 {
                        return Err(WireError::NameTooLong);
                    }
                    let raw = &self.data[start..end];
                    let mut label = String::with_capacity(raw.len());
                    for &b in raw {
                        if !(0x21..=0x7e).contains(&b) || b == b'.' {
                            return Err(WireError::BadName);
                        }
                        label.push(b.to_ascii_lowercase() as char);
                    }
                    labels.push(label);
                    pos = end;
                }
                l if l & 0xc0 == 0xc0 => {
                    let second = *self.data.get(pos + 1).ok_or(WireError::Truncated)?;
                    let target = (((l & 0x3f) as usize) << 8) | second as usize;
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    if target >= min_ptr {
                        return Err(WireError::BadPointer);
                    }
                    min_ptr = target;
                    pos = target;
                }
                _ => return Err(WireError::BadLabel),
            }
        }
        self.pos = resume.unwrap_or(pos);
        Name::from_labels(labels).map_err(|_| WireError::BadName)
    }

    fn get_question(&mut self) -> Result<Question, WireError> {
        let name = self.get_name()?;
        let rtype = RecordType::from_code(self.get_u16()?);
        let class = RecordClass::from_code(self.get_u16()?);
        Ok(Question { name, rtype, class })
    }

    fn get_record(&mut self) -> Result<Record, WireError> {
        let name = self.get_name()?;
        let rtype = RecordType::from_code(self.get_u16()?);
        let class = RecordClass::from_code(self.get_u16()?);
        let ttl = self.get_u32()?;
        let rdlen = self.get_u16()? as usize;
        let rdata_end = self.pos.checked_add(rdlen).ok_or(WireError::Truncated)?;
        if rdata_end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let rdata = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdataLength);
                }
                let o = self.get_bytes(4)?;
                RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdataLength);
                }
                let o = self.get_bytes(16)?;
                let mut oct = [0u8; 16];
                oct.copy_from_slice(o);
                RData::Aaaa(Ipv6Addr::from(oct))
            }
            RecordType::Ns => RData::Ns(self.get_name()?),
            RecordType::Cname => RData::Cname(self.get_name()?),
            RecordType::Ptr => RData::Ptr(self.get_name()?),
            RecordType::Mx => {
                let preference = self.get_u16()?;
                let exchange = self.get_name()?;
                RData::Mx {
                    preference,
                    exchange,
                }
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                while self.pos < rdata_end {
                    let len = self.get_u8()? as usize;
                    if self.pos + len > rdata_end {
                        return Err(WireError::BadRdataLength);
                    }
                    strings.push(self.get_bytes(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RecordType::Soa => {
                let mname = self.get_name()?;
                let rname = self.get_name()?;
                RData::Soa(SoaData {
                    mname,
                    rname,
                    serial: self.get_u32()?,
                    refresh: self.get_u32()?,
                    retry: self.get_u32()?,
                    expire: self.get_u32()?,
                    minimum: self.get_u32()?,
                })
            }
            RecordType::Opt => RData::Opt(self.get_bytes(rdlen)?.to_vec()),
            RecordType::Other(_) => RData::Other(self.get_bytes(rdlen)?.to_vec()),
        };
        if self.pos != rdata_end {
            return Err(WireError::BadRdataLength);
        }
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

/// Decode a complete wire-format message.
pub fn decode_message(data: &[u8]) -> Result<Message, WireError> {
    let mut dec = Decoder::new(data);
    let id = dec.get_u16()?;
    let flags = dec.get_u16()?;
    let qd = dec.get_u16()? as usize;
    let an = dec.get_u16()? as usize;
    let ns = dec.get_u16()? as usize;
    let ar = dec.get_u16()? as usize;
    let mut msg = Message {
        id,
        is_response: flags & 0x8000 != 0,
        opcode: ((flags >> 11) & 0xf) as u8,
        authoritative: flags & 0x0400 != 0,
        truncated: flags & 0x0200 != 0,
        recursion_desired: flags & 0x0100 != 0,
        recursion_available: flags & 0x0080 != 0,
        rcode: Rcode::from_code(flags as u8),
        // Pre-allocation is capped by what the remaining bytes could
        // possibly hold (a question is ≥ 5 bytes, a record ≥ 11), so a
        // header lying about its counts can never allocate past the
        // datagram itself; the parse loops below still fail with
        // `Truncated` when the promised entries run out of bytes.
        questions: Vec::with_capacity(qd.min(data.len().saturating_sub(12) / 5)),
        answers: Vec::with_capacity(an.min(64).min(data.len().saturating_sub(12) / 11)),
        authorities: Vec::with_capacity(ns.min(64).min(data.len().saturating_sub(12) / 11)),
        additionals: Vec::with_capacity(ar.min(64).min(data.len().saturating_sub(12) / 11)),
    };
    for _ in 0..qd {
        msg.questions.push(dec.get_question()?);
    }
    for _ in 0..an {
        msg.answers.push(dec.get_record()?);
    }
    for _ in 0..ns {
        msg.authorities.push(dec.get_record()?);
    }
    for _ in 0..ar {
        msg.additionals.push(dec.get_record()?);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_message() -> Message {
        let mut msg = Message::query(0x1234, n("t01.m5.spf.example"), RecordType::Txt);
        msg.recursion_desired = true;
        msg
    }

    #[test]
    fn query_roundtrip() {
        let msg = sample_message();
        let bytes = encode_message(&msg).unwrap();
        let decoded = decode_message(&bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn response_roundtrip_all_rdata_types() {
        let mut msg = Message::response_to(&sample_message(), Rcode::NoError);
        msg.authoritative = true;
        msg.answers = vec![
            Record::new(n("a.example"), 300, RData::A("192.0.2.1".parse().unwrap())),
            Record::new(
                n("a.example"),
                300,
                RData::Aaaa("2001:db8::1".parse().unwrap()),
            ),
            Record::new(
                n("a.example"),
                300,
                RData::Mx {
                    preference: 10,
                    exchange: n("mx1.a.example"),
                },
            ),
            Record::new(
                n("a.example"),
                60,
                RData::Txt(vec![b"v=spf1 ip4:192.0.2.1 -all".to_vec()]),
            ),
            Record::new(n("alias.example"), 60, RData::Cname(n("a.example"))),
            Record::new(n("a.example"), 60, RData::Ns(n("ns1.a.example"))),
            Record::new(n("1.2.0.192.in-addr.arpa"), 60, RData::Ptr(n("a.example"))),
        ];
        msg.authorities = vec![Record::new(
            n("example"),
            3600,
            RData::Soa(SoaData {
                mname: n("ns1.example"),
                rname: n("hostmaster.example"),
                serial: 2021120701,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        )];
        let bytes = encode_message(&msg).unwrap();
        let decoded = decode_message(&bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let mut msg = Message::response_to(&sample_message(), Rcode::NoError);
        let name = n("really.quite.long.domain.name.example.com");
        for i in 0..10 {
            msg.answers.push(Record::new(
                name.clone(),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        let bytes = encode_message(&msg).unwrap();
        // Without compression each record would repeat the 44-byte name;
        // with compression later records use a 2-byte pointer.
        let uncompressed_estimate = 12 + 30 + 10 * (44 + 14);
        assert!(
            bytes.len() < uncompressed_estimate - 300,
            "len={} not compressed",
            bytes.len()
        );
        let decoded = decode_message(&bytes).unwrap();
        assert_eq!(decoded.answers.len(), 10);
        assert_eq!(decoded.answers[9].name, name);
    }

    #[test]
    fn multi_string_txt_roundtrip() {
        let mut msg = Message::response_to(&sample_message(), Rcode::NoError);
        let long = "y".repeat(700);
        msg.answers = vec![Record::new(n("p.example"), 60, RData::txt_from_str(&long))];
        let bytes = encode_message(&msg).unwrap();
        let decoded = decode_message(&bytes).unwrap();
        assert_eq!(decoded.answers[0].rdata.txt_joined().unwrap(), long);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_message(&sample_message()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_message(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    /// Every encoded form this module can produce, for sweep tests.
    fn encoded_corpus() -> Vec<Vec<u8>> {
        let query = sample_message();
        let mut all_rdata = Message::response_to(&query, Rcode::NoError);
        all_rdata.answers = vec![
            Record::new(n("a.example"), 300, RData::A("192.0.2.1".parse().unwrap())),
            Record::new(
                n("a.example"),
                300,
                RData::Aaaa("2001:db8::1".parse().unwrap()),
            ),
            Record::new(
                n("a.example"),
                300,
                RData::Mx {
                    preference: 10,
                    exchange: n("mx1.a.example"),
                },
            ),
            Record::new(n("a.example"), 60, RData::txt_from_str(&"t".repeat(300))),
            Record::new(n("alias.example"), 60, RData::Cname(n("a.example"))),
            Record::new(n("a.example"), 60, RData::Ns(n("ns1.a.example"))),
            Record::new(n("1.2.0.192.in-addr.arpa"), 60, RData::Ptr(n("a.example"))),
        ];
        all_rdata.authorities = vec![Record::new(
            n("example"),
            3600,
            RData::Soa(SoaData {
                mname: n("ns1.example"),
                rname: n("hostmaster.example"),
                serial: 2021120701,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        )];
        let mut compressed = Message::response_to(&query, Rcode::NoError);
        let name = n("really.quite.long.domain.name.example.com");
        for i in 0..10 {
            compressed.answers.push(Record::new(
                name.clone(),
                60,
                RData::A(Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        [query, all_rdata, compressed]
            .iter()
            .map(|m| encode_message(m).unwrap())
            .collect()
    }

    #[test]
    fn exhaustive_truncation_sweep_over_corpus() {
        // Hostile-input regression: every strict prefix of every encoded
        // test message must decode to a WireError — never a panic, and
        // (via the capped pre-allocation in `decode_message`) never an
        // allocation past the prefix itself.
        for (i, bytes) in encoded_corpus().iter().enumerate() {
            assert!(decode_message(bytes).is_ok(), "corpus[{i}] must decode");
            for cut in 0..bytes.len() {
                assert!(
                    decode_message(&bytes[..cut]).is_err(),
                    "corpus[{i}] cut={cut} accepted a truncated frame"
                );
            }
        }
    }

    #[test]
    fn lying_header_counts_never_overallocate() {
        // A 12-byte header promising 65,535 entries per section: the
        // decoder must fail with Truncated, and its pre-allocation is
        // bounded by the remaining buffer (here zero), not the counts.
        let mut bytes = vec![0u8; 12];
        for pos in [4, 6, 8, 10] {
            bytes[pos] = 0xFF;
            bytes[pos + 1] = 0xFF;
        }
        assert_eq!(decode_message(&bytes), Err(WireError::Truncated));
        // Same lie atop an otherwise valid message: still a clean error.
        for original in encoded_corpus() {
            let mut lied = original.clone();
            for pos in [4, 6, 8, 10] {
                lied[pos] = 0xFF;
                lied[pos + 1] = 0xFF;
            }
            assert!(decode_message(&lied).is_err());
        }
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Header + a name that is a pointer to itself.
        let mut bytes = vec![0u8; 12];
        bytes[5] = 1; // one question
        bytes.extend_from_slice(&[0xc0, 0x0c]); // pointer to offset 12 (itself)
        bytes.extend_from_slice(&[0, 16, 0, 1]);
        assert_eq!(decode_message(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_pointer_loop() {
        let mut bytes = vec![0u8; 12];
        bytes[5] = 1;
        // name at 12: label "a" then pointer back to offset 12 -> loop
        bytes.extend_from_slice(&[1, b'a', 0xc0, 0x0c]);
        bytes.extend_from_slice(&[0, 16, 0, 1]);
        assert_eq!(decode_message(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn decode_rejects_bad_rdata_length() {
        let q = sample_message();
        let mut msg = Message::response_to(&q, Rcode::NoError);
        msg.answers = vec![Record::new(
            n("a.example"),
            60,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        )];
        let mut bytes = encode_message(&msg).unwrap();
        // Corrupt the A rdlength (last 6 bytes are rdlength + 4 octets).
        let pos = bytes.len() - 6;
        bytes[pos] = 0;
        bytes[pos + 1] = 3;
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn rcode_roundtrip() {
        for c in 0..16u8 {
            assert_eq!(Rcode::from_code(c).code(), c);
        }
    }

    #[test]
    fn truncated_flag_roundtrip() {
        let mut msg = Message::response_to(&sample_message(), Rcode::NoError);
        msg.truncated = true;
        let decoded = decode_message(&encode_message(&msg).unwrap()).unwrap();
        assert!(decoded.truncated);
    }

    #[test]
    fn encode_rejects_oversized_txt_string() {
        // Regression: the encoder used to debug_assert! here, so a
        // release build would truncate the length via `as u8` and emit a
        // corrupt wire image. It must be a real error instead.
        let mut msg = Message::response_to(&sample_message(), Rcode::NoError);
        msg.answers = vec![Record::new(
            n("p.example"),
            60,
            RData::Txt(vec![vec![b'x'; 256]]),
        )];
        assert_eq!(encode_message(&msg), Err(WireError::TxtTooLong));
        // At exactly 255 bytes the string still encodes.
        msg.answers = vec![Record::new(
            n("p.example"),
            60,
            RData::Txt(vec![vec![b'x'; 255]]),
        )];
        let bytes = encode_message(&msg).unwrap();
        let decoded = decode_message(&bytes).unwrap();
        assert_eq!(decoded.answers[0].rdata, RData::Txt(vec![vec![b'x'; 255]]));
    }

    #[test]
    fn encoder_rejects_oversized_label() {
        // `Name::parse`/`from_labels` refuse labels over 63 bytes, so the
        // encoder-side check is defense in depth for names of other
        // provenance; exercise it through the raw Encoder API.
        let long = "a".repeat(MAX_LABEL_LEN + 1);
        let name = Name::from_labels(vec![long]);
        assert!(name.is_err(), "Name constructors reject oversized labels");
        let mut enc = Encoder::new();
        assert_eq!(enc.put_name(&n("ok.example")), Ok(()));
        assert_eq!(enc.put_name_uncompressed(&n("ok.example")), Ok(()));
    }
}
