//! DNS message model and builders (RFC 1035 §4.1).

use crate::name::Name;
use crate::rr::{Record, RecordClass, RecordType};
use crate::wire::Rcode;

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub rtype: RecordType,
    /// Queried class.
    pub class: RecordClass,
}

/// A parsed or to-be-encoded DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// QR flag: false for queries, true for responses.
    pub is_response: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// AA flag.
    pub authoritative: bool,
    /// TC flag: response was truncated, retry over TCP (RFC 1035 §4.2.1).
    pub truncated: bool,
    /// RD flag.
    pub recursion_desired: bool,
    /// RA flag.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section.
    pub additionals: Vec<Record>,
}

impl Message {
    /// Build a standard query for `name`/`rtype`, class IN.
    pub fn query(id: u16, name: Name, rtype: RecordType) -> Message {
        Message {
            id,
            is_response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: false,
            recursion_available: false,
            rcode: Rcode::NoError,
            questions: vec![Question {
                name,
                rtype,
                class: RecordClass::In,
            }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build an (empty) response to `query`, echoing id and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            id: query.id,
            is_response: true,
            opcode: query.opcode,
            authoritative: false,
            truncated: false,
            recursion_desired: query.recursion_desired,
            recursion_available: false,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The first (and in practice only) question, if any.
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Iterate over answer records of a given type.
    pub fn answers_of_type(&self, rtype: RecordType) -> impl Iterator<Item = &Record> {
        self.answers.iter().filter(move |r| r.rtype() == rtype)
    }

    /// Encode to wire bytes, panicking on unrepresentable contents.
    ///
    /// Every message the apparatus builds goes through validated
    /// [`crate::Name`] construction and `txt_from_str` chunking, so the
    /// error path of [`crate::wire::encode_message`] is unreachable for
    /// them; use [`Message::try_to_bytes`] when encoding data of
    /// untrusted provenance (e.g. decoded from corrupted input).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.try_to_bytes()
            .expect("message contents are representable on the wire")
    }

    /// Encode to wire bytes (convenience for [`crate::wire::encode_message`]).
    pub fn try_to_bytes(&self) -> Result<Vec<u8>, crate::wire::WireError> {
        crate::wire::encode_message(self)
    }

    /// [`Message::to_bytes`] reusing `buf`'s allocation for the output
    /// (see [`crate::wire::encode_message_with`]).
    pub fn to_bytes_with(&self, buf: Vec<u8>) -> Vec<u8> {
        crate::wire::encode_message_with(self, buf)
            .expect("message contents are representable on the wire")
    }

    /// Decode from wire bytes (convenience for [`crate::wire::decode_message`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Message, crate::wire::WireError> {
        crate::wire::decode_message(bytes)
    }
}

/// Truncate a wire-format *response* the way a too-small UDP path would:
/// set TC=1 and strip every record section, leaving only the header and
/// question (RFC 1035 §4.1.1 behavior that drives resolvers to TCP).
/// Returns `None` for unparsable bytes or non-responses.
pub fn truncate_response(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut msg = Message::from_bytes(bytes).ok()?;
    if !msg.is_response {
        return None;
    }
    msg.truncated = true;
    msg.answers.clear();
    msg.authorities.clear();
    msg.additionals.clear();
    Some(msg.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_shape() {
        let q = Message::query(7, n("example.com"), RecordType::Txt);
        assert!(!q.is_response);
        assert_eq!(q.question().unwrap().rtype, RecordType::Txt);
        assert_eq!(q.question().unwrap().name, n("example.com"));
    }

    #[test]
    fn response_echoes_id_and_question() {
        let q = Message::query(99, n("x.test"), RecordType::A);
        let r = Message::response_to(&q, Rcode::NxDomain);
        assert!(r.is_response);
        assert_eq!(r.id, 99);
        assert_eq!(r.rcode, Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn truncate_response_sets_tc_and_strips_records() {
        let q = Message::query(5, n("x.test"), RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::new(
            n("x.test"),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let wire = truncate_response(&r.to_bytes()).unwrap();
        let parsed = Message::from_bytes(&wire).unwrap();
        assert!(parsed.truncated);
        assert!(parsed.answers.is_empty());
        assert_eq!(parsed.id, 5);
        assert_eq!(parsed.questions, r.questions);
        // Queries and garbage are refused.
        assert!(truncate_response(&q.to_bytes()).is_none());
        assert!(truncate_response(b"\x00\x01junk").is_none());
    }

    #[test]
    fn answers_of_type_filters() {
        let q = Message::query(1, n("x.test"), RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::new(
            n("x.test"),
            60,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        r.answers
            .push(Record::new(n("x.test"), 60, RData::txt_from_str("hello")));
        assert_eq!(r.answers_of_type(RecordType::A).count(), 1);
        assert_eq!(r.answers_of_type(RecordType::Txt).count(), 1);
        assert_eq!(r.answers_of_type(RecordType::Mx).count(), 0);
    }
}
