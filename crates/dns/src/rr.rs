//! Resource records: types, classes, and typed RDATA (RFC 1035 §3.2–3.4,
//! RFC 3596 for AAAA).
//!
//! The record types implemented are exactly those the measurement
//! methodology exercises: `A`/`AAAA` (address resolution and SPF `a`/`mx`
//! mechanisms), `MX` (mail routing and the SPF `mx` mechanism), `TXT` (SPF
//! policies, DKIM keys, DMARC policies), `SOA` (contact publication, §5.3
//! of the paper), plus `NS`, `CNAME` and `PTR` for zone plumbing and the
//! SPF `ptr` mechanism.

use crate::name::Name;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A DNS record type code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// Name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer (reverse DNS).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text strings.
    Txt,
    /// IPv6 address.
    Aaaa,
    /// EDNS(0) OPT pseudo-record.
    Opt,
    /// Any other type, carried opaquely.
    Other(u16),
}

impl RecordType {
    /// The 16-bit wire code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Opt => 41,
            RecordType::Other(c) => c,
        }
    }

    /// From a wire code.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            41 => RecordType::Opt,
            other => RecordType::Other(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Other(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// A DNS class. Only `IN` is meaningful here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet class.
    In,
    /// Any other class, carried opaquely (also used for OPT's payload size).
    Other(u16),
}

impl RecordClass {
    /// The 16-bit wire code.
    pub fn code(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Other(c) => c,
        }
    }

    /// From a wire code.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RecordClass::In,
            other => RecordClass::Other(other),
        }
    }
}

/// SOA RDATA (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaData {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox (the paper published a contact address here,
    /// §5.3).
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expire interval (seconds).
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server.
    Ns(Name),
    /// Alias target.
    Cname(Name),
    /// Reverse pointer target.
    Ptr(Name),
    /// Mail exchange: preference and exchange host.
    Mx {
        /// Lower is preferred (RFC 5321 §5.1).
        preference: u16,
        /// The exchange host name.
        exchange: Name,
    },
    /// One or more character-strings, each at most 255 bytes.
    Txt(Vec<Vec<u8>>),
    /// SOA.
    Soa(SoaData),
    /// EDNS(0) OPT rdata (options, opaque).
    Opt(Vec<u8>),
    /// Unknown type, opaque bytes.
    Other(Vec<u8>),
}

impl RData {
    /// The record type this RDATA corresponds to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Ptr(_) => RecordType::Ptr,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa(_) => RecordType::Soa,
            RData::Opt(_) => RecordType::Opt,
            RData::Other(_) => RecordType::Other(0),
        }
    }

    /// Build TXT rdata from a single logical string, splitting into
    /// 255-byte character-strings as the wire format requires. This is how
    /// SPF policies longer than 255 octets are published (RFC 7208 §3.3).
    pub fn txt_from_str(s: &str) -> RData {
        let bytes = s.as_bytes();
        if bytes.is_empty() {
            return RData::Txt(vec![Vec::new()]);
        }
        RData::Txt(bytes.chunks(255).map(|c| c.to_vec()).collect())
    }

    /// If this is TXT rdata, join the character-strings into one string
    /// (RFC 7208 §3.3: "concatenated together without adding spaces").
    pub fn txt_joined(&self) -> Option<String> {
        match self {
            RData::Txt(strings) => {
                let mut out = Vec::new();
                for s in strings {
                    out.extend_from_slice(s);
                }
                Some(String::from_utf8_lossy(&out).into_owned())
            }
            _ => None,
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (IN for everything except OPT abuse of the field).
    pub class: RecordClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// The typed payload.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor with class IN.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RecordClass::In,
            ttl,
            rdata,
        }
    }

    /// The record's type.
    pub fn rtype(&self) -> RecordType {
        self.rdata.record_type()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Opt,
            RecordType::Other(999),
        ] {
            assert_eq!(RecordType::from_code(t.code()), t);
        }
    }

    #[test]
    fn txt_splitting() {
        let short = RData::txt_from_str("v=spf1 -all");
        assert_eq!(short, RData::Txt(vec![b"v=spf1 -all".to_vec()]));

        let long = "x".repeat(600);
        let rdata = RData::txt_from_str(&long);
        if let RData::Txt(parts) = &rdata {
            assert_eq!(parts.len(), 3);
            assert_eq!(parts[0].len(), 255);
            assert_eq!(parts[1].len(), 255);
            assert_eq!(parts[2].len(), 90);
        } else {
            panic!("not txt");
        }
        assert_eq!(rdata.txt_joined().unwrap(), long);
    }

    #[test]
    fn txt_empty() {
        assert_eq!(RData::txt_from_str(""), RData::Txt(vec![Vec::new()]));
    }
}
