//! Sans-IO caching resolver core.
//!
//! This models the *recursive resolver an MTA uses* (Figure 1 of the
//! paper: validator → recursive resolver → authoritative server). The
//! core is a state machine: [`ResolverCore::begin`] either answers from
//! cache or emits an upstream query; transport delivery is the caller's
//! job; responses and timeouts are fed back with
//! [`ResolverCore::on_response`] / [`ResolverCore::on_timeout`].
//!
//! Behavior knobs exercised by the paper's test policies:
//! * **TCP fallback** — on a truncated (TC=1) UDP response a capable
//!   resolver retries over TCP (§7.3: 1334 of 1336 resolvers did).
//! * **Caching** — positive and negative caching with TTLs.
//! * **Retries/timeout** — a bounded number of UDP retries before the
//!   lookup fails with a timeout outcome.

use crate::interner::{NameId, NameInterner};
use crate::message::Message;
use crate::name::Name;
use crate::rr::{Record, RecordType};
use crate::server::Transport;
use crate::wire::{Rcode, WireError};
use std::collections::HashMap;

/// Final outcome of one lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveOutcome {
    /// NOERROR with records (possibly after CNAME chasing by the server).
    Records(Vec<Record>),
    /// NOERROR with an empty answer section (NODATA). RFC 7208 calls this
    /// (together with NXDOMAIN) a "void lookup" when triggered by SPF.
    NoData,
    /// The name does not exist.
    NxDomain,
    /// No response after all retries (or no route to the server).
    Timeout,
    /// SERVFAIL/REFUSED/FORMERR from upstream.
    ServFail,
}

impl ResolveOutcome {
    /// RFC 7208 §4.6.4 "void lookup": a query that yields no usable data.
    pub fn is_void(&self) -> bool {
        matches!(self, ResolveOutcome::NoData | ResolveOutcome::NxDomain)
    }
}

/// Resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Retry over TCP when a UDP response is truncated.
    pub tcp_capable: bool,
    /// Serve repeated queries from cache.
    pub cache_enabled: bool,
    /// UDP retransmissions before giving up (total attempts = retries+1).
    pub max_retries: u8,
    /// Per-attempt timeout, milliseconds.
    pub attempt_timeout_ms: u64,
    /// TTL used for negative cache entries, milliseconds.
    pub negative_ttl_ms: u64,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            tcp_capable: true,
            cache_enabled: true,
            max_retries: 1,
            attempt_timeout_ms: 3000,
            negative_ttl_ms: 60_000,
        }
    }
}

/// What the caller must do next after starting a lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Begin {
    /// Answered from cache; no traffic needed.
    Cached(ResolveOutcome),
    /// Send these bytes upstream and arm a timeout.
    Send(Outgoing),
}

/// An upstream query to transmit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Lookup handle (equals the DNS message id).
    pub id: u16,
    /// Encoded query.
    pub bytes: Vec<u8>,
    /// Transport to use.
    pub transport: Transport,
    /// Arm a timeout for this many milliseconds.
    pub timeout_ms: u64,
}

/// Result of feeding a response or timeout into the core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// The lookup finished.
    Done(ResolveOutcome),
    /// Keep going: transmit this follow-up (TCP fallback or UDP retry).
    Continue(Outgoing),
    /// The id was unknown (stale/duplicate response); ignore.
    Ignored,
}

#[derive(Debug, Clone)]
struct Pending {
    name: Name,
    rtype: RecordType,
    retries_left: u8,
    over_tcp: bool,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    outcome: ResolveOutcome,
    expires_at_ms: u64,
}

/// The resolver state machine. One instance per simulated resolver.
pub struct ResolverCore {
    config: ResolverConfig,
    /// Cache keys are interned: probing hashes the queried [`Name`] by
    /// reference against `names` and then keys this map by a `u32`
    /// pair, so a cache hit allocates nothing (a `(Name, RecordType)`
    /// key would clone one `String` per label per probe).
    cache: HashMap<(NameId, RecordType), CacheEntry>,
    names: NameInterner,
    pending: HashMap<u16, Pending>,
    next_id: u16,
    /// Count of upstream queries emitted (diagnostics).
    pub upstream_queries: u64,
    /// Wire-decode failures observed on upstream responses, in arrival
    /// order. Each failed decode fails the lookup closed (SERVFAIL);
    /// the embedder drains this with [`ResolverCore::take_wire_errors`]
    /// to classify the hostile input it just survived.
    wire_errors: Vec<WireError>,
}

impl ResolverCore {
    /// Create with the given configuration.
    pub fn new(config: ResolverConfig) -> Self {
        ResolverCore {
            config,
            cache: HashMap::new(),
            names: NameInterner::new(),
            pending: HashMap::new(),
            next_id: 1,
            upstream_queries: 0,
            wire_errors: Vec::new(),
        }
    }

    /// Drain the wire-decode failures recorded since the last call.
    pub fn take_wire_errors(&mut self) -> Vec<WireError> {
        std::mem::take(&mut self.wire_errors)
    }

    /// The configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    fn alloc_id(&mut self) -> u16 {
        // Linear probe around a counter; ids must be unique among pending.
        loop {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1);
            if id != 0 && !self.pending.contains_key(&id) {
                return id;
            }
        }
    }

    /// Start a lookup at virtual time `now_ms`.
    pub fn begin(&mut self, name: Name, rtype: RecordType, now_ms: u64) -> Begin {
        if self.config.cache_enabled {
            // Zero-alloc hit path: hash `name` by reference, then probe
            // by the interned id.
            if let Some(id) = self.names.get(&name) {
                if let Some(entry) = self.cache.get(&(id, rtype)) {
                    if entry.expires_at_ms > now_ms {
                        return Begin::Cached(entry.outcome.clone());
                    }
                }
            }
        }
        let id = self.alloc_id();
        let query = Message::query(id, name.clone(), rtype);
        self.pending.insert(
            id,
            Pending {
                name,
                rtype,
                retries_left: self.config.max_retries,
                over_tcp: false,
            },
        );
        self.upstream_queries += 1;
        Begin::Send(Outgoing {
            id,
            bytes: query.to_bytes(),
            transport: Transport::Udp,
            timeout_ms: self.config.attempt_timeout_ms,
        })
    }

    /// Feed an upstream response for lookup `id`.
    pub fn on_response(&mut self, id: u16, bytes: &[u8], now_ms: u64) -> Step {
        let Some(pending) = self.pending.get(&id) else {
            return Step::Ignored;
        };
        let msg = match Message::from_bytes(bytes) {
            Ok(m) if m.is_response && m.id == id => m,
            decoded => {
                // Garbled or mismatched: fail the lookup closed (treat
                // like SERVFAIL from upstream). Undecodable bytes are
                // additionally recorded for hostile-input classification.
                if let Err(e) = decoded {
                    self.wire_errors.push(e);
                }
                let pending = self.pending.remove(&id).expect("checked above");
                return Step::Done(self.finish(
                    pending.name,
                    pending.rtype,
                    ResolveOutcome::ServFail,
                    now_ms,
                ));
            }
        };
        if msg.truncated && !pending.over_tcp {
            if self.config.tcp_capable {
                // Retry the same question over TCP with a fresh id.
                let pending = self.pending.remove(&id).expect("checked above");
                let new_id = self.alloc_id();
                let query = Message::query(new_id, pending.name.clone(), pending.rtype);
                self.pending.insert(
                    new_id,
                    Pending {
                        over_tcp: true,
                        ..pending
                    },
                );
                self.upstream_queries += 1;
                return Step::Continue(Outgoing {
                    id: new_id,
                    bytes: query.to_bytes(),
                    transport: Transport::Tcp,
                    timeout_ms: self.config.attempt_timeout_ms,
                });
            }
            // TCP-incapable resolver: all it ever gets is the truncated
            // empty answer, which yields no usable data.
            let pending = self.pending.remove(&id).expect("checked above");
            return Step::Done(self.finish(
                pending.name,
                pending.rtype,
                ResolveOutcome::NoData,
                now_ms,
            ));
        }
        let pending = self.pending.remove(&id).expect("checked above");
        let outcome = match msg.rcode {
            Rcode::NoError => {
                if msg.answers.is_empty() {
                    ResolveOutcome::NoData
                } else {
                    ResolveOutcome::Records(msg.answers)
                }
            }
            Rcode::NxDomain => ResolveOutcome::NxDomain,
            _ => ResolveOutcome::ServFail,
        };
        Step::Done(self.finish(pending.name, pending.rtype, outcome, now_ms))
    }

    /// Signal that the timeout armed for lookup `id` fired.
    pub fn on_timeout(&mut self, id: u16, now_ms: u64) -> Step {
        let Some(pending) = self.pending.get_mut(&id) else {
            return Step::Ignored;
        };
        if pending.retries_left > 0 && !pending.over_tcp {
            pending.retries_left -= 1;
            let query = Message::query(id, pending.name.clone(), pending.rtype);
            self.upstream_queries += 1;
            return Step::Continue(Outgoing {
                id,
                bytes: query.to_bytes(),
                transport: Transport::Udp,
                timeout_ms: self.config.attempt_timeout_ms,
            });
        }
        let pending = self.pending.remove(&id).expect("checked above");
        Step::Done(self.finish(pending.name, pending.rtype, ResolveOutcome::Timeout, now_ms))
    }

    /// Record the outcome in cache and return it.
    fn finish(
        &mut self,
        name: Name,
        rtype: RecordType,
        outcome: ResolveOutcome,
        now_ms: u64,
    ) -> ResolveOutcome {
        if self.config.cache_enabled {
            let ttl_ms = match &outcome {
                ResolveOutcome::Records(records) => {
                    let min_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(60);
                    u64::from(min_ttl) * 1000
                }
                ResolveOutcome::NoData | ResolveOutcome::NxDomain => self.config.negative_ttl_ms,
                // Don't cache failures.
                ResolveOutcome::Timeout | ResolveOutcome::ServFail => 0,
            };
            if ttl_ms > 0 {
                // Takes ownership of `name`: first sighting interns it,
                // repeats free their labels here instead of cloning.
                let id = self.names.intern(name);
                self.cache.insert(
                    (id, rtype),
                    CacheEntry {
                        outcome: outcome.clone(),
                        expires_at_ms: now_ms + ttl_ms,
                    },
                );
            }
        }
        outcome
    }

    /// Number of cached entries (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::RData;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn respond_with_a(outgoing: &Outgoing, ip: [u8; 4], ttl: u32) -> Vec<u8> {
        let q = Message::from_bytes(&outgoing.bytes).unwrap();
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers = vec![Record::new(
            q.question().unwrap().name.clone(),
            ttl,
            RData::A(Ipv4Addr::from(ip)),
        )];
        r.to_bytes()
    }

    #[test]
    fn basic_lookup() {
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("a.test"), RecordType::A, 0) else {
            panic!("expected send");
        };
        assert_eq!(out.transport, Transport::Udp);
        let resp = respond_with_a(&out, [192, 0, 2, 1], 300);
        match core.on_response(out.id, &resp, 10) {
            Step::Done(ResolveOutcome::Records(records)) => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_hit_and_expiry() {
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("a.test"), RecordType::A, 0) else {
            panic!()
        };
        let resp = respond_with_a(&out, [192, 0, 2, 1], 300);
        core.on_response(out.id, &resp, 10);
        // Within TTL: cached.
        match core.begin(n("a.test"), RecordType::A, 10_000) {
            Begin::Cached(ResolveOutcome::Records(_)) => {}
            other => panic!("{other:?}"),
        }
        // After TTL (300s): re-query.
        match core.begin(n("a.test"), RecordType::A, 301_000) {
            Begin::Send(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_disabled() {
        let mut core = ResolverCore::new(ResolverConfig {
            cache_enabled: false,
            ..Default::default()
        });
        let Begin::Send(out) = core.begin(n("a.test"), RecordType::A, 0) else {
            panic!()
        };
        let resp = respond_with_a(&out, [192, 0, 2, 1], 300);
        core.on_response(out.id, &resp, 10);
        assert!(matches!(
            core.begin(n("a.test"), RecordType::A, 20),
            Begin::Send(_)
        ));
    }

    #[test]
    fn tcp_fallback_on_truncation() {
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("big.test"), RecordType::Txt, 0) else {
            panic!()
        };
        let q = Message::from_bytes(&out.bytes).unwrap();
        let mut trunc = Message::response_to(&q, Rcode::NoError);
        trunc.truncated = true;
        match core.on_response(out.id, &trunc.to_bytes(), 5) {
            Step::Continue(follow_up) => {
                assert_eq!(follow_up.transport, Transport::Tcp);
                // Complete over TCP.
                let resp = respond_with_a(&follow_up, [192, 0, 2, 9], 60);
                match core.on_response(follow_up.id, &resp, 9) {
                    Step::Done(ResolveOutcome::Records(_)) => {}
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_tcp_fallback_when_incapable() {
        let mut core = ResolverCore::new(ResolverConfig {
            tcp_capable: false,
            ..Default::default()
        });
        let Begin::Send(out) = core.begin(n("big.test"), RecordType::Txt, 0) else {
            panic!()
        };
        let q = Message::from_bytes(&out.bytes).unwrap();
        let mut trunc = Message::response_to(&q, Rcode::NoError);
        trunc.truncated = true;
        match core.on_response(out.id, &trunc.to_bytes(), 5) {
            Step::Done(ResolveOutcome::NoData) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retry_then_timeout() {
        let mut core = ResolverCore::new(ResolverConfig {
            max_retries: 2,
            ..Default::default()
        });
        let Begin::Send(out) = core.begin(n("slow.test"), RecordType::A, 0) else {
            panic!()
        };
        let Step::Continue(retry1) = core.on_timeout(out.id, 3000) else {
            panic!()
        };
        assert_eq!(retry1.id, out.id);
        let Step::Continue(_retry2) = core.on_timeout(out.id, 6000) else {
            panic!()
        };
        match core.on_timeout(out.id, 9000) {
            Step::Done(ResolveOutcome::Timeout) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(core.upstream_queries, 3);
    }

    #[test]
    fn injected_truncation_falls_back_to_tcp_and_succeeds() {
        // Regression for the fault-injection path: a *full* UDP reply
        // mangled by `truncate_response` (TC=1, answers stripped) must
        // drive a capable resolver to a TCP retry that then succeeds.
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("fault.test"), RecordType::A, 0) else {
            panic!()
        };
        let full = respond_with_a(&out, [192, 0, 2, 44], 120);
        let mangled = crate::message::truncate_response(&full).unwrap();
        let Step::Continue(follow_up) = core.on_response(out.id, &mangled, 5) else {
            panic!("expected TCP fallback")
        };
        assert_eq!(follow_up.transport, Transport::Tcp);
        assert_ne!(follow_up.id, out.id, "TCP retry uses a fresh id");
        let resp = respond_with_a(&follow_up, [192, 0, 2, 44], 120);
        match core.on_response(follow_up.id, &resp, 9) {
            Step::Done(ResolveOutcome::Records(records)) => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(core.upstream_queries, 2);
    }

    #[test]
    fn garbled_response_fails_closed_and_is_classified() {
        // Hostile-input regression: undecodable response bytes must end
        // the lookup with SERVFAIL (never a panic, never a hang) and
        // leave the WireError behind for classification.
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("hostile.test"), RecordType::A, 0) else {
            panic!()
        };
        let full = respond_with_a(&out, [192, 0, 2, 9], 120);
        let garbled = &full[..full.len() / 2];
        match core.on_response(out.id, garbled, 5) {
            Step::Done(ResolveOutcome::ServFail) => {}
            other => panic!("{other:?}"),
        }
        let errors = core.take_wire_errors();
        assert_eq!(errors.len(), 1);
        assert!(core.take_wire_errors().is_empty(), "drain must reset");
        // A well-formed response with a mismatched id also fails closed,
        // but is not a wire error.
        let Begin::Send(out) = core.begin(n("mismatch.test"), RecordType::A, 10) else {
            panic!()
        };
        let mut resp = respond_with_a(&out, [192, 0, 2, 9], 120);
        resp[0] ^= 0xFF; // flip the id
        match core.on_response(out.id, &resp, 15) {
            Step::Done(ResolveOutcome::ServFail) => {}
            other => panic!("{other:?}"),
        }
        assert!(core.take_wire_errors().is_empty());
    }

    #[test]
    fn retry_exhaustion_counts_exact_transmissions() {
        // All attempts dropped: the lookup must end in Timeout after
        // exactly max_retries + 1 transmissions, for several budgets.
        for max_retries in [0u8, 1, 3, 5] {
            let mut core = ResolverCore::new(ResolverConfig {
                max_retries,
                ..Default::default()
            });
            let Begin::Send(out) = core.begin(n("dropped.test"), RecordType::A, 0) else {
                panic!()
            };
            let mut transmissions = 1u64; // the initial UDP attempt
            let mut now = 3_000;
            loop {
                match core.on_timeout(out.id, now) {
                    Step::Continue(retry) => {
                        assert_eq!(retry.id, out.id, "UDP retries reuse the id");
                        assert_eq!(retry.transport, Transport::Udp);
                        transmissions += 1;
                        now += 3_000;
                    }
                    Step::Done(ResolveOutcome::Timeout) => break,
                    other => panic!("{other:?}"),
                }
            }
            assert_eq!(transmissions, u64::from(max_retries) + 1);
            assert_eq!(core.upstream_queries, transmissions);
        }
    }

    #[test]
    fn negative_caching() {
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("nx.test"), RecordType::A, 0) else {
            panic!()
        };
        let q = Message::from_bytes(&out.bytes).unwrap();
        let resp = Message::response_to(&q, Rcode::NxDomain);
        match core.on_response(out.id, &resp.to_bytes(), 10) {
            Step::Done(ResolveOutcome::NxDomain) => {}
            other => panic!("{other:?}"),
        }
        match core.begin(n("nx.test"), RecordType::A, 1000) {
            Begin::Cached(ResolveOutcome::NxDomain) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_response_ignored() {
        let mut core = ResolverCore::new(ResolverConfig::default());
        assert_eq!(core.on_response(999, &[0, 0], 0), Step::Ignored);
        assert_eq!(core.on_timeout(999, 0), Step::Ignored);
    }

    #[test]
    fn servfail_not_cached() {
        let mut core = ResolverCore::new(ResolverConfig::default());
        let Begin::Send(out) = core.begin(n("sf.test"), RecordType::A, 0) else {
            panic!()
        };
        let q = Message::from_bytes(&out.bytes).unwrap();
        let resp = Message::response_to(&q, Rcode::ServFail);
        match core.on_response(out.id, &resp.to_bytes(), 10) {
            Step::Done(ResolveOutcome::ServFail) => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            core.begin(n("sf.test"), RecordType::A, 20),
            Begin::Send(_)
        ));
    }

    #[test]
    fn void_outcomes() {
        assert!(ResolveOutcome::NoData.is_void());
        assert!(ResolveOutcome::NxDomain.is_void());
        assert!(!ResolveOutcome::Timeout.is_void());
        assert!(!ResolveOutcome::Records(vec![]).is_void());
    }
}
