//! Domain names (RFC 1035 §2.3, §3.1).
//!
//! Names are stored as lowercase ASCII labels. DNS names are
//! case-insensitive (RFC 1035 §2.3.3) and every name produced or consumed
//! by the measurement apparatus is lowercase, so normalizing at the edge
//! keeps comparisons cheap and `Name` usable as a map key.

use std::fmt;

/// Maximum length of a single label in bytes.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a name on the wire (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// Errors constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (`foo..bar`) in a position where that is invalid.
    EmptyLabel,
    /// A label exceeded 63 bytes.
    LabelTooLong,
    /// The whole name exceeded 255 wire bytes.
    NameTooLong,
    /// A label contained a byte outside printable ASCII.
    BadCharacter(u8),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong => write!(f, "label exceeds 63 bytes"),
            NameError::NameTooLong => write!(f, "name exceeds 255 bytes"),
            NameError::BadCharacter(b) => write!(f, "invalid character 0x{b:02x} in label"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully-qualified domain name, stored as lowercase labels without the
/// trailing root label.
///
/// The root name is the empty label sequence and displays as `.`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The root name.
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse from presentation format (`mail.example.com`, optional
    /// trailing dot). The empty string and `"."` both give the root.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for label in s.split('.') {
            labels.push(Self::check_label(label)?);
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    fn check_label(label: &str) -> Result<String, NameError> {
        if label.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong);
        }
        for &b in label.as_bytes() {
            // Accept any printable ASCII except '.' — hostnames in the wild
            // (and our synthesized test names) use letters, digits, '-', '_'.
            if !(0x21..=0x7e).contains(&b) || b == b'.' {
                return Err(NameError::BadCharacter(b));
            }
        }
        Ok(label.to_ascii_lowercase())
    }

    /// Construct from labels (each validated and lowercased).
    pub fn from_labels<I, S>(iter: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut labels = Vec::new();
        for l in iter {
            labels.push(Self::check_label(l.as_ref())?);
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length in wire bytes (length octets + labels + terminating zero).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// The parent name (one label removed from the left); `None` at root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepend a label: `label.self`.
    pub fn prepend(&self, label: &str) -> Result<Name, NameError> {
        let mut labels = vec![Self::check_label(label)?];
        labels.extend_from_slice(&self.labels);
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// Concatenate: `self.other` (self's labels first).
    pub fn concat(&self, other: &Name) -> Result<Name, NameError> {
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// True if `self` equals `ancestor` or is a subdomain of it.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - ancestor.labels.len();
        self.labels[offset..] == ancestor.labels[..]
    }

    /// Strip `suffix` from the right, returning the remaining left labels.
    ///
    /// `strip_suffix("a.b.example.com", "example.com") == Some(["a", "b"])`.
    pub fn strip_suffix(&self, suffix: &Name) -> Option<&[String]> {
        if !self.is_subdomain_of(suffix) {
            return None;
        }
        Some(&self.labels[..self.labels.len() - suffix.labels.len()])
    }

    /// The `n` rightmost labels as a name (n may exceed the label count, in
    /// which case the whole name is returned).
    pub fn suffix(&self, n: usize) -> Name {
        let start = self.labels.len().saturating_sub(n);
        Name {
            labels: self.labels[start..].to_vec(),
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl std::str::FromStr for Name {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("example.com").to_string(), "example.com");
        assert_eq!(n("Example.COM.").to_string(), "example.com");
        assert_eq!(n("").to_string(), ".");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("a.b.c").label_count(), 3);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(n("MAIL.Example.Com"), n("mail.example.com"));
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Name::parse("a..b"), Err(NameError::EmptyLabel));
        let long = "x".repeat(64);
        assert_eq!(Name::parse(&long), Err(NameError::LabelTooLong));
        assert_eq!(Name::parse("a b"), Err(NameError::BadCharacter(b' ')));
    }

    #[test]
    fn rejects_too_long_name() {
        let label = "a".repeat(63);
        let long = [label.as_str(); 5].join(".");
        assert_eq!(Name::parse(&long), Err(NameError::NameTooLong));
    }

    #[test]
    fn wire_len() {
        assert_eq!(n("").wire_len(), 1);
        assert_eq!(n("com").wire_len(), 5); // 1+3 + 1
        assert_eq!(n("example.com").wire_len(), 13);
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("a.b.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&Name::root()));
        assert!(!n("example.com").is_subdomain_of(&n("a.example.com")));
        assert!(!n("notexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn strip_suffix_labels() {
        let name = n("t01.m5.spf-test.dns-lab.org");
        let suffix = n("spf-test.dns-lab.org");
        assert_eq!(name.strip_suffix(&suffix).unwrap(), &["t01", "m5"]);
        assert_eq!(name.strip_suffix(&n("other.org")), None);
    }

    #[test]
    fn parent_and_prepend() {
        assert_eq!(n("a.b.c").parent().unwrap(), n("b.c"));
        assert_eq!(Name::root().parent(), None);
        assert_eq!(n("b.c").prepend("a").unwrap(), n("a.b.c"));
        assert_eq!(n("b.c").concat(&n("d.e")).unwrap(), n("b.c.d.e"));
    }

    #[test]
    fn suffix_n() {
        assert_eq!(n("a.b.c.d").suffix(2), n("c.d"));
        assert_eq!(n("a.b").suffix(5), n("a.b"));
        assert_eq!(n("a.b").suffix(0), Name::root());
    }
}
