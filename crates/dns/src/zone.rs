//! Static zone storage with RFC 1034 §4.3.2 lookup semantics
//! (exact match, CNAME chasing, NXDOMAIN vs NODATA distinction).
//!
//! The measurement apparatus mostly *synthesizes* responses (see
//! `mailval-measure`), but static zones back the live-loopback example,
//! the MTA-side zones in the simulation (MX/A records for receiving
//! domains), and the apex metadata (SOA/NS) of the apparatus domain.

use crate::name::Name;
use crate::rr::{RData, Record, RecordType, SoaData};
use std::collections::BTreeMap;

/// Result of a zone lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Records found (includes any CNAME chain traversed, in order).
    Found(Vec<Record>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The name is outside this zone's authority.
    NotAuthoritative,
}

/// A single authoritative zone.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Name,
    soa: SoaData,
    default_ttl: u32,
    records: BTreeMap<Name, Vec<Record>>,
}

impl Zone {
    /// Create a zone rooted at `origin` with the given SOA.
    pub fn new(origin: Name, soa: SoaData) -> Self {
        let mut zone = Zone {
            origin: origin.clone(),
            soa: soa.clone(),
            default_ttl: 300,
            records: BTreeMap::new(),
        };
        zone.add(Record::new(origin, 3600, RData::Soa(soa)));
        zone
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// The zone's SOA record (used in negative responses).
    pub fn soa_record(&self) -> Record {
        Record::new(self.origin.clone(), 3600, RData::Soa(self.soa.clone()))
    }

    /// Add a record. Panics if the record is out of bailiwick — that is
    /// always a programming error in this codebase.
    pub fn add(&mut self, record: Record) {
        assert!(
            record.name.is_subdomain_of(&self.origin),
            "record {} out of zone {}",
            record.name,
            self.origin
        );
        self.records
            .entry(record.name.clone())
            .or_default()
            .push(record);
    }

    /// Convenience: add a record with the zone default TTL.
    pub fn add_rdata(&mut self, name: Name, rdata: RData) {
        self.add(Record::new(name, self.default_ttl, rdata));
    }

    /// Number of record sets (owner names).
    pub fn name_count(&self) -> usize {
        self.records.len()
    }

    /// Total number of records.
    pub fn record_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Does any record exist at or below `name`? (Empty non-terminals
    /// exist per RFC 8020.)
    fn name_exists(&self, name: &Name) -> bool {
        if self.records.contains_key(name) {
            return true;
        }
        // An empty non-terminal exists if any stored name is a subdomain.
        // (Linear scan: label-wise Ord is not hierarchical, and zones here
        // are small — the huge logical zone is synthesized, not stored.)
        self.records.keys().any(|n| n.is_subdomain_of(name))
    }

    /// Look up `name`/`rtype`, chasing CNAMEs within the zone
    /// (up to 8 links, the customary server-side bound).
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> ZoneLookup {
        if !name.is_subdomain_of(&self.origin) {
            return ZoneLookup::NotAuthoritative;
        }
        let mut chain: Vec<Record> = Vec::new();
        let mut current = name.clone();
        for _ in 0..8 {
            match self.records.get(&current) {
                Some(rrset) => {
                    let matching: Vec<Record> = rrset
                        .iter()
                        .filter(|r| r.rtype() == rtype)
                        .cloned()
                        .collect();
                    if !matching.is_empty() {
                        chain.extend(matching);
                        return ZoneLookup::Found(chain);
                    }
                    // CNAME at the node (and the query is not for CNAME)?
                    if rtype != RecordType::Cname {
                        if let Some(cname_rec) =
                            rrset.iter().find(|r| r.rtype() == RecordType::Cname)
                        {
                            chain.push(cname_rec.clone());
                            if let RData::Cname(target) = &cname_rec.rdata {
                                if target.is_subdomain_of(&self.origin) {
                                    current = target.clone();
                                    continue;
                                }
                            }
                            // Out-of-zone target: return what we have.
                            return ZoneLookup::Found(chain);
                        }
                    }
                    return ZoneLookup::NoData;
                }
                None => {
                    if self.name_exists(&current) {
                        return ZoneLookup::NoData;
                    }
                    return ZoneLookup::NxDomain;
                }
            }
        }
        // CNAME chain too long — treat as what we collected so far.
        ZoneLookup::Found(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn soa() -> SoaData {
        SoaData {
            mname: n("ns1.example.com"),
            rname: n("hostmaster.example.com"),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new(n("example.com"), soa());
        z.add_rdata(n("a.example.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        z.add_rdata(n("a.example.com"), RData::A(Ipv4Addr::new(192, 0, 2, 2)));
        z.add_rdata(n("a.example.com"), RData::txt_from_str("hello"));
        z.add_rdata(n("www.example.com"), RData::Cname(n("a.example.com")));
        z.add_rdata(
            n("deep.tree.example.com"),
            RData::A(Ipv4Addr::new(192, 0, 2, 3)),
        );
        z.add_rdata(n("c1.example.com"), RData::Cname(n("c2.example.com")));
        z.add_rdata(n("c2.example.com"), RData::Cname(n("c1.example.com")));
        z
    }

    #[test]
    fn exact_match() {
        let z = test_zone();
        match z.lookup(&n("a.example.com"), RecordType::A) {
            ZoneLookup::Found(records) => assert_eq!(records.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&n("a.example.com"), RecordType::Mx),
            ZoneLookup::NoData
        );
        assert_eq!(
            z.lookup(&n("missing.example.com"), RecordType::A),
            ZoneLookup::NxDomain
        );
        // Empty non-terminal: tree.example.com exists because
        // deep.tree.example.com does.
        assert_eq!(
            z.lookup(&n("tree.example.com"), RecordType::A),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn cname_chase() {
        let z = test_zone();
        match z.lookup(&n("www.example.com"), RecordType::A) {
            ZoneLookup::Found(records) => {
                assert_eq!(records.len(), 3); // CNAME + 2 A
                assert_eq!(records[0].rtype(), RecordType::Cname);
            }
            other => panic!("{other:?}"),
        }
        // Query for the CNAME itself does not chase.
        match z.lookup(&n("www.example.com"), RecordType::Cname) {
            ZoneLookup::Found(records) => assert_eq!(records.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cname_loop_bounded() {
        let z = test_zone();
        match z.lookup(&n("c1.example.com"), RecordType::A) {
            ZoneLookup::Found(records) => assert!(records.len() <= 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_zone() {
        let z = test_zone();
        assert_eq!(
            z.lookup(&n("other.org"), RecordType::A),
            ZoneLookup::NotAuthoritative
        );
    }

    #[test]
    #[should_panic(expected = "out of zone")]
    fn add_out_of_bailiwick_panics() {
        let mut z = test_zone();
        z.add_rdata(n("other.org"), RData::A(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn counts() {
        let z = test_zone();
        assert_eq!(z.name_count(), 6); // apex + 5 owner names
        assert!(z.record_count() >= 8);
    }
}
