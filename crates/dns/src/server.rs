//! Sans-IO authoritative server core.
//!
//! [`ServerCore`] maps request datagrams to response datagrams plus
//! scheduling metadata (an artificial response delay, used by the
//! measurement test policies that insert 100 ms / 800 ms delays before
//! answering — §7.1 and §7.2 of the paper).
//!
//! The pluggable [`Authority`] trait is where the paper's innovation
//! lives: `mailval-measure` implements an authority that synthesizes SPF
//! policy responses from the query name instead of storing 27.8M records.

use crate::message::Message;
use crate::name::Name;
use crate::rr::{Record, RecordType};
use crate::wire::Rcode;
use crate::zone::{Zone, ZoneLookup};

/// The transport a request arrived over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// UDP: responses over the configured payload limit are truncated.
    Udp,
    /// TCP: no truncation.
    Tcp,
}

/// What an [`Authority`] says about one question.
#[derive(Debug, Clone)]
pub struct AuthorityAnswer {
    /// Response code.
    pub rcode: Rcode,
    /// Answer-section records.
    pub answers: Vec<Record>,
    /// Authority-section records (e.g. SOA for negative answers).
    pub authorities: Vec<Record>,
    /// Artificial delay before the response is sent, in milliseconds.
    /// Transport RTT is *not* included; the simulator adds that.
    pub delay_ms: u64,
    /// Force a truncated response over UDP even if the payload fits,
    /// eliciting TCP retry (the paper's TCP-fallback test policy).
    pub force_tcp: bool,
    /// This name is served only on the IPv6 endpoint (the paper's
    /// IPv6-only test policy); requests arriving via IPv4 are dropped.
    pub v6_only: bool,
}

impl AuthorityAnswer {
    /// A positive answer.
    pub fn positive(answers: Vec<Record>) -> Self {
        AuthorityAnswer {
            rcode: Rcode::NoError,
            answers,
            authorities: Vec::new(),
            delay_ms: 0,
            force_tcp: false,
            v6_only: false,
        }
    }

    /// An empty NOERROR (NODATA) answer.
    pub fn nodata() -> Self {
        Self::positive(Vec::new())
    }

    /// An NXDOMAIN answer.
    pub fn nxdomain() -> Self {
        AuthorityAnswer {
            rcode: Rcode::NxDomain,
            ..Self::nodata()
        }
    }

    /// Builder: add an artificial response delay.
    pub fn with_delay_ms(mut self, delay_ms: u64) -> Self {
        self.delay_ms = delay_ms;
        self
    }
}

/// Source of answers for the server core.
pub trait Authority {
    /// Answer one question. Return `None` to refuse (out of bailiwick).
    fn answer(&self, qname: &Name, qtype: RecordType) -> Option<AuthorityAnswer>;
}

/// [`Authority`] backed by a static [`Zone`].
pub struct ZoneAuthority {
    zone: Zone,
}

impl ZoneAuthority {
    /// Wrap a zone.
    pub fn new(zone: Zone) -> Self {
        ZoneAuthority { zone }
    }

    /// Access the underlying zone.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }
}

impl Authority for ZoneAuthority {
    fn answer(&self, qname: &Name, qtype: RecordType) -> Option<AuthorityAnswer> {
        match self.zone.lookup(qname, qtype) {
            ZoneLookup::Found(records) => Some(AuthorityAnswer::positive(records)),
            ZoneLookup::NoData => Some(AuthorityAnswer {
                authorities: vec![self.zone.soa_record()],
                ..AuthorityAnswer::nodata()
            }),
            ZoneLookup::NxDomain => Some(AuthorityAnswer {
                authorities: vec![self.zone.soa_record()],
                ..AuthorityAnswer::nxdomain()
            }),
            ZoneLookup::NotAuthoritative => None,
        }
    }
}

/// A response ready to send, with scheduling metadata.
#[derive(Debug, Clone)]
pub struct ServerReply {
    /// Encoded response message.
    pub bytes: Vec<u8>,
    /// Artificial delay before sending, in milliseconds.
    pub delay_ms: u64,
}

/// Sans-IO authoritative server.
pub struct ServerCore<A: Authority> {
    authority: A,
    /// Maximum UDP response payload before truncation (RFC 1035 default
    /// 512; modern EDNS-less behavior kept deliberately conservative so
    /// the TCP-fallback test has teeth).
    pub udp_payload_max: usize,
}

impl<A: Authority> ServerCore<A> {
    /// Create a server with the classic 512-byte UDP limit.
    pub fn new(authority: A) -> Self {
        ServerCore {
            authority,
            udp_payload_max: 512,
        }
    }

    /// Access the authority.
    pub fn authority(&self) -> &A {
        &self.authority
    }

    /// Handle one request datagram.
    ///
    /// `via_ipv6` says which address family the request arrived on
    /// (the IPv6-only test policy drops IPv4-borne requests).
    /// Returns `None` when the server stays silent (malformed beyond
    /// recovery, or a deliberately dropped request).
    pub fn handle(
        &self,
        request: &[u8],
        transport: Transport,
        via_ipv6: bool,
    ) -> Option<ServerReply> {
        let mut bytes = Vec::new();
        let delay_ms = self.handle_with(request, transport, via_ipv6, &mut bytes)?;
        Some(ServerReply { bytes, delay_ms })
    }

    /// [`ServerCore::handle`] encoding the reply into `out` (cleared
    /// first, allocation reused) instead of a fresh buffer, returning
    /// the scheduling delay. This is the shard event loop's entry
    /// point: one scratch buffer per shard absorbs every reply encode.
    pub fn handle_with(
        &self,
        request: &[u8],
        transport: Transport,
        via_ipv6: bool,
        out: &mut Vec<u8>,
    ) -> Option<u64> {
        fn emit(out: &mut Vec<u8>, resp: &Message) {
            *out = resp.to_bytes_with(std::mem::take(out));
        }
        let query = match Message::from_bytes(request) {
            Ok(q) => q,
            Err(_) => {
                // Recover the id if we can, to send FORMERR.
                if request.len() >= 2 {
                    let id = u16::from_be_bytes([request[0], request[1]]);
                    let mut resp = Message::query(id, Name::root(), RecordType::A);
                    resp.questions.clear();
                    resp.is_response = true;
                    resp.rcode = Rcode::FormErr;
                    emit(out, &resp);
                    return Some(0);
                }
                return None;
            }
        };
        if query.is_response {
            return None;
        }
        if query.opcode != 0 {
            emit(out, &Message::response_to(&query, Rcode::NotImp));
            return Some(0);
        }
        let Some(question) = query.question() else {
            emit(out, &Message::response_to(&query, Rcode::FormErr));
            return Some(0);
        };

        let Some(answer) = self.authority.answer(&question.name, question.rtype) else {
            emit(out, &Message::response_to(&query, Rcode::Refused));
            return Some(0);
        };

        if answer.v6_only && !via_ipv6 {
            // The name's only server lives on IPv6: an IPv4 request would
            // never have arrived in reality. Stay silent.
            return None;
        }

        let mut resp = Message::response_to(&query, answer.rcode);
        resp.authoritative = true;
        resp.answers = answer.answers;
        resp.authorities = answer.authorities;
        emit(out, &resp);

        if transport == Transport::Udp && (answer.force_tcp || out.len() > self.udp_payload_max) {
            // Truncate: empty sections, TC=1 (RFC 2181 §9 style minimal
            // truncation).
            let mut trunc = Message::response_to(&query, answer.rcode);
            trunc.authoritative = true;
            trunc.truncated = true;
            emit(out, &trunc);
        }

        Some(answer.delay_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::{RData, SoaData};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn server() -> ServerCore<ZoneAuthority> {
        let soa = SoaData {
            mname: n("ns1.example.com"),
            rname: n("contact.example.com"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 300,
        };
        let mut zone = Zone::new(n("example.com"), soa);
        zone.add_rdata(n("a.example.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        zone.add_rdata(n("big.example.com"), RData::txt_from_str(&"x".repeat(700)));
        ServerCore::new(ZoneAuthority::new(zone))
    }

    fn ask(
        s: &ServerCore<ZoneAuthority>,
        name: &str,
        rtype: RecordType,
        transport: Transport,
    ) -> Message {
        let q = Message::query(42, n(name), rtype);
        let reply = s.handle(&q.to_bytes(), transport, false).unwrap();
        Message::from_bytes(&reply.bytes).unwrap()
    }

    #[test]
    fn positive_answer() {
        let s = server();
        let resp = ask(&s, "a.example.com", RecordType::A, Transport::Udp);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.authoritative);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.id, 42);
    }

    #[test]
    fn nxdomain_carries_soa() {
        let s = server();
        let resp = ask(&s, "nope.example.com", RecordType::A, Transport::Udp);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].rtype(), RecordType::Soa);
    }

    #[test]
    fn nodata_carries_soa() {
        let s = server();
        let resp = ask(&s, "a.example.com", RecordType::Mx, Transport::Udp);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
    }

    #[test]
    fn refused_out_of_zone() {
        let s = server();
        let resp = ask(&s, "other.org", RecordType::A, Transport::Udp);
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn truncates_large_udp_answer_and_serves_over_tcp() {
        let s = server();
        let udp = ask(&s, "big.example.com", RecordType::Txt, Transport::Udp);
        assert!(udp.truncated);
        assert!(udp.answers.is_empty());
        let tcp = ask(&s, "big.example.com", RecordType::Txt, Transport::Tcp);
        assert!(!tcp.truncated);
        assert_eq!(tcp.answers.len(), 1);
    }

    #[test]
    fn malformed_gets_formerr() {
        let s = server();
        let reply = s
            .handle(&[0xab, 0xcd, 0xff], Transport::Udp, false)
            .unwrap();
        let resp = Message::from_bytes(&reply.bytes).unwrap();
        assert_eq!(resp.rcode, Rcode::FormErr);
        assert_eq!(resp.id, 0xabcd);
    }

    #[test]
    fn tiny_garbage_ignored() {
        let s = server();
        assert!(s.handle(&[0x01], Transport::Udp, false).is_none());
    }

    #[test]
    fn responses_are_ignored() {
        let s = server();
        let mut q = Message::query(1, n("a.example.com"), RecordType::A);
        q.is_response = true;
        assert!(s.handle(&q.to_bytes(), Transport::Udp, false).is_none());
    }

    #[test]
    fn nonzero_opcode_notimp() {
        let s = server();
        let mut q = Message::query(1, n("a.example.com"), RecordType::A);
        q.opcode = 5;
        let reply = s.handle(&q.to_bytes(), Transport::Udp, false).unwrap();
        let resp = Message::from_bytes(&reply.bytes).unwrap();
        assert_eq!(resp.rcode, Rcode::NotImp);
    }
}
