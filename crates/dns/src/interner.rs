//! Name interning: compact integer handles for domain names.
//!
//! A [`Name`] is a `Vec<String>` of labels, so using it directly as a
//! hash-map key means every probe clones one heap allocation per label.
//! On the campaign hot path (the resolver cache is consulted for every
//! query of every session) that is the dominant per-lookup allocation.
//! A [`NameInterner`] assigns each distinct name a dense [`NameId`]
//! once; lookups hash the name *by reference* and afterwards key maps
//! by a `u32` — zero allocations on the hit path.
//!
//! Interners are plain per-owner state (one per resolver core), not a
//! global table: ids are only meaningful against the interner that
//! issued them, and keeping them local avoids synchronization in the
//! sharded engine.

use crate::name::Name;
use std::collections::HashMap;

/// Dense handle for an interned [`Name`]. Only meaningful against the
/// [`NameInterner`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The raw index (dense, `0..interner.len()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbol table mapping [`Name`]s to dense [`NameId`]s.
#[derive(Debug, Default, Clone)]
pub struct NameInterner {
    ids: HashMap<Name, NameId>,
    names: Vec<Name>,
}

impl NameInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a name without interning it. Hashes `name` by reference;
    /// never allocates.
    pub fn get(&self, name: &Name) -> Option<NameId> {
        self.ids.get(name).copied()
    }

    /// Intern `name`, taking ownership: returns the existing id if the
    /// name is known, otherwise assigns the next dense id. Allocates
    /// only for the first sighting of a name.
    pub fn intern(&mut self, name: Name) -> NameId {
        if let Some(&id) = self.ids.get(&name) {
            return id;
        }
        let id = NameId(u32::try_from(self.names.len()).expect("fewer than 2^32 names"));
        self.names.push(name.clone());
        self.ids.insert(name, id);
        id
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// If `id` came from a different interner and is out of range.
    pub fn resolve(&self, id: NameId) -> &Name {
        &self.names[id.index()]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = NameInterner::new();
        let a = interner.intern(n("mail.example.com"));
        let b = interner.intern(n("example.org"));
        let a2 = interner.intern(n("mail.example.com"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), &n("mail.example.com"));
        assert_eq!(interner.resolve(b), &n("example.org"));
    }

    #[test]
    fn get_does_not_intern() {
        let mut interner = NameInterner::new();
        assert_eq!(interner.get(&n("a.test")), None);
        let id = interner.intern(n("a.test"));
        assert_eq!(interner.get(&n("a.test")), Some(id));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn root_name_interns() {
        let mut interner = NameInterner::new();
        let id = interner.intern(Name::root());
        assert_eq!(interner.resolve(id), &Name::root());
    }
}
