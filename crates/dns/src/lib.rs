//! # mailval-dns
//!
//! A from-scratch DNS implementation: names, resource records, the full
//! wire codec (RFC 1035 §4, including name compression), message
//! construction, zone storage, an authoritative-server core, and a
//! caching stub-resolver core.
//!
//! Everything is **sans-IO** (the smoltcp design philosophy): the server
//! core maps request bytes to response bytes plus scheduling metadata, and
//! the resolver core is a state machine that emits transport actions and is
//! fed response bytes. The same cores run unmodified under the
//! discrete-event simulator (`mailval-simnet`) and behind real UDP/TCP
//! sockets (`examples/live_loopback.rs`).
//!
//! The paper's measurement apparatus (see `mailval-measure`) plugs in a
//! custom [`server::Authority`] that *synthesizes* SPF policy responses
//! from the query name instead of serving a 27.8M-record zone — the
//! scalability technique of §4.5 of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod interner;
pub mod message;
pub mod name;
pub mod resolver;
pub mod rr;
pub mod server;
pub mod wire;
pub mod zone;

pub use interner::{NameId, NameInterner};
pub use message::{truncate_response, Message, Question};
pub use name::{Name, NameError};
pub use rr::{RData, Record, RecordClass, RecordType};
pub use wire::{Rcode, WireError};
